"""Run the doctest examples embedded in module docstrings.

Keeps every ``>>>`` example in the documentation honest.
"""

import doctest

import pytest

import repro.experiments.timing
import repro.graph.graph
import repro.graph.views


@pytest.mark.parametrize(
    "module",
    [
        repro.graph.graph,
        repro.graph.views,
        repro.experiments.timing,
    ],
    ids=lambda m: m.__name__,
)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures in {module.__name__}"
    assert results.attempted > 0, f"no doctests collected from {module.__name__}"
