"""Cross-module integration tests: full pipelines end to end."""

import io

import pytest

from repro import Graph, oca
from repro.baselines import cfinder, greedy_modularity, lfk
from repro.communities import (
    Cover,
    overlapping_nmi,
    read_cover,
    rho,
    theta,
    write_cover,
)
from repro.experiments import run_algorithm
from repro.extensions import hierarchical_oca, reconstruction_error, summarize_graph
from repro.generators import (
    LFRParams,
    daisy_tree,
    lfr_graph,
    ring_of_cliques,
    two_cliques_bridged,
)
from repro.graph import read_edge_list, write_edge_list


class TestRoundTripPipeline:
    """Generate -> serialise -> reload -> detect -> serialise -> reload."""

    def test_full_file_round_trip(self, tmp_path):
        instance = daisy_tree(flowers=3, seed=1)
        graph_path = tmp_path / "graph.txt"
        write_edge_list(instance.graph, graph_path)
        reloaded = read_edge_list(graph_path)
        # Isolated nodes (if any) are lost by edge lists; daisy trees
        # have none at default densities.
        assert reloaded.number_of_edges() == instance.graph.number_of_edges()

        result = oca(reloaded, seed=1)
        cover_path = tmp_path / "cover.txt"
        write_cover(result.cover, cover_path)
        restored = read_cover(cover_path)
        assert restored == result.cover

    def test_cover_evaluable_after_round_trip(self, tmp_path):
        instance = daisy_tree(flowers=2, seed=2)
        result = oca(instance.graph, seed=2)
        buffer = io.StringIO()
        write_cover(result.cover, buffer)
        buffer.seek(0)
        restored = read_cover(buffer)
        assert theta(instance.communities, restored) == pytest.approx(
            theta(instance.communities, result.cover)
        )


class TestCrossAlgorithmAgreement:
    """On unambiguous instances all three algorithms agree."""

    def test_ring_of_cliques_consensus(self):
        g, truth = ring_of_cliques(4, 6)
        covers = {
            "oca": oca(g, seed=0).cover,
            "lfk": lfk(g, seed=0).cover,
            "cfinder": cfinder(g, k=3),
        }
        for name, cover in covers.items():
            assert theta(truth, cover) == pytest.approx(1.0), name

    def test_metrics_agree_on_identical_covers(self):
        g, truth = ring_of_cliques(4, 6)
        found = oca(g, seed=0).cover
        assert theta(truth, found) == pytest.approx(1.0)
        assert overlapping_nmi(truth, found, g.nodes()) == pytest.approx(1.0)

    def test_overlap_instance_separates_partitioners(self):
        g, truth = two_cliques_bridged(7, 2)
        overlapping_quality = theta(truth, oca(g, seed=1).cover)
        partition_quality = theta(truth, greedy_modularity(g).partition)
        assert overlapping_quality > partition_quality


class TestEndToEndLFR:
    def test_generate_detect_evaluate_summarize(self):
        instance = lfr_graph(LFRParams(n=400, mu=0.25), seed=9)
        run = run_algorithm("OCA", instance.graph, seed=9, quality_mode=True)
        quality = theta(instance.communities, run.cover)
        assert quality >= 0.8

        model = summarize_graph(instance.graph, run.cover)
        assert model.compression_ratio() > 3.0
        error = reconstruction_error(instance.graph, model)
        assert 0.0 <= error <= 0.5

    def test_hierarchy_on_detected_communities(self):
        g, truth = ring_of_cliques(6, 5)
        hierarchy = hierarchical_oca(g, levels=2, seed=0)
        assert theta(truth, hierarchy[0].cover) == pytest.approx(1.0)
        if len(hierarchy) > 1:
            assert len(hierarchy[1].cover) < len(hierarchy[0].cover)


class TestDeterminismAcrossTheStack:
    def test_same_seed_same_everything(self):
        instance_a = lfr_graph(LFRParams(n=300, mu=0.3), seed=5)
        instance_b = lfr_graph(LFRParams(n=300, mu=0.3), seed=5)
        assert instance_a.graph == instance_b.graph

        result_a = oca(instance_a.graph, seed=8)
        result_b = oca(instance_b.graph, seed=8)
        assert result_a.cover == result_b.cover

        lfk_a = lfk(instance_a.graph, seed=8)
        lfk_b = lfk(instance_b.graph, seed=8)
        assert lfk_a.cover == lfk_b.cover


class TestPaperExamples:
    """Sanity pins taken directly from the paper's text."""

    def test_example_2_independent_set(self):
        """phi(independent S) = |S| (Example 2)."""
        from repro.core import phi

        g = Graph(edges=[(0, 1), (2, 3)])
        assert phi(g, {0, 2}, 0.5) == pytest.approx(2.0)

    def test_example_2_clique_quadratic(self):
        """phi(K_k) = c k^2 + (1-c) k (Example 2)."""
        from repro.core import phi
        from repro.generators import complete_graph

        g = complete_graph(5)
        c = 0.25
        k = 5
        assert phi(g, set(range(5)), c) == pytest.approx(c * k * k + (1 - c) * k)

    def test_phi_single_maximum_is_whole_graph(self):
        """Section II: 'there exists only one maximum, the entire graph'."""
        from repro.core import PhiFitness, grow_community

        g, _ = ring_of_cliques(3, 4)
        result = grow_community(g, [0], PhiFitness(c=0.4))
        assert result.members == frozenset(g.nodes())
