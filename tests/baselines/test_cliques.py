"""Unit tests for Bron–Kerbosch maximal clique enumeration."""

import pytest
from hypothesis import given, settings

from repro.baselines import clique_number, cliques_at_least, maximal_cliques
from repro.generators import complete_graph, cycle_graph, path_graph, star_graph
from repro.graph import Graph

from ..conftest import edge_lists


def cliques_set(graph):
    return set(maximal_cliques(graph))


def test_complete_graph_single_clique():
    assert cliques_set(complete_graph(5)) == {frozenset(range(5))}


def test_triangle_with_tail():
    g = Graph(edges=[(0, 1), (1, 2), (0, 2), (2, 3)])
    assert cliques_set(g) == {frozenset({0, 1, 2}), frozenset({2, 3})}


def test_cycle_cliques_are_edges():
    cliques = cliques_set(cycle_graph(5))
    assert all(len(c) == 2 for c in cliques)
    assert len(cliques) == 5


def test_star_cliques():
    cliques = cliques_set(star_graph(4))
    assert len(cliques) == 4
    assert all(0 in c and len(c) == 2 for c in cliques)


def test_isolated_nodes_are_cliques():
    g = Graph(nodes=[1, 2])
    assert cliques_set(g) == {frozenset({1}), frozenset({2})}


def test_empty_graph_no_cliques():
    assert cliques_set(Graph()) == set()


def test_two_overlapping_triangles():
    g = Graph(edges=[(0, 1), (1, 2), (0, 2), (1, 3), (2, 3)])
    assert cliques_set(g) == {frozenset({0, 1, 2}), frozenset({1, 2, 3})}


def test_cliques_at_least_filters():
    g = Graph(edges=[(0, 1), (1, 2), (0, 2), (2, 3)])
    assert set(cliques_at_least(g, 3)) == {frozenset({0, 1, 2})}


def test_cliques_at_least_validates_k():
    with pytest.raises(ValueError):
        cliques_at_least(Graph(), 0)


def test_clique_number():
    assert clique_number(complete_graph(6)) == 6
    assert clique_number(cycle_graph(6)) == 2
    assert clique_number(Graph()) == 0


@settings(max_examples=40)
@given(edges=edge_lists(max_nodes=9, max_edges=22))
def test_cliques_are_maximal_cliques(edges):
    """Every reported set is a clique; no reported set extends another;
    every edge is inside some reported clique."""
    g = Graph(edges=edges)
    cliques = list(maximal_cliques(g))
    for clique in cliques:
        members = sorted(clique, key=str)
        for i, u in enumerate(members):
            for v in members[i + 1 :]:
                assert g.has_edge(u, v)
        # Maximality: no node outside is adjacent to every member.
        for node in g.nodes():
            if node in clique:
                continue
            assert not clique <= g.neighbors(node) | {node}
    for u, v in g.edges():
        assert any(u in c and v in c for c in cliques)
    # No duplicates.
    assert len(cliques) == len(set(cliques))
