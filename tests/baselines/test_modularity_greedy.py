"""Unit tests for the Newman fast-greedy partition baseline."""

import pytest

from repro.baselines import greedy_modularity
from repro.communities import modularity, theta
from repro.errors import AlgorithmError
from repro.generators import complete_graph, ring_of_cliques, two_cliques_bridged
from repro.graph import Graph


def test_edgeless_graph_raises():
    with pytest.raises(AlgorithmError):
        greedy_modularity(Graph(nodes=[0, 1]))


def test_ring_of_cliques_recovered():
    g, truth = ring_of_cliques(5, 6)
    result = greedy_modularity(g)
    assert theta(truth, result.partition) == pytest.approx(1.0)


def test_reported_modularity_matches_metric():
    g, _ = ring_of_cliques(4, 5)
    result = greedy_modularity(g)
    assert result.modularity == pytest.approx(modularity(g, result.partition))


def test_partition_is_disjoint_and_exhaustive():
    g, _ = ring_of_cliques(4, 5)
    result = greedy_modularity(g)
    assert result.partition.covered_nodes() == set(g.nodes())
    assert not result.partition.overlapping_nodes()


def test_complete_graph_single_block():
    result = greedy_modularity(complete_graph(6))
    assert len(result.partition) == 1


def test_cannot_express_overlap():
    """The motivating limitation: a partition covers the shared nodes in
    exactly one of the two overlapping cliques, capping Theta below 1."""
    g, truth = two_cliques_bridged(6, 2)
    result = greedy_modularity(g)
    assert theta(truth, result.partition) < 1.0


def test_merge_count_bounded():
    g, _ = ring_of_cliques(3, 4)
    result = greedy_modularity(g)
    assert 0 < result.merges < g.number_of_nodes()
