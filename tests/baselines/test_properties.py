"""Property-based tests on the baseline algorithms (hypothesis)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import (
    clique_percolation,
    greedy_modularity,
    lfk,
    maximal_cliques,
    natural_community,
)
from repro.graph import Graph

from ..conftest import edge_lists


@settings(max_examples=30, deadline=None)
@given(edges=edge_lists(max_nodes=10, max_edges=25), k=st.integers(2, 4))
def test_cpm_communities_are_unions_of_k_cliques(edges, k):
    """Every CPM community contains a clique of size >= k, and every
    member of a community belongs to such a clique inside it."""
    g = Graph(edges=edges)
    result = clique_percolation(g, k=k)
    cliques = [c for c in maximal_cliques(g) if len(c) >= k]
    for community in result.cover:
        members = set(community)
        inside = [c for c in cliques if c <= members]
        assert inside, "community without a supporting clique"
        covered = set()
        for clique in inside:
            covered |= clique
        assert covered == members


@settings(max_examples=30, deadline=None)
@given(edges=edge_lists(max_nodes=10, max_edges=25))
def test_cpm_faithful_and_indexed_always_agree(edges):
    g = Graph(edges=edges)
    faithful = clique_percolation(g, k=3, faithful_overlap=True).cover
    indexed = clique_percolation(g, k=3, faithful_overlap=False).cover
    assert faithful == indexed


@settings(max_examples=25, deadline=None)
@given(edges=edge_lists(max_nodes=10, max_edges=25), seed=st.integers(0, 3))
def test_lfk_cover_is_total_and_deterministic(edges, seed):
    g = Graph(edges=edges)
    if g.number_of_nodes() == 0:
        return
    result = lfk(g, seed=seed)
    assert result.cover.covered_nodes() == set(g.nodes())
    assert lfk(g, seed=seed).cover == result.cover


@settings(max_examples=25, deadline=None)
@given(edges=edge_lists(max_nodes=10, max_edges=25))
def test_lfk_natural_community_is_local_optimum(edges):
    """No single removal improves the LFK fitness of a natural community
    (the addition side may admit zero-gain plateaus, which step A skips)."""
    from repro.core import LFKFitness
    from repro.core.state import CommunityState

    g = Graph(edges=edges)
    if g.number_of_nodes() == 0:
        return
    node = next(iter(g.nodes()))
    community = natural_community(g, node)
    fitness = LFKFitness(alpha=1.0)
    state = CommunityState(g, community)
    current = state.value(fitness)
    if state.size > 1:
        for member in list(state.members):
            assert state.value_if_removed(member, fitness) <= current + 1e-9


@settings(max_examples=20, deadline=None)
@given(edges=edge_lists(max_nodes=10, max_edges=30))
def test_greedy_modularity_contract(edges):
    g = Graph(edges=edges)
    if g.number_of_edges() == 0:
        return
    result = greedy_modularity(g)
    # Disjoint, exhaustive, and modularity in valid range.
    assert result.partition.covered_nodes() == set(g.nodes())
    assert not result.partition.overlapping_nodes()
    assert -0.5 <= result.modularity <= 1.0
