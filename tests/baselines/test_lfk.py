"""Unit tests for the LFK baseline."""

import pytest

from repro.baselines import lfk, natural_community
from repro.communities import theta
from repro.errors import ConfigurationError
from repro.generators import (
    complete_graph,
    ring_of_cliques,
    two_cliques_bridged,
)
from repro.graph import Graph


def test_natural_community_of_clique_member():
    g, truth = ring_of_cliques(4, 6)
    community = natural_community(g, 0)
    assert community == set(truth[0])


def test_natural_community_deterministic():
    g, _ = ring_of_cliques(4, 6)
    assert natural_community(g, 3) == natural_community(g, 3)


def test_natural_community_respects_alpha():
    g, _ = ring_of_cliques(4, 6)
    # Very small alpha flattens the resolution: (k_in + k_out)^alpha barely
    # penalises boundary, so the community expands beyond one clique.
    wide = natural_community(g, 0, alpha=0.05)
    narrow = natural_community(g, 0, alpha=1.0)
    assert len(wide) > len(narrow)


def test_natural_community_max_steps():
    g = complete_graph(30)
    community = natural_community(g, 0, max_steps=3)
    assert len(community) <= 4


def test_cover_includes_every_node():
    g, _ = ring_of_cliques(4, 5)
    result = lfk(g, seed=0)
    assert result.cover.covered_nodes() == set(g.nodes())


def test_ring_of_cliques_exact():
    g, truth = ring_of_cliques(5, 6)
    result = lfk(g, seed=0)
    assert theta(truth, result.cover) == pytest.approx(1.0)


def test_overlapping_cliques_both_found():
    g, truth = two_cliques_bridged(7, 2)
    result = lfk(g, seed=0)
    assert theta(truth, result.cover) >= 0.8


def test_deterministic_given_seed():
    g, _ = ring_of_cliques(4, 5)
    assert lfk(g, seed=42).cover == lfk(g, seed=42).cover


def test_alpha_validated():
    with pytest.raises(ConfigurationError):
        lfk(Graph(edges=[(0, 1)]), alpha=-1.0)


def test_result_metadata():
    g, _ = ring_of_cliques(3, 5)
    result = lfk(g, seed=0)
    assert result.alpha == 1.0
    assert result.natural_communities >= 3
    assert result.elapsed_seconds >= 0.0
    assert "LFKResult" in repr(result)


def test_isolated_node_becomes_singleton():
    g = Graph(edges=[(0, 1), (1, 2), (0, 2)], nodes=[9])
    result = lfk(g, seed=0)
    assert {9} in result.cover
