"""Unit tests for the CFinder / clique percolation baseline."""

import pytest

from repro.baselines import cfinder, clique_percolation
from repro.communities import Cover
from repro.errors import ConfigurationError
from repro.generators import complete_graph, cycle_graph, ring_of_cliques
from repro.graph import Graph


def test_single_clique_is_one_community():
    result = clique_percolation(complete_graph(5), k=3)
    assert result.cover == Cover([set(range(5))])
    assert result.maximal_cliques == 1


def test_ring_of_cliques_separated():
    g, truth = ring_of_cliques(4, 5)
    result = clique_percolation(g, k=3)
    assert result.cover == truth


def test_overlapping_chain_of_triangles():
    # Two triangles sharing an edge percolate into one community at k=3.
    g = Graph(edges=[(0, 1), (1, 2), (0, 2), (1, 3), (2, 3)])
    result = clique_percolation(g, k=3)
    assert result.cover == Cover([{0, 1, 2, 3}])


def test_disjoint_triangles_stay_separate():
    g = Graph(edges=[(0, 1), (1, 2), (0, 2), (10, 11), (11, 12), (10, 12)])
    result = clique_percolation(g, k=3)
    assert result.cover == Cover([{0, 1, 2}, {10, 11, 12}])


def test_triangle_free_graph_has_no_k3_communities():
    result = clique_percolation(cycle_graph(6), k=3)
    assert len(result.cover) == 0


def test_k2_degenerates_to_components():
    g = Graph(edges=[(0, 1), (1, 2), (10, 11)])
    result = clique_percolation(g, k=2)
    assert result.cover == Cover([{0, 1, 2}, {10, 11}])


def test_k4_stricter_than_k3():
    g, _ = ring_of_cliques(3, 4)  # bridges create no K4
    at3 = clique_percolation(g, k=3).cover
    at4 = clique_percolation(g, k=4).cover
    assert len(at4) == 3
    assert at3 == at4  # cliques themselves are K4s


def test_k_validated():
    with pytest.raises(ConfigurationError):
        clique_percolation(Graph(), k=1)


def test_faithful_and_indexed_agree():
    g, _ = ring_of_cliques(5, 5)
    faithful = clique_percolation(g, k=3, faithful_overlap=True).cover
    indexed = clique_percolation(g, k=3, faithful_overlap=False).cover
    assert faithful == indexed


def test_cfinder_wrapper_returns_cover():
    g, truth = ring_of_cliques(4, 5)
    assert cfinder(g, k=3) == truth


def test_overlap_nodes_in_both_communities():
    from repro.generators import two_cliques_bridged

    g, truth = two_cliques_bridged(6, 2)
    cover = cfinder(g, k=3)
    # Shared nodes belong to one percolation community at k=3 (the two
    # cliques chain through the shared pair), or two if separated: either
    # way every node is covered.
    assert cover.covered_nodes() == set(g.nodes())


def test_elapsed_and_repr():
    result = clique_percolation(complete_graph(4), k=3)
    assert result.elapsed_seconds >= 0.0
    assert "CPMResult" in repr(result)
