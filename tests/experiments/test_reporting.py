"""Unit tests for ASCII reporting."""

from repro.experiments import Series, ascii_table, series_table


def test_ascii_table_alignment():
    table = ascii_table(["name", "value"], [("alpha", 1), ("b", 22.5)])
    lines = table.splitlines()
    assert lines[0].startswith("name")
    assert set(lines[1]) <= {"-", " "}
    assert "alpha" in lines[2]
    assert "22.5" in lines[3]


def test_ascii_table_empty_rows():
    table = ascii_table(["a"], [])
    assert "a" in table


def test_ascii_table_float_formatting():
    table = ascii_table(["x"], [(0.123456789,)])
    assert "0.1235" in table


def test_series_append():
    s = Series("OCA")
    s.append(1, 0.5)
    s.append(2, 0.6)
    assert s.xs == [1, 2]
    assert s.ys == [0.5, 0.6]


def test_series_table_joins_on_x():
    a = Series("A", [1, 2], [0.1, 0.2])
    b = Series("B", [1, 3], [0.9, 0.8])
    table = series_table([a, b], x_label="n")
    lines = table.splitlines()
    assert lines[0].split()[:3] == ["n", "A", "B"]
    assert len(lines) == 2 + 3  # header + rule + x in {1,2,3}


def test_series_table_missing_points_dash():
    a = Series("A", [1], [0.1])
    b = Series("B", [2], [0.2])
    table = series_table([a, b], x_label="n")
    assert "-" in table.splitlines()[2]
