"""Unit tests for the algorithm runner."""

import pytest

from repro.errors import AlgorithmError
from repro.experiments import ALGORITHMS, run_algorithm
from repro.generators import ring_of_cliques


@pytest.fixture(scope="module")
def ring():
    return ring_of_cliques(4, 5)


@pytest.mark.parametrize("name", ALGORITHMS)
def test_each_algorithm_runs(ring, name):
    g, truth = ring
    run = run_algorithm(name, g, seed=0)
    assert run.algorithm == name
    assert len(run.cover) >= 1
    assert run.elapsed_seconds >= 0.0


def test_quality_mode_covers_all_nodes(ring):
    g, _ = ring
    run = run_algorithm("OCA", g, seed=0, quality_mode=True)
    assert run.cover.covered_nodes() == set(g.nodes())


def test_raw_mode_skips_postprocessing(ring):
    g, _ = ring
    quality = run_algorithm("LFK", g, seed=0, quality_mode=True)
    raw = run_algorithm("LFK", g, seed=0, quality_mode=False)
    # Raw mode must not add orphan assignments.
    assert len(raw.cover.covered_nodes()) <= len(quality.cover.covered_nodes())


def test_unknown_algorithm_raises(ring):
    g, _ = ring
    with pytest.raises(AlgorithmError):
        run_algorithm("Louvain", g)


def test_deterministic_given_seed(ring):
    g, _ = ring
    a = run_algorithm("OCA", g, seed=77)
    b = run_algorithm("OCA", g, seed=77)
    assert a.cover == b.cover
