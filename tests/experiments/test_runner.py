"""Unit tests for the algorithm runner."""

import pytest

from repro._rng import spawn_streams
from repro.errors import AlgorithmError
from repro.experiments import ALGORITHMS, run_algorithm, run_replicates
from repro.generators import ring_of_cliques


@pytest.fixture(scope="module")
def ring():
    return ring_of_cliques(4, 5)


@pytest.mark.parametrize("name", ALGORITHMS)
def test_each_algorithm_runs(ring, name):
    g, truth = ring
    run = run_algorithm(name, g, seed=0)
    assert run.algorithm == name
    assert len(run.cover) >= 1
    assert run.elapsed_seconds >= 0.0


def test_quality_mode_covers_all_nodes(ring):
    g, _ = ring
    run = run_algorithm("OCA", g, seed=0, quality_mode=True)
    assert run.cover.covered_nodes() == set(g.nodes())


def test_raw_mode_skips_postprocessing(ring):
    g, _ = ring
    quality = run_algorithm("LFK", g, seed=0, quality_mode=True)
    raw = run_algorithm("LFK", g, seed=0, quality_mode=False)
    # Raw mode must not add orphan assignments.
    assert len(raw.cover.covered_nodes()) <= len(quality.cover.covered_nodes())


def test_unknown_algorithm_raises(ring):
    g, _ = ring
    with pytest.raises(AlgorithmError):
        run_algorithm("Louvain", g)


def test_deterministic_given_seed(ring):
    g, _ = ring
    a = run_algorithm("OCA", g, seed=77)
    b = run_algorithm("OCA", g, seed=77)
    assert a.cover == b.cover


def test_engine_options_forwarded(ring):
    g, _ = ring
    sequential = run_algorithm("OCA", g, seed=77)
    parallel = run_algorithm(
        "OCA", g, seed=77, workers=4, backend="thread", batch_size=1
    )
    assert parallel.cover == sequential.cover


class TestRunReplicates:
    def test_replicate_count_and_order(self, ring):
        g, _ = ring
        runs = run_replicates("OCA", g, replicates=3, seed=5)
        assert len(runs) == 3
        assert all(len(run.cover) >= 1 for run in runs)

    def test_identical_across_worker_counts(self, ring):
        g, _ = ring
        serial = run_replicates("OCA", g, replicates=4, seed=5)
        threaded = run_replicates(
            "OCA", g, replicates=4, seed=5, workers=4, backend="thread"
        )
        fanned = run_replicates(
            "OCA", g, replicates=4, seed=5, workers=2, backend="process"
        )
        assert [r.cover for r in threaded] == [r.cover for r in serial]
        assert [r.cover for r in fanned] == [r.cover for r in serial]

    def test_replicates_use_private_stream_seeds(self, ring):
        # Replicate i must behave exactly like a standalone run with its
        # stream seed — catches a regression handing every replicate the
        # same seed (covers may still coincide on easy graphs, so the
        # seed wiring is what's asserted, not cover inequality).
        g, _ = ring
        seeds = spawn_streams(5, 3)
        assert len(set(seeds)) == 3
        runs = run_replicates("OCA", g, replicates=3, seed=5)
        for stream_seed, run in zip(seeds, runs):
            standalone = run_algorithm("OCA", g, seed=stream_seed)
            assert run.cover == standalone.cover

    def test_replicates_validated(self, ring):
        g, _ = ring
        with pytest.raises(AlgorithmError):
            run_replicates("OCA", g, replicates=0)


class TestRunSweep:
    """Multi-graph sweeps routed through one SessionManager."""

    def _graphs(self):
        return [ring_of_cliques(3, 5)[0], ring_of_cliques(4, 4)[0]]

    def test_sweep_matches_run_replicates_per_graph(self):
        from repro.experiments import run_sweep

        graphs = self._graphs()
        sweep = run_sweep("OCA", graphs, replicates=2, seed=9)
        graph_seeds = spawn_streams(9, len(graphs))
        for index, graph in enumerate(graphs):
            reference = run_replicates(
                "OCA", graph.copy(), replicates=2, seed=graph_seeds[index]
            )
            assert [run.cover for run in sweep[index]] == [
                run.cover for run in reference
            ]

    def test_sweep_reuses_warm_sessions(self):
        from repro.experiments import run_sweep
        from repro.serving import SessionManager

        graphs = self._graphs()
        with SessionManager(max_sessions=2) as manager:
            run_sweep("OCA", graphs, replicates=3, seed=1, manager=manager)
            # One bind per graph; every further replicate was a hit.
            assert manager.stats.misses == len(graphs)
            assert manager.stats.hits == len(graphs) * 2
            assert not manager.closed  # shared managers stay open

    def test_sweep_forwards_engine_knobs(self):
        from repro.experiments import run_sweep

        graphs = self._graphs()
        default = run_sweep("OCA", graphs, replicates=1, seed=4)
        # The engine knobs never change covers — only where they run.
        tuned = run_sweep(
            "OCA",
            graphs,
            replicates=1,
            seed=4,
            workers=2,
            backend="thread",
            representation="dict",
        )
        assert [runs[0].cover for runs in tuned] == [
            runs[0].cover for runs in default
        ]

    def test_sweep_works_for_sequential_baselines(self):
        from repro.experiments import run_sweep

        graphs = self._graphs()
        sweep = run_sweep("cpm", graphs, replicates=1, seed=0)
        assert all(len(runs[0].cover) >= 1 for runs in sweep)

    def test_sweep_validates_replicates(self):
        from repro.experiments import run_sweep

        with pytest.raises(AlgorithmError):
            run_sweep("OCA", self._graphs(), replicates=0)

    def test_sweep_rejects_explicit_zero_max_sessions(self):
        from repro.errors import ConfigurationError
        from repro.experiments import run_sweep

        with pytest.raises(ConfigurationError):
            run_sweep("OCA", self._graphs(), replicates=1, max_sessions=0)
