"""Unit tests for the algorithm runner."""

import pytest

from repro._rng import spawn_streams
from repro.errors import AlgorithmError
from repro.experiments import ALGORITHMS, run_algorithm, run_replicates
from repro.generators import ring_of_cliques


@pytest.fixture(scope="module")
def ring():
    return ring_of_cliques(4, 5)


@pytest.mark.parametrize("name", ALGORITHMS)
def test_each_algorithm_runs(ring, name):
    g, truth = ring
    run = run_algorithm(name, g, seed=0)
    assert run.algorithm == name
    assert len(run.cover) >= 1
    assert run.elapsed_seconds >= 0.0


def test_quality_mode_covers_all_nodes(ring):
    g, _ = ring
    run = run_algorithm("OCA", g, seed=0, quality_mode=True)
    assert run.cover.covered_nodes() == set(g.nodes())


def test_raw_mode_skips_postprocessing(ring):
    g, _ = ring
    quality = run_algorithm("LFK", g, seed=0, quality_mode=True)
    raw = run_algorithm("LFK", g, seed=0, quality_mode=False)
    # Raw mode must not add orphan assignments.
    assert len(raw.cover.covered_nodes()) <= len(quality.cover.covered_nodes())


def test_unknown_algorithm_raises(ring):
    g, _ = ring
    with pytest.raises(AlgorithmError):
        run_algorithm("Louvain", g)


def test_deterministic_given_seed(ring):
    g, _ = ring
    a = run_algorithm("OCA", g, seed=77)
    b = run_algorithm("OCA", g, seed=77)
    assert a.cover == b.cover


def test_engine_options_forwarded(ring):
    g, _ = ring
    sequential = run_algorithm("OCA", g, seed=77)
    parallel = run_algorithm(
        "OCA", g, seed=77, workers=4, backend="thread", batch_size=1
    )
    assert parallel.cover == sequential.cover


class TestRunReplicates:
    def test_replicate_count_and_order(self, ring):
        g, _ = ring
        runs = run_replicates("OCA", g, replicates=3, seed=5)
        assert len(runs) == 3
        assert all(len(run.cover) >= 1 for run in runs)

    def test_identical_across_worker_counts(self, ring):
        g, _ = ring
        serial = run_replicates("OCA", g, replicates=4, seed=5)
        threaded = run_replicates(
            "OCA", g, replicates=4, seed=5, workers=4, backend="thread"
        )
        fanned = run_replicates(
            "OCA", g, replicates=4, seed=5, workers=2, backend="process"
        )
        assert [r.cover for r in threaded] == [r.cover for r in serial]
        assert [r.cover for r in fanned] == [r.cover for r in serial]

    def test_replicates_use_private_stream_seeds(self, ring):
        # Replicate i must behave exactly like a standalone run with its
        # stream seed — catches a regression handing every replicate the
        # same seed (covers may still coincide on easy graphs, so the
        # seed wiring is what's asserted, not cover inequality).
        g, _ = ring
        seeds = spawn_streams(5, 3)
        assert len(set(seeds)) == 3
        runs = run_replicates("OCA", g, replicates=3, seed=5)
        for stream_seed, run in zip(seeds, runs):
            standalone = run_algorithm("OCA", g, seed=stream_seed)
            assert run.cover == standalone.cover

    def test_replicates_validated(self, ring):
        g, _ = ring
        with pytest.raises(AlgorithmError):
            run_replicates("OCA", g, replicates=0)
