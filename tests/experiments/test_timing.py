"""Unit tests for timing instrumentation."""

import time

import pytest

from repro.experiments import Timer, TimingLog, time_call


def test_timer_measures_elapsed():
    with Timer() as timer:
        time.sleep(0.01)
    assert timer.elapsed >= 0.01


def test_time_call_returns_result_and_elapsed():
    result, elapsed = time_call(sum, range(100))
    assert result == 4950
    assert elapsed >= 0.0


def test_time_call_passes_kwargs():
    result, _ = time_call(sorted, [3, 1, 2], reverse=True)
    assert result == [3, 2, 1]


def test_timing_log_statistics():
    log = TimingLog()
    log.record("oca", 1.0)
    log.record("oca", 3.0)
    assert log.mean("oca") == pytest.approx(2.0)
    assert log.total("oca") == pytest.approx(4.0)


def test_timing_log_unknown_name():
    with pytest.raises(KeyError):
        TimingLog().mean("ghost")
