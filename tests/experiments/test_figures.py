"""Smoke + shape tests for the figure experiments at tiny scale.

These run each experiment end-to-end with reduced parameters so the suite
stays fast; the real scales live in benchmarks/.
"""

import pytest

from repro.experiments import (
    run_figure2,
    run_figure3,
    run_figure4,
    run_figure5,
    run_figure6,
    run_table1,
    run_wikipedia,
)


class TestTable1:
    def test_rows_and_render(self):
        result = run_table1(lfr_n=200, daisy_flowers=2, wikipedia_n=500, seed=0)
        assert [r.name for r in result.rows] == [
            "LFR-benchmark",
            "Daisy",
            "Wikipedia (synthetic)",
        ]
        assert all(r.nodes > 0 and r.edges > 0 for r in result.rows)
        rendered = result.render()
        assert "LFR-benchmark" in rendered
        assert "paper #nodes" in rendered


class TestFigure2:
    @pytest.fixture(scope="class")
    def result(self):
        return run_figure2(
            mus=(0.2, 0.6), n=300, algorithms=("OCA", "LFK"), seed=0
        )

    def test_series_per_algorithm(self, result):
        assert {s.name for s in result.series} == {"OCA", "LFK"}

    def test_theta_in_bounds(self, result):
        for series in result.series:
            assert all(0.0 <= y <= 1.0 for y in series.ys)

    def test_low_mixing_beats_high_mixing(self, result):
        oca = result.series_by_name("OCA")
        assert oca.ys[0] > oca.ys[-1]

    def test_render(self, result):
        assert "mu" in result.render()

    def test_unknown_series_raises(self, result):
        with pytest.raises(KeyError):
            result.series_by_name("CFinder")


class TestFigure3:
    def test_tiny_sweep(self):
        result = run_figure3(flower_counts=(2, 3), algorithms=("OCA",), seed=0)
        series = result.series_by_name("OCA")
        assert len(series.xs) == 2
        assert series.xs[0] == 120
        assert all(0.0 <= y <= 1.0 for y in series.ys)
        assert "nodes" in result.render()


class TestFigure4:
    @pytest.fixture(scope="class")
    def result(self):
        return run_figure4(seed=0)

    def test_all_algorithms_reported(self, result):
        assert set(result.matches) == {"OCA", "LFK", "CFinder"}

    def test_all_parts_matched(self, result):
        for parts in result.matches.values():
            assert [p.part for p in parts] == [
                "petal 1", "petal 2", "petal 3", "petal 4", "core",
            ]

    def test_oca_separates_parts(self, result):
        assert result.separates_parts("OCA")

    def test_mean_rho_bounds(self, result):
        for name in result.matches:
            assert 0.0 <= result.mean_rho(name) <= 1.0

    def test_render(self, result):
        rendered = result.render()
        assert "planted part" in rendered
        assert "core" in rendered


class TestFigure5:
    def test_tiny_sweep_with_cap(self):
        result = run_figure5(
            sizes=(200, 400), algorithms=("OCA", "CFinder"), cfinder_cap=200, seed=0
        )
        oca = result.series_by_name("OCA")
        cfinder = result.series_by_name("CFinder")
        assert len(oca.xs) == 2
        assert cfinder.xs == [200]  # capped above 200
        assert all(y > 0 for y in oca.ys)

    def test_render(self):
        result = run_figure5(sizes=(200,), algorithms=("OCA",), seed=0)
        assert "nodes" in result.render()


class TestFigure6:
    def test_tiny_sweep(self):
        result = run_figure6(
            community_sizes=(40, 80), n=300, algorithms=("OCA", "LFK"), seed=0
        )
        for name in ("OCA", "LFK"):
            series = result.series_by_name(name)
            assert series.xs == [40, 80]
            assert all(y > 0 for y in series.ys)
        assert "community size" in result.render()


class TestPaperScaleParameterisation:
    """The paper_scale flags reconstruct the paper's exact generator
    parameters (smoke-tested at one small size; the full sweeps are a
    benchmark concern)."""

    def test_figure5_paper_scale_single_point(self):
        result = run_figure5(
            sizes=(1200,),
            algorithms=("OCA",),
            cfinder_cap=0,
            paper_scale=True,
            seed=0,
        )
        series = result.series_by_name("OCA")
        assert series.xs == [1200]
        assert series.ys[0] > 0

    def test_figure6_paper_scale_single_point(self):
        result = run_figure6(
            community_sizes=(500,),
            n=1200,
            algorithms=("OCA",),
            paper_scale=True,
            seed=0,
        )
        series = result.series_by_name("OCA")
        assert series.xs == [500]
        assert series.ys[0] > 0


class TestWikipediaRun:
    def test_small_end_to_end(self):
        result = run_wikipedia(n=800, patience=10, seed=0)
        assert result.nodes == 800
        assert result.edges > 800
        assert result.communities >= 1
        assert result.oca_seconds > 0
        assert 0.0 <= result.theta_vs_topics <= 1.0
        assert "communities found" in result.render()
