"""Acceptance matrix: covers are shipping-invariant (ISSUE 7).

The zero-copy contract: for every registered detector, on integer- and
string-labelled graphs, the cover for a given (graph, seed, batch_size)
is **byte-identical** whether the compiled graph reaches process
workers by pickle or by shared memory — across batch sizes {1, 8, 64}.
Shipping (like ``workers`` and ``backend``) only changes wall-clock,
never results.

The baselines ignore the engine knobs entirely, so their rows are
trivially invariant — pinned anyway, because the matrix is the
regression net for "a detector grew an accidental shipping
dependency".
"""

import os

import pytest

from repro import DetectionRequest, Graph, get_detector
from repro.generators import ring_of_cliques
from repro.graph.shm import SEGMENT_PREFIX, live_segment_names, shm_available

DETECTORS = ("oca", "lfk", "cfinder", "cpm")
BATCH_SIZES = (1, 8, 64)
SEED = 29

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="shared memory unavailable on this platform"
)


def _dev_shm_entries():
    try:
        return {
            name
            for name in os.listdir("/dev/shm")
            if name.startswith(SEGMENT_PREFIX)
        }
    except FileNotFoundError:  # pragma: no cover - non-Linux
        return set()


@pytest.fixture(scope="module")
def int_graph():
    g, _ = ring_of_cliques(4, 5)
    return g


@pytest.fixture(scope="module")
def str_graph(int_graph):
    mapping = {node: f"n{node}" for node in int_graph.nodes()}
    g = Graph(nodes=(mapping[node] for node in int_graph.nodes()))
    for u, v in int_graph.edges():
        g.add_edge(mapping[u], mapping[v])
    return g


def _detect(name, graph, shipping, batch_size):
    request = DetectionRequest(
        graph=graph,
        seed=SEED,
        workers=2,
        backend="process",
        batch_size=batch_size,
        shipping=shipping,
    )
    return get_detector(name).detect(request).cover


@pytest.mark.parametrize("batch_size", BATCH_SIZES)
@pytest.mark.parametrize("labels", ["int", "str"])
@pytest.mark.parametrize("name", DETECTORS)
def test_cover_is_shipping_invariant(
    name, labels, batch_size, int_graph, str_graph, request
):
    graph = int_graph if labels == "int" else str_graph
    pickled = _detect(name, graph, "pickle", batch_size)
    shipped = _detect(name, graph, "shm", batch_size)
    assert shipped == pickled
    # Every ephemeral engine must have unlinked its export on the way out.
    assert not live_segment_names()


def test_no_dev_shm_leak_across_the_matrix():
    """Runs after the matrix (file order): nothing left in /dev/shm."""
    assert not _dev_shm_entries()


class TestSessionLifecycle:
    """Session/manager teardown owns the segments (ISSUE 7 tentpole)."""

    def test_session_close_unlinks_segments(self, int_graph):
        from repro import GraphSession

        before = _dev_shm_entries()
        session = GraphSession(
            int_graph.copy(), workers=2, backend="process",
            batch_size=4, shipping="shm",
        )
        try:
            session.detect("oca", seed=SEED)
            # The persistent pool's export is live while the session is.
            assert _dev_shm_entries() - before
        finally:
            session.close()
        assert _dev_shm_entries() == before
        assert not live_segment_names()

    def test_eviction_unlinks_the_victims_segments(self, int_graph):
        from repro import SessionManager

        other, _ = ring_of_cliques(5, 4)
        before = _dev_shm_entries()
        with SessionManager(
            max_sessions=1, workers=2, backend="process",
            batch_size=4, shipping="shm",
        ) as manager:
            manager.detect(int_graph, "oca", seed=SEED)
            # Binding a second graph evicts the first; the victim's
            # engine is closed (workers joined) and its export unlinked.
            manager.detect(other, "oca", seed=SEED)
            assert manager.stats.evictions == 1
        assert _dev_shm_entries() == before
        assert not live_segment_names()
