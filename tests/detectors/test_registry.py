"""Unit tests for the detector registry and the uniform result contract."""

import pytest

from repro import (
    CommunityDetector,
    DetectionRequest,
    DetectionResult,
    OCAResult,
    available_detectors,
    get_detector,
    register_detector,
)
from repro.errors import AlgorithmError
from repro.generators import ring_of_cliques


@pytest.fixture(scope="module")
def ring():
    return ring_of_cliques(4, 5)


BUILTIN = ("oca", "lfk", "cfinder", "cpm")


class TestRegistry:
    @pytest.mark.parametrize("name", BUILTIN)
    def test_builtin_detectors_registered(self, name):
        detector = get_detector(name)
        assert isinstance(detector, CommunityDetector)
        assert detector.name == name

    @pytest.mark.parametrize("label", ["OCA", "LFK", "CFinder", "Cpm"])
    def test_lookup_is_case_insensitive(self, label):
        assert get_detector(label).name == label.lower()

    def test_unknown_name_raises_with_listing(self):
        with pytest.raises(AlgorithmError, match="cfinder"):
            get_detector("Louvain")

    def test_available_detectors_lists_builtins(self):
        names = available_detectors()
        for name in BUILTIN:
            assert name in names

    def test_custom_detector_registration(self, ring):
        g, _ = ring

        @register_detector("constant")
        class ConstantDetector:
            name = "constant"

            def detect(self, request):
                from repro.communities import Cover

                return DetectionResult(
                    cover=Cover([set(request.graph.nodes())]),
                    algorithm=self.name,
                )

        try:
            result = get_detector("constant").detect(DetectionRequest(graph=g))
            assert len(result.cover) == 1
        finally:
            from repro.detectors import registry

            registry._DETECTORS.pop("constant", None)


class TestUniformContract:
    @pytest.mark.parametrize("name", BUILTIN)
    def test_result_shape(self, ring, name):
        g, _ = ring
        result = get_detector(name).detect(DetectionRequest(graph=g, seed=0))
        assert isinstance(result, DetectionResult)
        assert result.algorithm == name
        assert result.params == {}
        assert len(result.cover) >= 1
        assert result.elapsed_seconds >= 0.0
        assert isinstance(result.stats, dict)

    def test_oca_result_is_detection_result_subtype(self, ring):
        g, _ = ring
        result = get_detector("oca").detect(DetectionRequest(graph=g, seed=0))
        assert isinstance(result, OCAResult)
        assert isinstance(result, DetectionResult)
        assert result.raw_cover is not None
        assert result.stats["c_source"] in ("power_method", "cache")
        assert result.stats["engine_pool"] == "none"

    def test_params_are_echoed(self, ring):
        g, _ = ring
        result = get_detector("cpm").detect(
            DetectionRequest(graph=g, seed=0, params={"k": 4})
        )
        assert result.params == {"k": 4}
        assert result.stats["k"] == 4

    @pytest.mark.parametrize("name", ["oca", "lfk", "cpm"])
    def test_unknown_params_rejected(self, ring, name):
        g, _ = ring
        with pytest.raises(AlgorithmError, match="unknown parameter"):
            get_detector(name).detect(
                DetectionRequest(graph=g, params={"gamma": 2.0})
            )

    def test_oca_config_object_param(self, ring):
        from repro import OCAConfig

        g, _ = ring
        config = OCAConfig(min_community_size=3)
        result = get_detector("oca").detect(
            DetectionRequest(graph=g, seed=1, params={"config": config})
        )
        assert all(len(c) >= 3 for c in result.cover)

    def test_oca_config_conflicts_with_params(self, ring):
        from repro import OCAConfig

        g, _ = ring
        with pytest.raises(AlgorithmError):
            get_detector("oca").detect(
                DetectionRequest(
                    graph=g,
                    params={"config": OCAConfig(), "min_community_size": 3},
                )
            )


class TestCompatWrappers:
    def test_legacy_wrappers_warn(self, ring):
        from repro import cfinder, lfk, oca

        g, _ = ring
        for wrapper in (
            lambda: oca(g, seed=0),
            lambda: lfk(g, seed=0),
            lambda: cfinder(g),
        ):
            with pytest.deprecated_call():
                wrapper()

    def test_registry_path_is_warning_free(self, ring):
        import warnings

        g, _ = ring
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            for name in BUILTIN:
                get_detector(name).detect(DetectionRequest(graph=g, seed=0))
