"""Baseline representation matrix (ISSUE 10).

The CSR-native baseline contract: every baseline detector returns covers
**byte-identical** across ``representation={dict, csr}`` — on int- and
str-labelled graphs, one-shot, through a warm :class:`GraphSession`, and
served from a store-loaded session — and the csr path never touches the
dict :class:`~repro.graph.Graph` adjacency.
"""

import pytest

from repro import (
    DetectionRequest,
    Graph,
    GraphSession,
    GraphStore,
    SessionManager,
    compile_graph,
    get_detector,
)
from repro.errors import ConfigurationError
from repro.generators import ring_of_cliques

BASELINES = ("lfk", "cfinder", "cpm", "modularity_greedy")
ALL_DETECTORS = ("oca",) + BASELINES
SEED = 53


@pytest.fixture(scope="module")
def int_graph():
    g, _ = ring_of_cliques(4, 5)
    return g


@pytest.fixture(scope="module")
def str_graph(int_graph):
    """The same structure with string labels, same construction order."""
    mapping = {node: f"n{node}" for node in int_graph.nodes()}
    g = Graph(nodes=(mapping[node] for node in int_graph.nodes()))
    for u, v in int_graph.edges():
        g.add_edge(mapping[u], mapping[v])
    return g


@pytest.fixture(scope="module", params=["int", "str"])
def graph(request, int_graph, str_graph):
    return int_graph if request.param == "int" else str_graph


@pytest.fixture(scope="module")
def dict_covers(graph):
    """Reference covers from the forced label-keyed path."""
    covers = {}
    for name in BASELINES:
        result = get_detector(name).detect(
            DetectionRequest(graph=graph, seed=SEED, representation="dict")
        )
        assert result.stats["representation"] == "dict"
        covers[name] = result.cover
    return covers


@pytest.mark.parametrize("name", BASELINES)
class TestRepresentationMatrix:
    def test_one_shot_csr(self, graph, dict_covers, name):
        result = get_detector(name).detect(
            DetectionRequest(graph=graph, seed=SEED, representation="csr")
        )
        assert result.stats["representation"] == "csr"
        assert result.cover == dict_covers[name]

    def test_auto_resolves_to_csr(self, graph, dict_covers, name):
        result = get_detector(name).detect(
            DetectionRequest(graph=graph, seed=SEED)
        )
        assert result.stats["representation"] == "csr"
        assert result.cover == dict_covers[name]

    def test_one_shot_csr_on_compiled_graph(self, graph, dict_covers, name):
        result = get_detector(name).detect(
            DetectionRequest(
                graph=compile_graph(graph), seed=SEED, representation="csr"
            )
        )
        # Compiled input must come back in the original label space.
        assert result.cover == dict_covers[name]

    @pytest.mark.parametrize("representation", ["dict", "csr"])
    def test_warm_session(self, graph, dict_covers, name, representation):
        with GraphSession(graph, representation=representation) as session:
            session.detect(name, seed=SEED + 1)  # warm every cache
            result = session.detect(name, seed=SEED)
        assert result.stats["representation"] == representation
        assert result.cover == dict_covers[name]

    @pytest.mark.parametrize("representation", ["dict", "csr"])
    def test_store_loaded_session(
        self, graph, dict_covers, name, representation, tmp_path
    ):
        store = GraphStore(tmp_path / "store")
        with SessionManager(max_sessions=1, store=store) as manager:
            manager.detect(graph, name, seed=SEED)  # compile + save
            fingerprint = manager.fingerprint(graph)
        # Fresh manager over the same directory: the restart.
        with SessionManager(
            max_sessions=1,
            store=GraphStore(tmp_path / "store"),
            representation=representation,
        ) as manager:
            result = manager.detect(fingerprint, name, seed=SEED)
        assert result.stats["session_source"] == "store"
        assert result.stats["representation"] == representation
        assert result.cover == dict_covers[name]

    def test_unknown_representation_rejected(self, graph, dict_covers, name):
        with pytest.raises(ConfigurationError, match="representation"):
            get_detector(name).detect(
                DetectionRequest(graph=graph, representation="sparse")
            )


def test_csr_path_never_reads_dict_adjacency(int_graph, monkeypatch):
    """Monkeypatch-proof: with the graph pre-compiled, the csr path of
    every baseline runs without a single ``Graph.neighbors`` call."""
    compile_graph(int_graph)  # prime the cache (compilation reads neighbors)

    def no_neighbors(self, node):
        raise AssertionError("Graph.neighbors ran on the csr path")

    monkeypatch.setattr(Graph, "neighbors", no_neighbors)
    for name in BASELINES:
        result = get_detector(name).detect(
            DetectionRequest(graph=int_graph, seed=SEED, representation="csr")
        )
        assert result.stats["representation"] == "csr"
        assert len(result.cover) > 0


def test_store_warm_serving_runs_all_baselines_off_the_dict_form(
    int_graph, tmp_path, monkeypatch
):
    """A store-loaded session serves every baseline without recompiling
    and without the dict adjacency even existing in the process."""
    store = GraphStore(tmp_path / "store")
    with SessionManager(max_sessions=1, store=store) as manager:
        baselines = {
            name: manager.detect(int_graph, name, seed=SEED).cover
            for name in BASELINES
        }
        fingerprint = manager.fingerprint(int_graph)

    def no_compile(*args, **kwargs):
        raise AssertionError("_build_csr ran on a store-warm session")

    def no_neighbors(self, node):
        raise AssertionError("Graph.neighbors ran on a store-warm session")

    monkeypatch.setattr("repro.graph.csr._build_csr", no_compile)
    monkeypatch.setattr(Graph, "neighbors", no_neighbors)

    with SessionManager(
        max_sessions=1, store=GraphStore(tmp_path / "store")
    ) as manager:
        for name in BASELINES:
            result = manager.detect(fingerprint, name, seed=SEED)
            assert result.cover == baselines[name]


def test_serving_annotates_session_source_for_all_five_detectors(int_graph):
    with SessionManager(max_sessions=1) as manager:
        for index, name in enumerate(ALL_DETECTORS):
            result = manager.detect(int_graph, name, seed=SEED)
            expected = "compiled" if index == 0 else "warm"
            assert result.stats["session_source"] == expected
            if name in BASELINES:
                assert result.stats["representation"] == "csr"


def test_modularity_greedy_returns_a_partition(int_graph):
    from repro.communities import Partition

    result = get_detector("modularity_greedy").detect(
        DetectionRequest(graph=int_graph, seed=SEED)
    )
    assert isinstance(result.cover, Partition)
    covered = {node for block in result.cover for node in block}
    assert covered == set(int_graph.nodes())
