"""Acceptance matrix: registry/session covers vs the legacy entry points.

The redesign contract (ISSUE 3): every algorithm, reached through
``get_detector(name)`` — on either graph form, one-shot or through a
reused :class:`~repro.detectors.GraphSession` — returns covers
**byte-identical** to the original entry points for the same seeds.
The matrix below pins all of
``4 detectors x {Graph, CompiledGraph} x {one-shot, session-reuse}``
on both integer- and string-labelled graphs.
"""

import warnings

import pytest

from repro import (
    DetectionRequest,
    Graph,
    GraphSession,
    cfinder,
    compile_graph,
    get_detector,
    lfk,
    oca,
)
from repro.baselines import clique_percolation
from repro.generators import ring_of_cliques

DETECTORS = ("oca", "lfk", "cfinder", "cpm")
SEED = 29


def _legacy_cover(name, graph, seed):
    """The pre-registry entry point for each algorithm."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        if name == "oca":
            return oca(graph, seed=seed).cover
        if name == "lfk":
            return lfk(graph, seed=seed).cover
        if name == "cfinder":
            return cfinder(graph)
    return clique_percolation(graph, k=3).cover  # cpm


@pytest.fixture(scope="module")
def int_graph():
    g, _ = ring_of_cliques(4, 5)
    return g


@pytest.fixture(scope="module")
def str_graph(int_graph):
    """The same structure with string labels, same construction order."""
    mapping = {node: f"n{node}" for node in int_graph.nodes()}
    g = Graph(nodes=(mapping[node] for node in int_graph.nodes()))
    for u, v in int_graph.edges():
        g.add_edge(mapping[u], mapping[v])
    return g


@pytest.fixture(scope="module", params=["int", "str"])
def graph(request, int_graph, str_graph):
    return int_graph if request.param == "int" else str_graph


@pytest.fixture(scope="module")
def legacy(graph):
    return {name: _legacy_cover(name, graph, SEED) for name in DETECTORS}


@pytest.mark.parametrize("name", DETECTORS)
class TestAcceptanceMatrix:
    def test_one_shot_on_graph(self, graph, legacy, name):
        result = get_detector(name).detect(
            DetectionRequest(graph=graph, seed=SEED)
        )
        assert result.cover == legacy[name]

    def test_one_shot_on_compiled_graph(self, graph, legacy, name):
        compiled = compile_graph(graph)
        result = get_detector(name).detect(
            DetectionRequest(graph=compiled, seed=SEED)
        )
        # Compiled input must come back in the original label space.
        assert result.cover == legacy[name]

    def test_session_reuse_on_graph(self, graph, legacy, name):
        with GraphSession(graph) as session:
            session.detect(name, seed=SEED + 1)  # warm every cache
            result = session.detect(name, seed=SEED)
        assert result.cover == legacy[name]

    def test_session_reuse_on_compiled_graph(self, graph, legacy, name):
        with GraphSession(compile_graph(graph)) as session:
            session.detect(name, seed=SEED + 1)
            result = session.detect(name, seed=SEED)
        assert result.cover == legacy[name]


def test_covers_invariant_under_relabelling(int_graph, str_graph):
    """Trajectories are a pure function of construction order.

    Running any detector on the string-relabelled twin and mapping the
    labels back must reproduce the integer graph's cover exactly — the
    determinism property the rank-ordered draws (scheduler) and
    rank-ordered scans (LFK) exist to provide.
    """
    for name in DETECTORS:
        on_int = get_detector(name).detect(
            DetectionRequest(graph=int_graph, seed=SEED)
        )
        on_str = get_detector(name).detect(
            DetectionRequest(graph=str_graph, seed=SEED)
        )
        unmapped = {
            frozenset(int(node[1:]) for node in community)
            for community in on_str.cover
        }
        assert unmapped == {frozenset(c) for c in on_int.cover}


def test_run_algorithm_goes_through_registry(int_graph):
    """The experiment runner accepts registry keys and figure labels."""
    from repro.experiments import run_algorithm

    by_label = run_algorithm("CFinder", int_graph, seed=SEED)
    by_key = run_algorithm("cfinder", int_graph, seed=SEED)
    assert by_label.cover == by_key.cover
    cpm_run = run_algorithm("cpm", int_graph, seed=SEED)
    assert cpm_run.cover == by_key.cover


@pytest.mark.parametrize(
    "algorithm", ["oca", "lfk", "cfinder", "cpm", "modularity_greedy"]
)
def test_cli_detect_accepts_every_registered_algorithm(
    tmp_path, capsys, algorithm
):
    from repro.cli import main
    from repro.graph import write_edge_list

    g, _ = ring_of_cliques(3, 4)
    path = tmp_path / "graph.txt"
    write_edge_list(g, path)
    assert main(["detect", str(path), "--algorithm", algorithm, "--seed", "0"]) == 0
    assert capsys.readouterr().out.strip()
