"""Unit tests for the GraphSession serving layer.

The session's whole reason to exist: ``detect`` call 2..N on one graph
performs no graph compilation and no power-method work, and reuses the
persistent engine worker pool — while returning covers byte-identical
to one-shot calls.
"""

import pytest

from repro import DetectionRequest, GraphSession, get_detector
from repro.errors import AlgorithmError, SessionClosedError
from repro.generators import ring_of_cliques


@pytest.fixture()
def graph():
    g, _ = ring_of_cliques(4, 5)
    return g


class TestSessionBasics:
    def test_context_manager_and_close(self, graph):
        with GraphSession(graph) as session:
            assert not session.closed
            session.detect("oca", seed=0)
        assert session.closed
        with pytest.raises(SessionClosedError, match="closed"):
            session.detect("oca", seed=0)
        # A second explicit close is a lifecycle error, loudly — not a
        # crash somewhere inside the pool teardown path.
        with pytest.raises(SessionClosedError, match="already-closed"):
            session.close()
        # SessionClosedError subclasses the old error type, so callers
        # that caught AlgorithmError keep working.
        assert issubclass(SessionClosedError, AlgorithmError)

    def test_close_inside_with_block_exits_cleanly(self, graph):
        with GraphSession(graph) as session:
            session.close()
        assert session.closed  # __exit__ tolerated the early close

    def test_reopen_revives_a_closed_session(self, graph):
        session = GraphSession(graph)
        cold = session.detect("oca", seed=0)
        session.close()
        assert session.reopen() is session
        warm = session.detect("oca", seed=0)
        session.close()
        assert warm.cover == cold.cover
        # The compiled graph and spectral cache survive a close/reopen:
        # only the worker pool is rebuilt.
        assert warm.stats["c_source"] == "cache"
        assert warm.stats["compiled_reused"] is True
        assert session.stats.pools_closed == 2
        session.reopen().reopen()  # no-op on an open session
        session.close()

    def test_memory_bytes_reports_compiled_footprint(self, graph):
        with GraphSession(graph) as session:
            footprint = session.memory_bytes()
        assert footprint == session.stats.memory_bytes
        assert footprint >= session.compiled.nbytes() > 0

    def test_rejects_non_graph_input(self):
        with pytest.raises(AlgorithmError):
            GraphSession([1, 2, 3])

    def test_repr_reports_size_and_calls(self, graph):
        with GraphSession(graph) as session:
            session.detect("oca", seed=0)
            text = repr(session)
        assert "n=20" in text and "calls=1" in text

    def test_detect_matches_one_shot(self, graph):
        one_shot = get_detector("oca").detect(
            DetectionRequest(graph=graph, seed=5)
        )
        with GraphSession(graph) as session:
            session.detect("oca", seed=3)  # warm the caches first
            warm = session.detect("oca", seed=5)
        assert warm.cover == one_shot.cover
        assert warm.raw_cover == one_shot.raw_cover
        assert warm.c == one_shot.c

    def test_all_algorithms_detectable(self, graph):
        with GraphSession(graph) as session:
            for name in ("oca", "lfk", "cfinder", "cpm"):
                assert len(session.detect(name, seed=0).cover) >= 1
            assert session.stats.detect_calls == 4
            assert session.stats.by_algorithm == {
                "oca": 1, "lfk": 1, "cfinder": 1, "cpm": 1,
            }


class TestWarmPath:
    def test_second_detect_hits_all_caches(self, graph):
        with GraphSession(graph) as session:
            cold = session.detect("oca", seed=0)
            warm = session.detect("oca", seed=1)
        assert cold.stats["c_source"] == "power_method"
        assert cold.stats["engine_pool"] == "fresh"
        assert warm.stats["c_source"] == "cache"
        assert warm.stats["compiled_reused"] is True
        assert warm.stats["engine_pool"] == "reused"

    def test_second_detect_runs_no_compile_or_power_method(
        self, graph, monkeypatch
    ):
        with GraphSession(graph) as session:
            session.detect("oca", seed=0)

            def no_compile(*args, **kwargs):
                raise AssertionError("compile_graph ran on a warm session")

            def no_power_method(*args, **kwargs):
                raise AssertionError("power method ran on a warm session")

            monkeypatch.setattr("repro.graph.csr._build_csr", no_compile)
            monkeypatch.setattr(
                "repro.core.spectral.power_method", no_power_method
            )
            result = session.detect("oca", seed=1)
        assert len(result.cover) >= 1

    def test_stats_accumulate(self, graph):
        with GraphSession(graph) as session:
            for seed in range(4):
                session.detect("oca", seed=seed)
            stats = session.stats
        assert stats.detect_calls == 4
        assert stats.power_method_runs == 1
        assert stats.spectral_cache_hits == 3
        assert stats.pool_reuses == 3
        assert stats.detect_seconds > 0.0

    def test_pool_reuse_with_thread_workers(self, graph):
        serial = get_detector("oca").detect(DetectionRequest(graph=graph, seed=7))
        with GraphSession(graph, workers=2, backend="thread") as session:
            first = session.detect("oca", seed=7)
            second = session.detect("oca", seed=7)
        assert first.cover == serial.cover
        assert second.cover == serial.cover
        assert second.stats["engine_pool"] == "reused"

    def test_per_call_engine_knobs_beat_the_session_pool(self, graph):
        # batch_size is part of the cover's identity, so a per-call
        # override must run on an engine that honours it — never be
        # silently dropped in favour of the session's warm pool.
        one_shot = get_detector("oca").detect(
            DetectionRequest(graph=graph, seed=2, batch_size=8)
        )
        with GraphSession(graph) as session:
            session.detect("oca", seed=2)
            overridden = session.detect("oca", seed=2, batch_size=8)
        assert overridden.engine_stats.batch_size == 8
        assert overridden.stats["engine_pool"] == "none"
        assert overridden.cover == one_shot.cover

    def test_config_engine_knobs_beat_the_session_pool(self, graph):
        from repro import OCAConfig

        with GraphSession(graph) as session:
            result = session.detect(
                "oca", seed=2, config=OCAConfig(batch_size=8, workers=2, backend="thread")
            )
        assert result.engine_stats.batch_size == 8
        assert result.engine_stats.workers == 2
        assert result.stats["engine_pool"] == "none"

    def test_incompatible_config_rebuilds_pool(self, graph):
        from repro import OCAConfig

        with GraphSession(graph) as session:
            session.detect("oca", seed=0)
            # A different c changes the shipped fitness: the persistent
            # pool must be torn down and rebuilt, not silently reused.
            other = session.detect(
                "oca", seed=0, config=OCAConfig(c=0.25)
            )
            again = session.detect(
                "oca", seed=0, config=OCAConfig(c=0.25)
            )
        assert other.stats["engine_pool"] == "fresh"
        assert again.stats["engine_pool"] == "reused"


class TestSpectralCacheSemantics:
    def test_mutation_invalidates_cached_spectrum(self, graph):
        from repro import compile_graph
        from repro.core.vector_space import shared_admissible_c

        c1, hit1 = shared_admissible_c(graph)
        _, hit2 = shared_admissible_c(graph)
        assert (hit1, hit2) == (False, True)
        before = compile_graph(graph)
        assert before.spectral_cache
        graph.add_edge(0, 10)
        after = compile_graph(graph)
        assert after is not before
        _, hit3 = shared_admissible_c(graph)
        assert hit3 is False

    def test_cache_travels_through_pickle(self, graph):
        import pickle

        from repro import compile_graph
        from repro.core.vector_space import shared_admissible_c

        c, _ = shared_admissible_c(graph)
        compiled = compile_graph(graph)
        clone = pickle.loads(pickle.dumps(compiled))
        assert clone.spectral_cache == compiled.spectral_cache
        c2, hit = shared_admissible_c(clone)
        assert hit is True
        assert c2 == c
