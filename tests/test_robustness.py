"""Robustness and failure-injection tests across the stack.

These exercise the paths a clean-room unit test never hits: exotic node
labels flowing end-to-end, corrupt input files, degenerate graphs, and
adversarial configurations.
"""

import io

import pytest

from repro import Graph, oca
from repro.baselines import cfinder, lfk
from repro.communities import Cover, read_cover, theta, write_cover
from repro.errors import GraphFormatError, ReproError
from repro.graph import read_edge_list, write_edge_list
from repro.generators import ring_of_cliques


class TestExoticLabels:
    """Node labels are arbitrary hashables; nothing may assume ints."""

    @pytest.fixture
    def labelled_graph(self):
        g, truth = ring_of_cliques(3, 5)
        mapping = {node: f"user-{node:02d}@example" for node in g.nodes()}
        relabelled = Graph()
        for u, v in g.edges():
            relabelled.add_edge(mapping[u], mapping[v])
        relabelled_truth = Cover(
            [{mapping[v] for v in c} for c in truth]
        )
        return relabelled, relabelled_truth

    def test_oca_on_string_labels(self, labelled_graph):
        g, truth = labelled_graph
        result = oca(g, seed=0)
        assert theta(truth, result.cover) == pytest.approx(1.0)

    def test_lfk_on_string_labels(self, labelled_graph):
        g, truth = labelled_graph
        assert theta(truth, lfk(g, seed=0).cover) == pytest.approx(1.0)

    def test_cfinder_on_string_labels(self, labelled_graph):
        g, truth = labelled_graph
        assert theta(truth, cfinder(g)) == pytest.approx(1.0)

    def test_tuple_labels_survive_detection(self):
        g = Graph(edges=[((0, "a"), (0, "b")), ((0, "b"), (0, "c")),
                         ((0, "a"), (0, "c"))])
        result = oca(g, seed=0)
        assert len(result.cover) == 1

    def test_unicode_labels_round_trip(self, tmp_path):
        g = Graph(edges=[("héllo", "wörld"), ("wörld", "日本語")])
        path = tmp_path / "unicode.txt"
        write_edge_list(g, path)
        assert read_edge_list(path) == g

    def test_mixed_int_and_string_labels(self):
        g = Graph(edges=[(1, "one"), ("one", 2), (2, 1)])
        result = oca(g, seed=0)
        assert result.cover.covered_nodes() <= {1, 2, "one"}


class TestCorruptInputs:
    def test_truncated_edge_line(self):
        with pytest.raises(GraphFormatError):
            read_edge_list(io.StringIO("1 2\n3\n"))

    def test_binaryish_garbage_line(self):
        with pytest.raises(GraphFormatError):
            read_edge_list(io.StringIO("\x00\x01\n"))

    def test_whitespace_only_file_is_empty_graph(self):
        graph = read_edge_list(io.StringIO("   \n\t\n"))
        assert graph.number_of_nodes() == 0

    def test_all_errors_catchable_as_repro_error(self):
        with pytest.raises(ReproError):
            read_edge_list(io.StringIO("lonely\n"))


class TestDegenerateGraphs:
    def test_oca_on_single_node(self):
        result = oca(Graph(nodes=["only"]), seed=0, min_community_size=1)
        assert result.cover == Cover([{"only"}])

    def test_oca_on_single_edge(self):
        result = oca(Graph(edges=[(0, 1)]), seed=0)
        assert result.cover == Cover([{0, 1}])

    def test_oca_on_edgeless_nodes(self):
        result = oca(Graph(nodes=range(5)), seed=0, min_community_size=1)
        # Each isolated node is its own singleton local optimum.
        assert result.cover.covered_nodes() == set(range(5))

    def test_lfk_on_single_edge(self):
        result = lfk(Graph(edges=[(0, 1)]), seed=0)
        assert result.cover.covered_nodes() == {0, 1}

    def test_cfinder_on_edgeless_graph(self):
        # No clique of size >= 3 exists, so no k = 3 communities.
        assert len(cfinder(Graph(nodes=range(3)))) == 0

    def test_oca_on_many_components(self):
        g = Graph()
        for base in range(0, 30, 3):
            g.add_edge(base, base + 1)
            g.add_edge(base + 1, base + 2)
            g.add_edge(base, base + 2)
        result = oca(g, seed=0)
        assert len(result.cover) == 10
        for community in result.cover:
            assert len(community) == 3


class TestAdversarialConfig:
    def test_zero_seed_fraction_still_works(self):
        g, truth = ring_of_cliques(3, 5)
        result = oca(g, seed=0, seed_fraction=0.0)
        # Starting from bare seeds, growth still finds the cliques.
        assert theta(truth, result.cover) == pytest.approx(1.0)

    def test_tiny_growth_budget_terminates(self):
        g, _ = ring_of_cliques(3, 5)
        result = oca(g, seed=0, max_growth_steps=1)
        assert result.runs > 0  # ran, just with stunted growth

    def test_huge_min_community_size_yields_empty_cover(self):
        g, _ = ring_of_cliques(3, 5)
        result = oca(g, seed=0, min_community_size=1000)
        assert len(result.cover) == 0

    def test_cover_round_trip_with_exotic_members(self, tmp_path):
        cover = Cover([{"a b"}])  # a label with a space cannot round-trip
        path = tmp_path / "cover.txt"
        write_cover(cover, path)
        # Documented limitation: whitespace splits tokens on re-read.
        restored = read_cover(path)
        assert restored != cover
