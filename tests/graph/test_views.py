"""Unit tests for the read-only SubgraphView."""

import pytest

from repro.errors import GraphError, NodeNotFoundError
from repro.graph import Graph, SubgraphView, induced_subgraph
from repro.generators import complete_graph, path_graph, ring_of_cliques


@pytest.fixture
def view(k5):
    return SubgraphView(k5, {0, 1, 2})


class TestConstruction:
    def test_missing_nodes_rejected(self, k5):
        with pytest.raises(NodeNotFoundError):
            SubgraphView(k5, {0, 99})

    def test_empty_view(self, k5):
        view = SubgraphView(k5, set())
        assert view.number_of_nodes() == 0
        assert view.number_of_edges() == 0
        assert list(view.edges()) == []


class TestQueries:
    def test_counts(self, view):
        assert view.number_of_nodes() == 3
        assert view.number_of_edges() == 3

    def test_membership(self, view):
        assert view.has_node(0)
        assert not view.has_node(3)  # in parent, not in view
        assert 0 in view and 3 not in view

    def test_edges_filtered(self, view):
        assert view.has_edge(0, 1)
        assert not view.has_edge(0, 3)

    def test_neighbors_restricted(self, view):
        assert view.neighbors(0) == {1, 2}

    def test_neighbors_outside_view_raise(self, view):
        with pytest.raises(NodeNotFoundError):
            view.neighbors(3)

    def test_degrees(self, view):
        assert view.degree(0) == 2
        assert view.degrees() == {0: 2, 1: 2, 2: 2}

    def test_edges_each_once(self, view):
        edges = list(view.edges())
        assert len(edges) == 3
        assert len({frozenset(e) for e in edges}) == 3

    def test_edges_inside(self, view):
        assert view.edges_inside({0, 1}) == 1
        assert view.edges_inside({0, 1, 3}) == 1  # 3 filtered out

    def test_boundary_degree(self, view):
        assert view.boundary_degree(0, {1, 2}) == 2
        assert view.boundary_degree(0, {3, 4}) == 0

    def test_len_and_iter(self, view):
        assert len(view) == 3
        assert sorted(view) == [0, 1, 2]


class TestEquivalenceWithCopy:
    @pytest.mark.parametrize("subset", [{0, 1}, {0, 2, 4}, set()])
    def test_matches_induced_subgraph(self, subset):
        g, _ = ring_of_cliques(3, 5)
        view = SubgraphView(g, subset)
        copy = induced_subgraph(g, subset)
        assert view.number_of_nodes() == copy.number_of_nodes()
        assert view.number_of_edges() == copy.number_of_edges()
        assert {frozenset(e) for e in view.edges()} == {
            frozenset(e) for e in copy.edges()
        }

    def test_materialize_equals_induced(self):
        g = complete_graph(6)
        view = SubgraphView(g, {0, 1, 2, 3})
        assert view.materialize() == induced_subgraph(g, {0, 1, 2, 3})


class TestLiveness:
    def test_view_reflects_parent_mutation(self):
        g = path_graph(4)
        view = SubgraphView(g, {0, 1, 2})
        assert view.number_of_edges() == 2
        g.add_edge(0, 2)
        assert view.number_of_edges() == 3

    def test_materialized_copy_is_independent(self):
        g = path_graph(4)
        view = SubgraphView(g, {0, 1, 2})
        copy = view.materialize()
        g.add_edge(0, 2)
        assert copy.number_of_edges() == 2


class TestReadOnly:
    @pytest.mark.parametrize(
        "method,args",
        [
            ("add_node", (9,)),
            ("add_edge", (0, 9)),
            ("remove_node", (0,)),
            ("remove_edge", (0, 1)),
        ],
    )
    def test_mutation_refused(self, view, method, args):
        with pytest.raises(GraphError):
            getattr(view, method)(*args)


class TestAlgorithmsOnViews:
    def test_growth_runs_on_a_view(self):
        """The greedy search only needs the read-only protocol, so a
        view works as the host graph."""
        from repro.core import DirectedLaplacianFitness, grow_community

        g, truth = ring_of_cliques(3, 5)
        view = SubgraphView(g, set(truth[0]) | set(truth[1]))
        result = grow_community(view, [0], DirectedLaplacianFitness(c=0.4))
        assert result.members == truth[0]

    def test_statistics_on_views(self):
        from repro.graph import average_degree, density

        g = complete_graph(6)
        view = SubgraphView(g, {0, 1, 2})
        assert density(view) == pytest.approx(1.0)
        assert average_degree(view) == pytest.approx(2.0)
