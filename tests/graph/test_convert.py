"""Unit tests for third-party interop conversions."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import GraphError
from repro.graph import (
    Graph,
    from_edge_array,
    from_networkx,
    from_scipy_sparse,
    to_networkx,
    to_scipy_sparse,
)

networkx = pytest.importorskip("networkx")


def test_networkx_round_trip(k5):
    assert from_networkx(to_networkx(k5)) == k5


def test_from_networkx_drops_self_loops():
    nx_graph = networkx.Graph([(0, 0), (0, 1)])
    graph = from_networkx(nx_graph)
    assert graph.number_of_edges() == 1


def test_from_networkx_symmetrises_directed():
    nx_graph = networkx.DiGraph([(0, 1), (1, 0), (1, 2)])
    graph = from_networkx(nx_graph)
    assert graph.number_of_edges() == 2


def test_from_networkx_keeps_isolates():
    nx_graph = networkx.Graph()
    nx_graph.add_node("solo")
    assert from_networkx(nx_graph).has_node("solo")


def test_scipy_round_trip(triangle):
    assert from_scipy_sparse(to_scipy_sparse(triangle)) == triangle


def test_from_scipy_requires_square():
    with pytest.raises(GraphError):
        from_scipy_sparse(sp.csr_matrix(np.ones((2, 3))))


def test_from_scipy_ignores_diagonal():
    matrix = sp.csr_matrix(np.array([[1.0, 1.0], [1.0, 1.0]]))
    graph = from_scipy_sparse(matrix)
    assert graph.number_of_edges() == 1


def test_from_edge_array():
    edges = np.array([[0, 1], [1, 2], [2, 2]])
    graph = from_edge_array(edges)
    assert graph.number_of_edges() == 2


def test_from_edge_array_shape_checked():
    with pytest.raises(GraphError):
        from_edge_array(np.array([0, 1, 2]))
