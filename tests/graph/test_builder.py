"""Unit tests for GraphBuilder input hygiene."""

import pytest

from repro.errors import GraphError
from repro.graph import GraphBuilder


def test_builds_simple_graph():
    graph = GraphBuilder().add_edges([(0, 1), (1, 2)]).build()
    assert graph.number_of_edges() == 2


def test_duplicates_merged_and_counted():
    builder = GraphBuilder()
    builder.add_edges([(0, 1), (1, 0), (0, 1)])
    assert builder.build().number_of_edges() == 1
    assert builder.report.duplicates == 2
    assert builder.report.edges_seen == 3
    assert builder.report.edges_added == 1


def test_self_loops_dropped_by_default():
    builder = GraphBuilder()
    builder.add_edge(5, 5)
    assert builder.build().number_of_edges() == 0
    assert builder.report.self_loops == 1


def test_self_loops_can_be_fatal():
    builder = GraphBuilder(drop_self_loops=False)
    with pytest.raises(GraphError):
        builder.add_edge(5, 5)


def test_relabel_densifies_labels():
    builder = GraphBuilder(relabel=True)
    builder.add_edges([("x", "y"), ("y", "z")])
    graph = builder.build()
    assert set(graph.nodes()) == {0, 1, 2}
    assert builder.labels == {"x": 0, "y": 1, "z": 2}


def test_add_node_allows_isolates():
    graph = GraphBuilder().add_node("solo").build()
    assert graph.has_node("solo")
    assert graph.degree("solo") == 0


def test_report_as_dict():
    builder = GraphBuilder()
    builder.add_edges([(0, 1), (1, 1)])
    report = builder.report.as_dict()
    assert report["edges_seen"] == 2
    assert report["self_loops"] == 1
    assert report["edges_added"] == 1


def test_build_is_reusable():
    builder = GraphBuilder()
    builder.add_edge(0, 1)
    first = builder.build()
    builder.add_edge(1, 2)
    assert first.number_of_edges() == 2  # same object keeps growing
