"""Unit tests for subgraph and neighbourhood extraction."""

import pytest

from repro.errors import NodeNotFoundError
from repro.graph import (
    Graph,
    ego_network,
    induced_subgraph,
    neighborhood,
    random_neighborhood_subset,
)
from repro.generators import complete_graph, path_graph, star_graph


def test_induced_subgraph_keeps_internal_edges(k5):
    sub = induced_subgraph(k5, {0, 1, 2})
    assert sub.number_of_nodes() == 3
    assert sub.number_of_edges() == 3


def test_induced_subgraph_empty():
    sub = induced_subgraph(complete_graph(4), set())
    assert sub.number_of_nodes() == 0


def test_induced_subgraph_rejects_missing_nodes(k5):
    with pytest.raises(NodeNotFoundError):
        induced_subgraph(k5, {0, 99})


def test_neighborhood_radius_zero(path5):
    assert neighborhood(path5, 2, radius=0) == {2}


def test_neighborhood_radius_one(path5):
    assert neighborhood(path5, 2, radius=1) == {1, 2, 3}


def test_neighborhood_radius_covers_graph(path5):
    assert neighborhood(path5, 0, radius=4) == {0, 1, 2, 3, 4}


def test_neighborhood_negative_radius_raises(path5):
    with pytest.raises(ValueError):
        neighborhood(path5, 0, radius=-1)


def test_neighborhood_of_missing_node_raises(path5):
    with pytest.raises(NodeNotFoundError):
        neighborhood(path5, 42)


def test_ego_network_is_induced(path5):
    ego = ego_network(path5, 2, radius=1)
    assert set(ego.nodes()) == {1, 2, 3}
    assert ego.number_of_edges() == 2


def test_random_neighborhood_always_contains_seed():
    star = star_graph(10)
    chosen = random_neighborhood_subset(star, 0, fraction=0.0, seed=1)
    assert chosen == {0}


def test_random_neighborhood_full_fraction_is_closed_neighborhood():
    star = star_graph(10)
    chosen = random_neighborhood_subset(star, 0, fraction=1.0, seed=1)
    assert chosen == set(range(11))


def test_random_neighborhood_reproducible():
    g = complete_graph(20)
    a = random_neighborhood_subset(g, 0, fraction=0.5, seed=7)
    b = random_neighborhood_subset(g, 0, fraction=0.5, seed=7)
    assert a == b


def test_random_neighborhood_fraction_validated(k5):
    with pytest.raises(ValueError):
        random_neighborhood_subset(k5, 0, fraction=1.5)
