"""Unit and property tests for the compiled CSR graph representation."""

import pickle

import numpy as np
import pytest
from hypothesis import given, settings

from repro.errors import GraphError, NodeNotFoundError
from repro.graph import (
    CompiledGraph,
    Graph,
    GraphBackend,
    attach_compiled,
    compile_graph,
)
from repro.graph.views import SubgraphView

from ..conftest import edge_lists


class TestCompileBasics:
    def test_empty_graph(self):
        compiled = compile_graph(Graph())
        assert compiled.number_of_nodes() == 0
        assert compiled.number_of_edges() == 0
        assert list(compiled.nodes()) == []

    def test_triangle_structure(self):
        compiled = compile_graph(Graph(edges=[(0, 1), (1, 2), (0, 2)]))
        assert compiled.number_of_nodes() == 3
        assert compiled.number_of_edges() == 3
        assert compiled.indptr.tolist() == [0, 2, 4, 6]
        assert compiled.degrees.tolist() == [2, 2, 2]
        assert compiled.neighbors(0).tolist() == [1, 2]
        assert compiled.neighbors(1).tolist() == [0, 2]

    def test_dtypes_are_int32(self):
        compiled = compile_graph(Graph(edges=[(0, 1), (1, 2)]))
        assert compiled.indptr.dtype == np.int32
        assert compiled.indices.dtype == np.int32
        assert compiled.degrees.dtype == np.int32

    def test_rows_are_sorted(self):
        g = Graph(edges=[(0, 5), (0, 3), (0, 1), (0, 4), (0, 2)])
        compiled = compile_graph(g)
        row = compiled.neighbors(0).tolist()
        assert row == sorted(row)

    def test_isolated_nodes_survive(self):
        g = Graph(edges=[(0, 1)], nodes=[2, 3])
        compiled = compile_graph(g)
        assert compiled.number_of_nodes() == 4
        assert compiled.degree(compiled.id_of(2)) == 0

    def test_has_edge_binary_search(self):
        compiled = compile_graph(Graph(edges=[(0, 1), (1, 2), (0, 2), (2, 3)]))
        assert compiled.has_edge(0, 1)
        assert compiled.has_edge(3, 2)
        assert not compiled.has_edge(0, 3)

    def test_unknown_id_raises(self):
        compiled = compile_graph(Graph(edges=[(0, 1)]))
        with pytest.raises(NodeNotFoundError):
            compiled.neighbors(7)
        with pytest.raises(NodeNotFoundError):
            compiled.degree(-1)

    def test_satisfies_graph_backend_protocol(self):
        compiled = compile_graph(Graph(edges=[(0, 1)]))
        assert isinstance(compiled, GraphBackend)
        assert isinstance(Graph(edges=[(0, 1)]), GraphBackend)

    def test_compiled_arrays_are_immutable(self):
        compiled = compile_graph(Graph(edges=[(0, 1), (1, 2)]))
        for array in (compiled.indptr, compiled.indices, compiled.degrees):
            assert not array.flags.writeable
        with pytest.raises(ValueError):
            compiled.indices[0] = 5
        clone = pickle.loads(pickle.dumps(compiled))
        assert not clone.indices.flags.writeable

    def test_adjacency_matrix_cannot_corrupt_cache(self):
        from repro.graph import adjacency_matrix

        g = Graph(edges=[(0, 1), (1, 2)])
        matrix = adjacency_matrix(g)
        # Whether scipy aliases the locked buffers (mutation raises) or
        # copied them (mutation lands in the copy), the compiled cache
        # must come through untouched.
        try:
            matrix.indices[0] = 2
        except ValueError:
            pass
        assert compile_graph(g).neighbors(0).tolist() == [1]


class TestLabelTranslation:
    def test_integer_insertion_order_is_identity(self):
        compiled = compile_graph(Graph(edges=[(0, 1), (1, 2)]))
        assert compiled.identity_labels
        assert compiled.labels == [0, 1, 2]
        assert compiled.ids_of([2, 0]) == [2, 0]
        assert compiled.labels_of([1, 2]) == [1, 2]

    def test_string_labels_roundtrip(self):
        g = Graph(edges=[("a", "b"), ("b", "c"), ("a", "c")])
        compiled = compile_graph(g)
        assert not compiled.identity_labels
        assert compiled.labels == ["a", "b", "c"]
        assert compiled.id_of("c") == 2
        assert compiled.label_of(0) == "a"
        assert compiled.ids_of(["c", "a"]) == [2, 0]
        assert compiled.labels_of([1, 0]) == ["b", "a"]

    def test_out_of_order_integers_are_not_identity(self):
        g = Graph(edges=[(5, 0), (0, 3)])
        compiled = compile_graph(g)
        assert not compiled.identity_labels
        assert compiled.labels == [5, 0, 3]
        assert compiled.id_of(5) == 0

    def test_ids_match_node_index(self):
        g = Graph(edges=[("x", "y"), ("y", "z"), ("w", "x")])
        compiled = compile_graph(g)
        assert compiled.index == g.node_index()


class TestCaching:
    def test_compile_is_cached_on_graph(self):
        g = Graph(edges=[(0, 1), (1, 2)])
        assert compile_graph(g) is compile_graph(g)

    def test_mutation_invalidates_cache(self):
        g = Graph(edges=[(0, 1)])
        first = compile_graph(g)
        g.add_edge(1, 2)
        second = compile_graph(g)
        assert second is not first
        assert second.number_of_nodes() == 3

    def test_edge_removal_invalidates_cache(self):
        g = Graph(edges=[(0, 1), (1, 2)])
        first = compile_graph(g)
        g.remove_edge(0, 1)
        assert compile_graph(g) is not first
        assert compile_graph(g).number_of_edges() == 1

    def test_copy_does_not_share_cache(self):
        g = Graph(edges=[(0, 1)])
        compile_graph(g)
        clone = g.copy()
        clone.add_edge(1, 2)
        assert compile_graph(g).number_of_nodes() == 2
        assert compile_graph(clone).number_of_nodes() == 3

    def test_attach_compiled_validates_shape(self):
        g = Graph(edges=[(0, 1)])
        other = Graph(edges=[(0, 1), (1, 2)])
        with pytest.raises(GraphError):
            attach_compiled(g, compile_graph(other))
        attach_compiled(other, compile_graph(other.copy()))

    def test_subgraph_view_compiles_fresh(self):
        g = Graph(edges=[(0, 1), (1, 2), (2, 3)])
        view = SubgraphView(g, {0, 1, 2})
        compiled = compile_graph(view)
        assert compiled.number_of_nodes() == 3
        assert compiled.number_of_edges() == 2


class TestPickling:
    def test_pickle_roundtrip(self):
        g = Graph(edges=[("a", "b"), ("b", "c")])
        compiled = compile_graph(g)
        clone = pickle.loads(pickle.dumps(compiled))
        assert clone == compiled
        assert clone.number_of_edges() == 2
        assert clone.id_of("c") == compiled.id_of("c")

    def test_graph_pickle_drops_compiled_cache(self):
        g = Graph(edges=[(0, 1), (1, 2)])
        compile_graph(g)
        blob_with_cache = pickle.dumps(g)
        blob_without = pickle.dumps(g.copy())
        assert len(blob_with_cache) == len(blob_without)
        clone = pickle.loads(blob_with_cache)
        assert clone == g


@settings(max_examples=60, deadline=None)
@given(edges=edge_lists(max_nodes=14, max_edges=50))
def test_compile_roundtrips_random_edge_lists(edges):
    """compile_graph preserves n, m, degrees, and every neighbour set."""
    g = Graph(edges=edges)
    compiled = compile_graph(g)
    assert compiled.number_of_nodes() == g.number_of_nodes()
    assert compiled.number_of_edges() == g.number_of_edges()
    assert len(compiled.indices) == 2 * g.number_of_edges()
    index = g.node_index()
    labels = list(g.nodes())
    for node in g.nodes():
        node_id = compiled.id_of(node)
        assert node_id == index[node]
        assert compiled.degree(node_id) == g.degree(node)
        neighbour_labels = {labels[i] for i in compiled.neighbors(node_id)}
        assert neighbour_labels == g.neighbors(node)


@settings(max_examples=40, deadline=None)
@given(edges=edge_lists(max_nodes=10, max_edges=30))
def test_compiled_edges_are_symmetric(edges):
    g = Graph(edges=edges)
    compiled = compile_graph(g)
    for u in compiled.nodes():
        for v in compiled.neighbors(u):
            assert compiled.has_edge(int(v), u)
