"""Unit tests for graph serialisation formats."""

import io

import pytest

from repro.errors import GraphFormatError
from repro.graph import (
    Graph,
    read_adjacency_list,
    read_edge_list,
    read_metis,
    write_adjacency_list,
    write_edge_list,
    write_metis,
)
from repro.generators import complete_graph


class TestEdgeList:
    def test_round_trip_via_path(self, tmp_path, k5):
        path = tmp_path / "graph.txt"
        write_edge_list(k5, path)
        assert read_edge_list(path) == k5

    def test_round_trip_via_stream(self, triangle):
        buffer = io.StringIO()
        write_edge_list(triangle, buffer)
        buffer.seek(0)
        assert read_edge_list(buffer) == triangle

    def test_comments_and_blanks_skipped(self):
        text = "# a comment\n\n0 1\n1 2\n"
        graph = read_edge_list(io.StringIO(text))
        assert graph.number_of_edges() == 2

    def test_extra_columns_ignored(self):
        graph = read_edge_list(io.StringIO("0 1 0.75 garbage\n"))
        assert graph.has_edge(0, 1)

    def test_string_labels_survive(self):
        graph = read_edge_list(io.StringIO("alice bob\n"))
        assert graph.has_edge("alice", "bob")

    def test_integer_labels_parsed(self):
        graph = read_edge_list(io.StringIO("10 20\n"))
        assert graph.has_edge(10, 20)
        assert not graph.has_node("10")

    def test_single_token_line_raises(self):
        with pytest.raises(GraphFormatError):
            read_edge_list(io.StringIO("loner\n"))

    def test_self_loops_dropped(self):
        graph = read_edge_list(io.StringIO("1 1\n1 2\n"))
        assert graph.number_of_edges() == 1


class TestAdjacencyList:
    def test_round_trip(self, tmp_path, path5):
        path = tmp_path / "adj.txt"
        write_adjacency_list(path5, path)
        assert read_adjacency_list(path) == path5

    def test_isolated_nodes_survive(self, tmp_path):
        g = Graph(edges=[(0, 1)], nodes=[9])
        path = tmp_path / "adj.txt"
        write_adjacency_list(g, path)
        restored = read_adjacency_list(path)
        assert restored.has_node(9)
        assert restored.degree(9) == 0


class TestMetis:
    def test_round_trip(self, tmp_path, k5):
        path = tmp_path / "graph.metis"
        write_metis(k5, path)
        assert read_metis(path) == k5

    def test_requires_dense_labels(self, tmp_path):
        g = Graph(edges=[("a", "b")])
        with pytest.raises(GraphFormatError):
            write_metis(g, tmp_path / "bad.metis")

    def test_header_edge_count_checked(self):
        # Header claims 2 edges; body defines 1.
        with pytest.raises(GraphFormatError):
            read_metis(io.StringIO("2 2\n2\n1\n"))

    def test_header_node_count_checked(self):
        with pytest.raises(GraphFormatError):
            read_metis(io.StringIO("3 1\n2\n1\n"))

    def test_missing_header(self):
        with pytest.raises(GraphFormatError):
            read_metis(io.StringIO(""))

    def test_neighbour_out_of_range(self):
        with pytest.raises(GraphFormatError):
            read_metis(io.StringIO("2 1\n3\n1\n"))

    def test_comments_skipped(self):
        graph = read_metis(io.StringIO("% comment\n2 1\n2\n1\n"))
        assert graph.has_edge(0, 1)
