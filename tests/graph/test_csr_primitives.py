"""Unit tests for the shared CSR baseline primitives (ISSUE 10).

The sorted-row set algebra, the segment reductions, and the
``neighbor_sets`` materialiser that the CSR-native baseline algorithms
are built from.
"""

import numpy as np
import pytest

from repro import Graph, compile_graph
from repro.graph.csr import (
    in_sorted,
    intersect_size_sorted,
    intersect_sorted,
    segment_sums,
    setdiff_sorted,
)


@pytest.fixture()
def compiled():
    g = Graph(nodes=range(6))
    for u, v in [(0, 1), (0, 2), (1, 2), (2, 3), (3, 4)]:
        g.add_edge(u, v)
    # node 5 stays isolated
    return compile_graph(g)


class TestSortedSetAlgebra:
    def test_in_sorted(self):
        table = np.array([2, 5, 9, 11])
        values = np.array([1, 2, 5, 6, 11, 20])
        assert in_sorted(values, table).tolist() == [
            False, True, True, False, True, False,
        ]

    def test_in_sorted_empty_operands(self):
        table = np.array([1, 2, 3])
        assert in_sorted(np.array([], dtype=np.int32), table).size == 0
        values = np.array([1, 2])
        assert in_sorted(values, np.array([], dtype=np.int32)).tolist() == [
            False, False,
        ]

    def test_intersect_sorted_matches_set_semantics(self):
        a = np.array([1, 3, 5, 7, 9])
        b = np.array([2, 3, 4, 7, 10])
        assert intersect_sorted(a, b).tolist() == [3, 7]
        assert intersect_sorted(b, a).tolist() == [3, 7]

    def test_intersect_size_sorted(self):
        a = np.array([1, 3, 5, 7, 9])
        b = np.array([3, 7])
        # either argument order; the shorter array drives the search
        assert intersect_size_sorted(a, b) == 2
        assert intersect_size_sorted(b, a) == 2
        assert intersect_size_sorted(a, np.array([], dtype=np.int64)) == 0

    def test_setdiff_sorted(self):
        a = np.array([1, 3, 5, 7])
        b = np.array([3, 4, 7])
        assert setdiff_sorted(a, b).tolist() == [1, 5]
        assert setdiff_sorted(a, np.array([], dtype=np.int64)).tolist() == [
            1, 3, 5, 7,
        ]

    def test_randomised_against_python_sets(self):
        rng = np.random.default_rng(17)
        for _ in range(25):
            a = np.unique(rng.integers(0, 60, size=rng.integers(0, 25)))
            b = np.unique(rng.integers(0, 60, size=rng.integers(0, 25)))
            sa, sb = set(a.tolist()), set(b.tolist())
            assert intersect_sorted(a, b).tolist() == sorted(sa & sb)
            assert setdiff_sorted(a, b).tolist() == sorted(sa - sb)
            assert intersect_size_sorted(a, b) == len(sa & sb)


class TestSegmentSums:
    def test_basic_segments(self):
        values = np.array([1, 2, 3, 4, 5])
        offsets = np.array([0, 2, 2, 5])  # middle segment empty
        assert segment_sums(values, offsets).tolist() == [3, 0, 12]

    def test_all_empty_segments(self):
        values = np.array([], dtype=np.int64)
        offsets = np.array([0, 0, 0])
        assert segment_sums(values, offsets).tolist() == [0, 0]

    def test_boolean_values_count(self):
        values = np.array([True, False, True, True])
        offsets = np.array([0, 1, 4])
        assert segment_sums(values, offsets).tolist() == [1, 2]


class TestCompiledGraphReductions:
    def test_volume_of(self, compiled):
        degrees = compiled.degrees
        assert compiled.volume_of([0, 2, 5]) == int(
            degrees[0] + degrees[2] + degrees[5]
        )
        assert compiled.volume_of(np.array([], dtype=np.int64)) == 0

    def test_neighbor_mask_counts(self, compiled):
        mask = np.zeros(6, dtype=bool)
        mask[[1, 2]] = True
        counts = compiled.neighbor_mask_counts(mask)
        # |N(i) ∩ {1, 2}| per node, against the edge list in the fixture
        assert counts.tolist() == [2, 1, 1, 1, 0, 0]

    def test_neighbor_sets_matches_rows(self, compiled):
        sets = compiled.neighbor_sets()
        assert sets == [
            {1, 2}, {0, 2}, {0, 1, 3}, {2, 4}, {3}, set(),
        ]
