"""Unit tests for graph statistics."""

import pytest

from repro.graph import (
    Graph,
    average_clustering,
    average_degree,
    degree_histogram,
    density,
    local_clustering,
    summarize,
    triangle_count,
)
from repro.generators import complete_graph, cycle_graph, path_graph, star_graph


def test_density_complete_graph_is_one():
    assert density(complete_graph(6)) == pytest.approx(1.0)


def test_density_empty_and_tiny():
    assert density(Graph()) == 0.0
    assert density(Graph(nodes=[1])) == 0.0


def test_average_degree_cycle():
    assert average_degree(cycle_graph(7)) == pytest.approx(2.0)


def test_average_degree_empty():
    assert average_degree(Graph()) == 0.0


def test_degree_histogram_star():
    histogram = degree_histogram(star_graph(5))
    assert histogram == {5: 1, 1: 5}


def test_local_clustering_triangle(triangle):
    assert local_clustering(triangle, 0) == pytest.approx(1.0)


def test_local_clustering_path_midpoint(path5):
    assert local_clustering(path5, 2) == 0.0


def test_local_clustering_leaf(path5):
    assert local_clustering(path5, 0) == 0.0


def test_average_clustering_complete():
    assert average_clustering(complete_graph(5)) == pytest.approx(1.0)


def test_average_clustering_empty():
    assert average_clustering(Graph()) == 0.0


def test_triangle_count_k4():
    assert triangle_count(complete_graph(4)) == 4


def test_triangle_count_cycle():
    assert triangle_count(cycle_graph(5)) == 0


def test_triangle_count_k5():
    assert triangle_count(complete_graph(5)) == 10


def test_summarize_fields(k5):
    summary = summarize(k5)
    assert summary.nodes == 5
    assert summary.edges == 10
    assert summary.min_degree == summary.max_degree == 4
    assert summary.components == 1
    assert summary.largest_component == 5
    assert summary.average_degree == pytest.approx(4.0)


def test_summarize_disconnected():
    g = Graph(edges=[(0, 1)], nodes=[5])
    summary = summarize(g)
    assert summary.components == 2
    assert summary.min_degree == 0


def test_summary_as_row_keys(k5):
    row = summarize(k5).as_row()
    assert set(row) == {
        "nodes", "edges", "min_degree", "max_degree",
        "average_degree", "density", "components", "largest_component",
    }
