"""Unit tests for the core Graph data structure."""

import pytest

from repro.errors import EdgeNotFoundError, GraphError, NodeNotFoundError
from repro.graph import Graph


class TestConstruction:
    def test_empty_graph(self):
        g = Graph()
        assert g.number_of_nodes() == 0
        assert g.number_of_edges() == 0
        assert list(g.nodes()) == []
        assert list(g.edges()) == []

    def test_from_edges(self):
        g = Graph(edges=[(0, 1), (1, 2)])
        assert g.number_of_nodes() == 3
        assert g.number_of_edges() == 2

    def test_from_nodes_allows_isolates(self):
        g = Graph(nodes=[1, 2, 3])
        assert g.number_of_nodes() == 3
        assert g.number_of_edges() == 0
        assert g.degree(2) == 0

    def test_nodes_preserve_insertion_order(self):
        g = Graph(nodes=["c", "a", "b"])
        assert list(g.nodes()) == ["c", "a", "b"]

    def test_hashable_node_labels(self):
        g = Graph(edges=[("alice", "bob"), (("tuple", 1), "bob")])
        assert g.has_edge("bob", "alice")
        assert g.degree(("tuple", 1)) == 1


class TestMutation:
    def test_add_edge_returns_whether_new(self):
        g = Graph()
        assert g.add_edge(1, 2) is True
        assert g.add_edge(2, 1) is False
        assert g.number_of_edges() == 1

    def test_add_edge_rejects_self_loop(self):
        g = Graph()
        with pytest.raises(GraphError):
            g.add_edge(3, 3)

    def test_add_edges_counts_new(self):
        g = Graph()
        assert g.add_edges([(0, 1), (1, 2), (0, 1)]) == 2

    def test_add_node_idempotent(self):
        g = Graph(edges=[(0, 1)])
        g.add_node(0)
        assert g.degree(0) == 1

    def test_remove_edge(self):
        g = Graph(edges=[(0, 1), (1, 2)])
        g.remove_edge(1, 0)
        assert not g.has_edge(0, 1)
        assert g.number_of_edges() == 1
        assert g.has_node(0)

    def test_remove_missing_edge_raises(self):
        g = Graph(edges=[(0, 1)])
        with pytest.raises(EdgeNotFoundError):
            g.remove_edge(0, 2)

    def test_remove_node_removes_incident_edges(self):
        g = Graph(edges=[(0, 1), (0, 2), (1, 2)])
        g.remove_node(0)
        assert g.number_of_nodes() == 2
        assert g.number_of_edges() == 1
        assert g.has_edge(1, 2)

    def test_remove_missing_node_raises(self):
        g = Graph()
        with pytest.raises(NodeNotFoundError):
            g.remove_node(42)


class TestQueries:
    def test_neighbors(self, triangle):
        assert triangle.neighbors(0) == {1, 2}

    def test_neighbors_of_missing_node_raises(self, triangle):
        with pytest.raises(NodeNotFoundError):
            triangle.neighbors(99)

    def test_degree_and_degrees(self, path5):
        assert path5.degree(0) == 1
        assert path5.degree(2) == 2
        assert path5.degrees() == {0: 1, 1: 2, 2: 2, 3: 2, 4: 1}

    def test_edges_yields_each_edge_once(self, k5):
        edges = list(k5.edges())
        assert len(edges) == 10
        assert len({frozenset(e) for e in edges}) == 10

    def test_edges_incident(self, triangle):
        incident = list(triangle.edges_incident(1))
        assert len(incident) == 2
        assert all(u == 1 for u, _ in incident)

    def test_edges_inside(self, k5):
        assert k5.edges_inside({0, 1, 2}) == 3
        assert k5.edges_inside({0}) == 0
        assert k5.edges_inside(set()) == 0
        assert k5.edges_inside({0, 1, 99}) == 1  # absent nodes ignored

    def test_boundary_degree(self, k5):
        assert k5.boundary_degree(0, {1, 2, 3}) == 3
        assert k5.boundary_degree(0, set()) == 0

    def test_contains_and_len_and_iter(self, triangle):
        assert 0 in triangle
        assert 99 not in triangle
        assert len(triangle) == 3
        assert sorted(triangle) == [0, 1, 2]


class TestDerived:
    def test_copy_is_independent(self, triangle):
        clone = triangle.copy()
        clone.add_edge(0, 3)
        assert not triangle.has_node(3)
        assert clone.has_edge(0, 3)

    def test_equality_is_structural(self):
        a = Graph(edges=[(0, 1)])
        b = Graph(edges=[(0, 1)])
        assert a == b
        b.add_node(7)
        assert a != b

    def test_node_index_follows_insertion(self):
        g = Graph(nodes=["x", "y"])
        assert g.node_index() == {"x": 0, "y": 1}

    def test_relabelled(self):
        g = Graph(edges=[("a", "b"), ("b", "c")])
        dense, mapping = g.relabelled()
        assert set(dense.nodes()) == {0, 1, 2}
        assert dense.number_of_edges() == 2
        assert dense.has_edge(mapping["a"], mapping["b"])

    def test_repr_mentions_counts(self, triangle):
        assert "n=3" in repr(triangle)
        assert "m=3" in repr(triangle)
