"""Shared-memory graph shipping: export, attach, lifecycle, leaks."""

import gc
import os
import pickle
import warnings

import numpy as np
import pytest

from repro.errors import SessionClosedError
from repro.generators import ring_of_cliques
from repro.graph import Graph, compile_graph
from repro.graph.shm import (
    SEGMENT_PREFIX,
    ShmGraphDescriptor,
    attach_shared,
    export_shared,
    live_segment_names,
    shm_available,
)

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="shared memory unavailable on this platform"
)


def _dev_shm_entries():
    try:
        return {
            name
            for name in os.listdir("/dev/shm")
            if name.startswith(SEGMENT_PREFIX)
        }
    except FileNotFoundError:  # pragma: no cover - non-Linux
        return set()


@pytest.fixture()
def compiled():
    graph, _ = ring_of_cliques(4, 5)
    return compile_graph(graph)


@pytest.fixture()
def compiled_str():
    graph, _ = ring_of_cliques(4, 5)
    renamed = Graph(
        edges=[(f"n{u}", f"n{v}") for u, v in graph.edges()]
    )
    return compile_graph(renamed)


class TestExportAttach:
    def test_roundtrip_arrays_and_labels(self, compiled_str):
        segments = export_shared(compiled_str)
        try:
            attached = attach_shared(segments.descriptor)
            np.testing.assert_array_equal(attached.indptr, compiled_str.indptr)
            np.testing.assert_array_equal(attached.indices, compiled_str.indices)
            np.testing.assert_array_equal(attached.degrees, compiled_str.degrees)
            assert list(attached.labels) == list(compiled_str.labels)
        finally:
            segments.close()

    def test_identity_labels_skip_the_label_segment(self, compiled):
        segments = export_shared(compiled)
        try:
            assert segments.descriptor.labels is None
            assert len(segments.descriptor.segment_names) == 3
            attached = attach_shared(segments.descriptor)
            assert attached.identity_labels
        finally:
            segments.close()

    def test_attached_arrays_are_read_only(self, compiled):
        segments = export_shared(compiled)
        try:
            attached = attach_shared(segments.descriptor)
            with pytest.raises((ValueError, RuntimeError)):
                attached.indices[0] = 99
        finally:
            segments.close()

    def test_spectral_cache_ships_inline(self, compiled):
        compiled.spectral_cache[(0.001, 100, "power")] = 1.234
        segments = export_shared(compiled)
        try:
            attached = attach_shared(segments.descriptor)
            assert attached.spectral_cache[(0.001, 100, "power")] == 1.234
        finally:
            segments.close()

    def test_attach_cache_returns_one_graph_per_descriptor(self, compiled):
        segments = export_shared(compiled)
        try:
            first = attach_shared(segments.descriptor)
            second = attach_shared(segments.descriptor)
            assert first is second
        finally:
            segments.close()

    def test_descriptor_is_picklable_and_hashable(self, compiled_str):
        segments = export_shared(compiled_str)
        try:
            descriptor = segments.descriptor
            clone = pickle.loads(pickle.dumps(descriptor))
            assert clone == descriptor
            assert hash(clone) == hash(descriptor)
            assert clone.nodes() == compiled_str.number_of_nodes()
        finally:
            segments.close()


class TestLifecycle:
    def test_close_unlinks_every_segment(self, compiled_str):
        before = _dev_shm_entries()
        segments = export_shared(compiled_str)
        created = _dev_shm_entries() - before
        assert created == set(segments.descriptor.segment_names)
        segments.close()
        assert segments.closed
        assert _dev_shm_entries() == before
        assert not live_segment_names() & created

    def test_close_is_idempotent(self, compiled):
        segments = export_shared(compiled)
        segments.close()
        segments.close()
        assert segments.closed

    def test_attach_after_unlink_raises_session_closed(self, compiled):
        segments = export_shared(compiled)
        descriptor = segments.descriptor
        segments.close()
        with pytest.raises(SessionClosedError, match="unlinked"):
            attach_shared(descriptor)

    def test_attached_graph_survives_the_owner_unlink(self, compiled):
        # POSIX semantics: the pages live until the last unmap, so a
        # worker mid-detect keeps a valid graph even if the driver
        # unlinks early (the engine never does — it joins first — but
        # the mapping contract must hold regardless).
        segments = export_shared(compiled)
        attached = attach_shared(segments.descriptor)
        expected = np.asarray(compiled.indices).copy()
        segments.close()
        np.testing.assert_array_equal(attached.indices, expected)

    def test_abandoned_segments_warn_and_unlink(self, compiled):
        before = _dev_shm_entries()
        segments = export_shared(compiled)
        names = set(segments.descriptor.segment_names)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            del segments
            gc.collect()
        assert any(
            issubclass(w.category, ResourceWarning)
            and "never released" in str(w.message)
            for w in caught
        )
        assert _dev_shm_entries() == before
        assert not live_segment_names() & names

    def test_live_segment_names_tracks_open_exports(self, compiled):
        segments = export_shared(compiled)
        assert set(segments.descriptor.segment_names) <= live_segment_names()
        segments.close()
        assert not set(segments.descriptor.segment_names) & live_segment_names()


class TestDescriptor:
    def test_segment_names_cover_all_segments(self, compiled_str):
        segments = export_shared(compiled_str)
        try:
            names = segments.descriptor.segment_names
            assert len(names) == 4  # three arrays + the label table
            assert all(name.startswith(SEGMENT_PREFIX) for name in names)
        finally:
            segments.close()

    def test_nodes_matches_the_compiled_graph(self, compiled):
        segments = export_shared(compiled)
        try:
            assert segments.descriptor.nodes() == compiled.number_of_nodes()
        finally:
            segments.close()

    def test_frozen(self):
        descriptor = ShmGraphDescriptor(
            indptr=("a", 1), indices=("b", 0), degrees=("c", 0), labels=None
        )
        with pytest.raises(Exception):
            descriptor.indptr = ("x", 2)
