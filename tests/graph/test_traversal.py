"""Unit tests for traversal primitives."""

import pytest

from repro.errors import NodeNotFoundError
from repro.graph import (
    Graph,
    bfs_distances,
    bfs_order,
    connected_components,
    dfs_order,
    is_connected,
    largest_component,
    shortest_path,
)
from repro.generators import cycle_graph, path_graph


@pytest.fixture
def two_components():
    return Graph(edges=[(0, 1), (1, 2), (10, 11)])


def test_bfs_order_starts_at_source(path5):
    assert next(iter(bfs_order(path5, 2))) == 2


def test_bfs_order_visits_reachable_once(two_components):
    order = list(bfs_order(two_components, 0))
    assert sorted(order) == [0, 1, 2]


def test_bfs_missing_source_raises(path5):
    with pytest.raises(NodeNotFoundError):
        list(bfs_order(path5, 99))


def test_bfs_distances_on_path(path5):
    assert bfs_distances(path5, 0) == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}


def test_bfs_distances_unreachable_absent(two_components):
    distances = bfs_distances(two_components, 0)
    assert 10 not in distances


def test_dfs_order_visits_reachable_once(two_components):
    order = list(dfs_order(two_components, 0))
    assert sorted(order) == [0, 1, 2]
    assert order[0] == 0


def test_connected_components_sorted_by_size(two_components):
    components = connected_components(two_components)
    assert [len(c) for c in components] == [3, 2]


def test_connected_components_empty_graph():
    assert connected_components(Graph()) == []


def test_largest_component(two_components):
    assert largest_component(two_components) == {0, 1, 2}


def test_largest_component_empty():
    assert largest_component(Graph()) == set()


def test_is_connected_true(path5):
    assert is_connected(path5)


def test_is_connected_false(two_components):
    assert not is_connected(two_components)


def test_is_connected_empty_graph():
    assert is_connected(Graph())


def test_is_connected_singleton():
    assert is_connected(Graph(nodes=[1]))


def test_shortest_path_on_cycle():
    c6 = cycle_graph(6)
    path = shortest_path(c6, 0, 3)
    assert path[0] == 0 and path[-1] == 3
    assert len(path) == 4


def test_shortest_path_trivial(path5):
    assert shortest_path(path5, 2, 2) == [2]


def test_shortest_path_none_across_components(two_components):
    assert shortest_path(two_components, 0, 10) is None


def test_shortest_path_edges_exist(path5):
    path = shortest_path(path5, 0, 4)
    for u, v in zip(path, path[1:]):
        assert path5.has_edge(u, v)


def test_shortest_path_missing_endpoint_raises(path5):
    with pytest.raises(NodeNotFoundError):
        shortest_path(path5, 0, 77)
