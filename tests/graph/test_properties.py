"""Property-based tests for the graph substrate (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import Graph, connected_components, density, induced_subgraph

from ..conftest import edge_lists, small_graphs


@given(edges=edge_lists())
def test_edge_count_matches_edges_iterator(edges):
    g = Graph(edges=edges)
    assert g.number_of_edges() == len(list(g.edges()))


@given(edges=edge_lists())
def test_handshake_lemma(edges):
    g = Graph(edges=edges)
    assert sum(g.degrees().values()) == 2 * g.number_of_edges()


@given(edges=edge_lists())
def test_adjacency_is_symmetric_relation(edges):
    g = Graph(edges=edges)
    for u, v in g.edges():
        assert g.has_edge(v, u)
        assert u in g.neighbors(v)
        assert v in g.neighbors(u)


@given(edges=edge_lists())
def test_edges_inside_full_node_set_is_m(edges):
    g = Graph(edges=edges)
    assert g.edges_inside(set(g.nodes())) == g.number_of_edges()


@given(edges=edge_lists())
def test_components_partition_nodes(edges):
    g = Graph(edges=edges)
    components = connected_components(g)
    union = set()
    total = 0
    for component in components:
        assert not (union & component)
        union |= component
        total += len(component)
    assert union == set(g.nodes())
    assert total == g.number_of_nodes()


@given(edges=edge_lists())
def test_copy_equals_original(edges):
    g = Graph(edges=edges)
    assert g.copy() == g


@given(edges=edge_lists())
def test_density_bounds(edges):
    g = Graph(edges=edges)
    assert 0.0 <= density(g) <= 1.0


@given(edges=edge_lists(), data=st.data())
def test_remove_then_add_edge_restores_graph(edges, data):
    g = Graph(edges=edges)
    all_edges = list(g.edges())
    if not all_edges:
        return
    u, v = data.draw(st.sampled_from(all_edges))
    g.remove_edge(u, v)
    assert not g.has_edge(u, v)
    g.add_edge(u, v)
    assert g == Graph(edges=edges)


@given(edges=edge_lists(), data=st.data())
def test_induced_subgraph_degrees_bounded(edges, data):
    g = Graph(edges=edges)
    nodes = list(g.nodes())
    if not nodes:
        return
    subset = data.draw(st.sets(st.sampled_from(nodes)))
    sub = induced_subgraph(g, subset)
    for node in sub.nodes():
        assert sub.degree(node) <= g.degree(node)


@given(edges=edge_lists())
def test_relabelled_preserves_structure(edges):
    g = Graph(edges=edges)
    dense, mapping = g.relabelled()
    assert dense.number_of_nodes() == g.number_of_nodes()
    assert dense.number_of_edges() == g.number_of_edges()
    for u, v in g.edges():
        assert dense.has_edge(mapping[u], mapping[v])
