"""Unit tests for sparse-matrix views."""

import numpy as np
import pytest

from repro.graph import adjacency_matrix, adjacency_with_index, laplacian_matrix
from repro.generators import complete_graph, cycle_graph, path_graph


def test_adjacency_is_symmetric(k5):
    a = adjacency_matrix(k5).toarray()
    assert np.array_equal(a, a.T)


def test_adjacency_row_sums_are_degrees(path5):
    a = adjacency_matrix(path5)
    degrees = np.asarray(a.sum(axis=1)).ravel()
    index = path5.node_index()
    for node in path5.nodes():
        assert degrees[index[node]] == path5.degree(node)


def test_adjacency_zero_diagonal(k5):
    a = adjacency_matrix(k5).toarray()
    assert np.all(np.diag(a) == 0)


def test_adjacency_with_index_consistent(triangle):
    matrix, index = adjacency_with_index(triangle)
    dense = matrix.toarray()
    for u, v in triangle.edges():
        assert dense[index[u], index[v]] == 1.0
        assert dense[index[v], index[u]] == 1.0


def test_laplacian_rows_sum_to_zero(k5):
    lap = laplacian_matrix(k5).toarray()
    assert np.allclose(lap.sum(axis=1), 0.0)


def test_laplacian_diagonal_is_degree(path5):
    lap = laplacian_matrix(path5).toarray()
    index = path5.node_index()
    for node in path5.nodes():
        assert lap[index[node], index[node]] == path5.degree(node)


def test_laplacian_psd(square):
    lap = laplacian_matrix(square).toarray()
    eigenvalues = np.linalg.eigvalsh(lap)
    assert eigenvalues.min() >= -1e-9


def test_cycle_adjacency_spectrum():
    # C4 eigenvalues are 2, 0, 0, -2.
    a = adjacency_matrix(cycle_graph(4)).toarray()
    eigenvalues = sorted(np.linalg.eigvalsh(a))
    assert eigenvalues == pytest.approx([-2, 0, 0, 2], abs=1e-9)
