"""Unit tests for RNG plumbing."""

import random

import numpy as np
import pytest

from repro._rng import (
    as_master_seed,
    as_numpy_rng,
    as_random,
    derive_seed,
    spawn_seed,
    spawn_streams,
)


def test_as_random_from_int_deterministic():
    assert as_random(7).random() == as_random(7).random()


def test_as_random_passthrough():
    rng = random.Random(1)
    assert as_random(rng) is rng


def test_as_random_from_none_differs():
    # Two fresh generators almost surely differ.
    assert as_random(None).random() != as_random(None).random()


def test_as_random_from_numpy_generator():
    rng = as_random(np.random.default_rng(3))
    assert isinstance(rng, random.Random)


def test_as_random_rejects_garbage():
    with pytest.raises(TypeError):
        as_random("seed")


def test_as_numpy_from_int_deterministic():
    a = as_numpy_rng(5).integers(1000)
    b = as_numpy_rng(5).integers(1000)
    assert a == b


def test_as_numpy_passthrough():
    rng = np.random.default_rng(0)
    assert as_numpy_rng(rng) is rng


def test_as_numpy_from_python_random():
    assert isinstance(as_numpy_rng(random.Random(1)), np.random.Generator)


def test_as_numpy_rejects_garbage():
    with pytest.raises(TypeError):
        as_numpy_rng(object())


def test_spawn_seed_deterministic():
    assert spawn_seed(random.Random(9)) == spawn_seed(random.Random(9))


def test_spawn_seed_stream_advances():
    rng = random.Random(9)
    assert spawn_seed(rng) != spawn_seed(rng)


def test_numpy_integer_seed_accepted():
    value = np.int64(42)
    assert as_random(value).random() == as_random(42).random()
    assert as_numpy_rng(value).integers(10) == as_numpy_rng(42).integers(10)


# ----------------------------------------------------------------------
# Stream derivation (parallel execution engine)
# ----------------------------------------------------------------------
def test_as_master_seed_int_passthrough():
    assert as_master_seed(42) == 42


def test_as_master_seed_none_differs():
    assert as_master_seed(None) != as_master_seed(None)


def test_as_master_seed_does_not_consume_random():
    rng = random.Random(5)
    reference = random.Random(5)
    as_master_seed(rng)
    assert rng.random() == reference.random()


def test_as_master_seed_random_is_state_deterministic():
    assert as_master_seed(random.Random(5)) == as_master_seed(random.Random(5))
    assert as_master_seed(random.Random(5)) != as_master_seed(random.Random(6))


def test_as_master_seed_numpy_non_consuming():
    rng = np.random.default_rng(5)
    reference = np.random.default_rng(5)
    as_master_seed(rng)
    assert rng.integers(1000) == reference.integers(1000)


def test_as_master_seed_rejects_garbage():
    with pytest.raises(TypeError):
        as_master_seed("seed")


def test_derive_seed_deterministic():
    assert derive_seed(7, 1, 2) == derive_seed(7, 1, 2)


def test_derive_seed_sensitive_to_every_key_part():
    baseline = derive_seed(7, 1, 2)
    assert derive_seed(8, 1, 2) != baseline
    assert derive_seed(7, 2, 2) != baseline
    assert derive_seed(7, 1, 3) != baseline


def test_derive_seed_order_sensitive():
    assert derive_seed(7, 1, 2) != derive_seed(7, 2, 1)


def test_spawn_streams_deterministic_and_distinct():
    streams = spawn_streams(9, 8)
    assert streams == spawn_streams(9, 8)
    assert len(set(streams)) == 8


def test_spawn_streams_prefix_stable():
    # Asking for more streams never changes the earlier ones — a task
    # list can grow without invalidating already-dispatched work.
    assert spawn_streams(9, 16)[:8] == spawn_streams(9, 8)


def test_spawn_streams_rejects_negative():
    with pytest.raises(ValueError):
        spawn_streams(9, -1)
