"""Unit tests for RNG plumbing."""

import random

import numpy as np
import pytest

from repro._rng import as_numpy_rng, as_random, spawn_seed


def test_as_random_from_int_deterministic():
    assert as_random(7).random() == as_random(7).random()


def test_as_random_passthrough():
    rng = random.Random(1)
    assert as_random(rng) is rng


def test_as_random_from_none_differs():
    # Two fresh generators almost surely differ.
    assert as_random(None).random() != as_random(None).random()


def test_as_random_from_numpy_generator():
    rng = as_random(np.random.default_rng(3))
    assert isinstance(rng, random.Random)


def test_as_random_rejects_garbage():
    with pytest.raises(TypeError):
        as_random("seed")


def test_as_numpy_from_int_deterministic():
    a = as_numpy_rng(5).integers(1000)
    b = as_numpy_rng(5).integers(1000)
    assert a == b


def test_as_numpy_passthrough():
    rng = np.random.default_rng(0)
    assert as_numpy_rng(rng) is rng


def test_as_numpy_from_python_random():
    assert isinstance(as_numpy_rng(random.Random(1)), np.random.Generator)


def test_as_numpy_rejects_garbage():
    with pytest.raises(TypeError):
        as_numpy_rng(object())


def test_spawn_seed_deterministic():
    assert spawn_seed(random.Random(9)) == spawn_seed(random.Random(9))


def test_spawn_seed_stream_advances():
    rng = random.Random(9)
    assert spawn_seed(rng) != spawn_seed(rng)


def test_numpy_integer_seed_accepted():
    value = np.int64(42)
    assert as_random(value).random() == as_random(42).random()
    assert as_numpy_rng(value).integers(10) == as_numpy_rng(42).integers(10)
