"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.communities import read_cover
from repro.generators import ring_of_cliques
from repro.graph import write_edge_list


@pytest.fixture
def graph_file(tmp_path):
    g, _ = ring_of_cliques(3, 5)
    path = tmp_path / "graph.txt"
    write_edge_list(g, path)
    return path


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_detect_to_stdout(graph_file, capsys):
    assert main(["detect", str(graph_file), "--seed", "0"]) == 0
    out = capsys.readouterr().out
    assert len(out.strip().splitlines()) >= 3


def test_detect_to_file(graph_file, tmp_path, capsys):
    output = tmp_path / "cover.txt"
    code = main(
        ["detect", str(graph_file), "--seed", "0", "--output", str(output)]
    )
    assert code == 0
    cover = read_cover(output)
    assert len(cover) == 3
    assert "communities" in capsys.readouterr().out


def test_detect_lfk(graph_file, capsys):
    assert main(["detect", str(graph_file), "--algorithm", "LFK", "--seed", "0"]) == 0
    assert capsys.readouterr().out.strip()


def test_detect_raw_mode(graph_file, capsys):
    assert main(["detect", str(graph_file), "--raw", "--seed", "0"]) == 0


@pytest.mark.parametrize("representation", ["auto", "dict", "csr"])
def test_detect_representation_flag(graph_file, capsys, representation):
    code = main(
        ["detect", str(graph_file), "--seed", "0",
         "--representation", representation]
    )
    assert code == 0
    assert capsys.readouterr().out.strip()


def test_detect_representations_emit_identical_covers(graph_file, capsys):
    outputs = {}
    for representation in ("dict", "csr"):
        assert main(
            ["detect", str(graph_file), "--seed", "0",
             "--representation", representation]
        ) == 0
        outputs[representation] = capsys.readouterr().out
    assert outputs["dict"] == outputs["csr"]


def test_detect_shipping_modes_emit_identical_covers(graph_file, capsys):
    outputs = {}
    for shipping in ("pickle", "shm"):
        assert main(
            ["detect", str(graph_file), "--seed", "0",
             "--workers", "2", "--backend", "process",
             "--shipping", shipping]
        ) == 0
        outputs[shipping] = capsys.readouterr().out
    assert outputs["pickle"] == outputs["shm"]


def test_info(graph_file, capsys):
    assert main(["info", str(graph_file)]) == 0
    out = capsys.readouterr().out
    assert "nodes: 15" in out
    assert "edges:" in out


def test_experiment_table1(capsys):
    assert main(["experiment", "table1", "--seed", "0"]) == 0
    assert "LFR-benchmark" in capsys.readouterr().out


def test_invalid_algorithm_rejected(graph_file):
    with pytest.raises(SystemExit):
        main(["detect", str(graph_file), "--algorithm", "Louvain"])


def test_version(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["--version"])
    assert excinfo.value.code == 0


class TestGenerate:
    def test_generate_lfr_with_truth(self, tmp_path, capsys):
        out = tmp_path / "lfr.txt"
        truth = tmp_path / "truth.txt"
        code = main([
            "generate", "lfr", "--n", "200", "--mu", "0.2",
            "--out", str(out), "--truth", str(truth), "--seed", "1",
        ])
        assert code == 0
        from repro.graph import read_edge_list

        graph = read_edge_list(out)
        assert graph.number_of_nodes() == 200
        cover = read_cover(truth)
        assert cover.covered_nodes() == set(range(200))
        assert "200 nodes" in capsys.readouterr().out

    def test_generate_daisy(self, tmp_path):
        out = tmp_path / "daisy.txt"
        assert main(["generate", "daisy", "--flowers", "2", "--out", str(out)]) == 0
        from repro.graph import read_edge_list

        assert read_edge_list(out).number_of_nodes() == 120

    def test_generate_wikipedia(self, tmp_path):
        out = tmp_path / "wiki.txt"
        assert main(["generate", "wikipedia", "--n", "500", "--out", str(out)]) == 0
        from repro.graph import read_edge_list

        assert read_edge_list(out).number_of_nodes() == 500

    def test_generate_then_detect(self, tmp_path, capsys):
        out = tmp_path / "g.txt"
        main(["generate", "daisy", "--flowers", "1", "--out", str(out), "--seed", "3"])
        capsys.readouterr()
        assert main(["detect", str(out), "--seed", "3"]) == 0
        assert len(capsys.readouterr().out.strip().splitlines()) >= 4

    def test_generate_unknown_family_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["generate", "mystery", "--out", str(tmp_path / "x.txt")])
