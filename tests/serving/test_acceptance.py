"""Serving acceptance matrix (ISSUE 4).

The tentpole contract: covers served through ``SessionManager`` and
``ServingQueue`` are **byte-identical** to direct
``GraphSession.detect`` for the same (graph, seed, algorithm), for all
four registered detectors and both int- and str-labelled graphs — and
warm manager hits perform no graph compilation and no spectral solve
(monkeypatch-proof, the same guard as
``tests/detectors/test_session.py``).
"""

import pytest

from repro import Graph, GraphSession, ServingQueue, SessionManager
from repro.generators import ring_of_cliques

DETECTORS = ("oca", "lfk", "cfinder", "cpm")
SEED = 41


@pytest.fixture(scope="module")
def int_graph():
    g, _ = ring_of_cliques(4, 5)
    return g


@pytest.fixture(scope="module")
def str_graph(int_graph):
    """The same structure with string labels, same construction order."""
    mapping = {node: f"n{node}" for node in int_graph.nodes()}
    g = Graph(nodes=(mapping[node] for node in int_graph.nodes()))
    for u, v in int_graph.edges():
        g.add_edge(mapping[u], mapping[v])
    return g


@pytest.fixture(scope="module", params=["int", "str"])
def graph(request, int_graph, str_graph):
    return int_graph if request.param == "int" else str_graph


@pytest.fixture(scope="module")
def direct(graph):
    """Direct GraphSession covers — the serving layer's ground truth."""
    covers = {}
    with GraphSession(graph) as session:
        for name in DETECTORS:
            result = session.detect(name, seed=SEED)
            covers[name] = (result.cover, result.raw_cover if name == "oca" else None)
    return covers


@pytest.mark.parametrize("name", DETECTORS)
class TestServedCoversAreByteIdentical:
    def test_manager_serves_identical_covers(self, graph, direct, name):
        with SessionManager(max_sessions=2) as manager:
            manager.detect(graph, name, seed=SEED + 1)  # warm every cache
            warm = manager.detect(graph, name, seed=SEED)
        assert warm.stats["session_hit"] is True
        assert warm.cover == direct[name][0]
        if name == "oca":
            assert warm.raw_cover == direct[name][1]

    def test_queue_serves_identical_covers(self, graph, direct, name):
        with SessionManager(max_sessions=2) as manager:
            with ServingQueue(manager, workers=2, max_depth=16) as queue:
                futures = [
                    queue.detect(graph, name, seed=SEED) for _ in range(3)
                ]
                covers = [future.result(timeout=60).cover for future in futures]
        assert all(cover == direct[name][0] for cover in covers)


def test_warm_manager_hits_skip_compile_and_spectral_solves(
    int_graph, monkeypatch
):
    """Monkeypatch-proof warm path: after the first detect per graph,
    no CSR build and no spectral solve (power *or* Lanczos) may run."""
    other, _ = ring_of_cliques(5, 4)
    with SessionManager(max_sessions=2) as manager:
        manager.detect(int_graph, "oca", seed=0)
        manager.detect(other, "oca", seed=0)

        def no_compile(*args, **kwargs):
            raise AssertionError("compile_graph ran on a warm manager hit")

        def no_power_method(*args, **kwargs):
            raise AssertionError("power method ran on a warm manager hit")

        def no_lanczos(*args, **kwargs):
            raise AssertionError("eigsh ran on a warm manager hit")

        monkeypatch.setattr("repro.graph.csr._build_csr", no_compile)
        monkeypatch.setattr("repro.core.spectral.power_method", no_power_method)
        monkeypatch.setattr("scipy.sparse.linalg.eigsh", no_lanczos)

        for seed in (1, 2):
            for g in (int_graph, other):
                result = manager.detect(g, "oca", seed=seed)
                assert result.stats["session_hit"] is True
                assert result.stats["c_source"] == "cache"
                assert len(result.cover) >= 1


def test_lanczos_warm_path_also_hits_the_shared_cache(int_graph, monkeypatch):
    """The two solvers share one cache slot: a power-warmed session
    serves a lanczos-configured request without running eigsh."""
    with SessionManager(max_sessions=1) as manager:
        manager.detect(int_graph, "oca", seed=0)  # resolved via power

        def no_lanczos(*args, **kwargs):
            raise AssertionError("eigsh ran despite a warm shared cache")

        monkeypatch.setattr("scipy.sparse.linalg.eigsh", no_lanczos)
        result = manager.detect(
            int_graph, "oca", seed=1, spectral_solver="lanczos"
        )
        assert result.stats["c_source"] == "cache"
