"""Same-fingerprint request coalescing in the ServingQueue (ISSUE 7).

A dequeuing worker opportunistically drains further queued requests for
the same graph fingerprint (up to the ``coalesce`` bound) and serves
the whole group back-to-back on that graph's warm session.  These tests
pin the contract: grouping is invisible in results (covers, deadlines,
traces, future resolution are per-request), visible in accounting
(``coalesced`` counter, ``coalesce_batch`` histogram/stats/trace mark),
and never loses or reorders a request relative to its own fingerprint.
"""

import threading
import time

import pytest

from repro import ServeRequest, ServingQueue, SessionManager
from repro.errors import ConfigurationError, DeadlineExceeded
from repro.generators import ring_of_cliques
from repro.observability import new_trace


@pytest.fixture()
def graph():
    g, _ = ring_of_cliques(4, 5)
    return g


class _RecordingManager:
    """Manager stub recording dispatch order; optional per-call latch."""

    def __init__(self, block_first=False):
        self.calls = []
        self.release = threading.Event()
        self.started = threading.Event()
        self._block_first = block_first
        self._first = True

    def detect(self, graph, algorithm, seed=None, **params):
        if self._block_first and self._first:
            self._first = False
            self.started.set()
            self.release.wait(timeout=30)
        self.calls.append(graph)

        class _Result:
            stats = {}
            cover = []
            elapsed_seconds = 0.0

        return _Result()


def _drain_with_worker_parked(queue, manager, requests):
    """Submit ``requests`` while the single worker is parked on a decoy.

    Returns the futures; the queue contents coalesce deterministically
    once the decoy's detect is released.
    """
    decoy = queue.submit(ServeRequest(graph="decoy"))
    manager.started.wait(timeout=30)
    futures = [queue.submit(request) for request in requests]
    manager.release.set()
    return [decoy] + futures


class TestGrouping:
    def test_same_fingerprint_requests_coalesce(self):
        manager = _RecordingManager(block_first=True)
        queue = ServingQueue(manager, workers=1, max_depth=16, coalesce=8)
        try:
            futures = _drain_with_worker_parked(
                queue, manager, [ServeRequest(graph="g") for _ in range(5)]
            )
            for future in futures:
                future.result(timeout=30)
            assert queue.stats.coalesced == 4  # one leader + 4 piggybackers
        finally:
            queue.close()

    def test_coalesce_bound_caps_the_group(self):
        manager = _RecordingManager(block_first=True)
        queue = ServingQueue(manager, workers=1, max_depth=16, coalesce=3)
        try:
            futures = _drain_with_worker_parked(
                queue, manager, [ServeRequest(graph="g") for _ in range(5)]
            )
            for future in futures:
                future.result(timeout=30)
            # Groups of 3 then 2: piggybackers = 2 + 1.
            assert queue.stats.coalesced == 3
        finally:
            queue.close()

    def test_coalesce_one_disables_grouping(self):
        manager = _RecordingManager(block_first=True)
        queue = ServingQueue(manager, workers=1, max_depth=16, coalesce=1)
        try:
            futures = _drain_with_worker_parked(
                queue, manager, [ServeRequest(graph="g") for _ in range(4)]
            )
            for future in futures:
                future.result(timeout=30)
            assert queue.stats.coalesced == 0
        finally:
            queue.close()

    def test_mismatch_breaks_the_group_but_is_still_served(self):
        manager = _RecordingManager(block_first=True)
        queue = ServingQueue(manager, workers=1, max_depth=16, coalesce=8)
        try:
            requests = [
                ServeRequest(graph="a"),
                ServeRequest(graph="a"),
                ServeRequest(graph="b"),  # carried, then leads its own group
                ServeRequest(graph="b"),
                ServeRequest(graph="a"),
            ]
            futures = _drain_with_worker_parked(queue, manager, requests)
            for future in futures:
                future.result(timeout=30)
            # Order within the queue is preserved: a, a, then b, b, then a.
            assert manager.calls == ["decoy", "a", "a", "b", "b", "a"]
            assert queue.stats.coalesced == 2  # one "a" + one "b" piggyback
        finally:
            queue.close()

    def test_validation(self):
        with pytest.raises(ConfigurationError, match="coalesce"):
            ServingQueue(_RecordingManager(), coalesce=0)


class TestPerRequestSemantics:
    def test_every_member_resolves_with_its_own_result(self, graph):
        with SessionManager(max_sessions=2) as manager:
            with ServingQueue(
                manager, workers=1, max_depth=16,
                coalesce=4, registry=manager.registry,
            ) as queue:
                futures = [
                    queue.submit(ServeRequest(graph=graph, seed=7))
                    for _ in range(5)
                ]
                covers = [f.result(timeout=60).cover for f in futures]
        assert all(cover == covers[0] for cover in covers)

    def test_group_members_keep_their_deadline_checks(self):
        manager = _RecordingManager(block_first=True)
        queue = ServingQueue(manager, workers=1, max_depth=16, coalesce=8)
        try:
            doomed = ServeRequest(
                graph="g",
                deadline_seconds=0.001,
                arrived_at=time.perf_counter() - 1.0,  # already expired
            )
            futures = _drain_with_worker_parked(
                queue, manager, [ServeRequest(graph="g"), doomed]
            )
            assert futures[1].result(timeout=30) is not None
            with pytest.raises(DeadlineExceeded):
                futures[2].result(timeout=30)
            assert queue.stats.expired_queue == 1
        finally:
            queue.close()

    def test_coalesce_batch_lands_in_stats_and_trace(self, graph):
        manager = _RecordingManager(block_first=True)
        queue = ServingQueue(manager, workers=1, max_depth=16, coalesce=8)
        try:
            traces = [new_trace(), new_trace()]
            requests = [
                ServeRequest(graph="g", trace=trace) for trace in traces
            ]
            futures = _drain_with_worker_parked(queue, manager, requests)
            results = [f.result(timeout=30) for f in futures]
            assert results[1].stats["coalesce_batch"] == 2
            assert results[2].stats["coalesce_batch"] == 2
            assert all(t.export()["coalesce_batch"] == 2 for t in traces)
        finally:
            queue.close()

    def test_singleton_dispatch_has_no_coalesce_annotation(self, graph):
        with SessionManager(max_sessions=2) as manager:
            with ServingQueue(
                manager, workers=1, coalesce=8, registry=manager.registry
            ) as queue:
                result = queue.submit(
                    ServeRequest(graph=graph, seed=7)
                ).result(timeout=60)
        assert "coalesce_batch" not in result.stats


class TestShutdown:
    def test_close_drains_coalesced_backlog(self):
        manager = _RecordingManager(block_first=True)
        queue = ServingQueue(manager, workers=1, max_depth=16, coalesce=4)
        futures = _drain_with_worker_parked(
            queue, manager, [ServeRequest(graph="g") for _ in range(6)]
        )
        queue.close(drain=True)
        assert all(f.done() for f in futures)
        assert queue.stats.completed == 7

    def test_non_drain_close_cancels_pending_members(self):
        manager = _RecordingManager(block_first=True)
        queue = ServingQueue(manager, workers=1, max_depth=16, coalesce=4)
        decoy = queue.submit(ServeRequest(graph="decoy"))
        manager.started.wait(timeout=30)
        pending = [queue.submit(ServeRequest(graph="g")) for _ in range(3)]
        closer = threading.Thread(target=queue.close, kwargs={"drain": False})
        closer.start()
        time.sleep(0.05)
        manager.release.set()
        closer.join(timeout=30)
        assert not closer.is_alive()
        assert decoy.result(timeout=30) is not None
        assert all(f.cancelled() or f.done() for f in pending)

    def test_metrics_render_in_prometheus_exposition(self):
        manager = _RecordingManager(block_first=True)
        queue = ServingQueue(manager, workers=1, max_depth=16, coalesce=8)
        try:
            futures = _drain_with_worker_parked(
                queue, manager, [ServeRequest(graph="g") for _ in range(3)]
            )
            for future in futures:
                future.result(timeout=30)
        finally:
            queue.close()
        text = queue.registry.render()
        assert "repro_queue_coalesced_total 2" in text
        assert "repro_queue_coalesce_batch_bucket" in text
