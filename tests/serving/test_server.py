"""The TCP socket front-end: schema fidelity, fairness, deadlines, caps.

The acceptance matrix extends ISSUE 4's: covers served over a real
socket must be byte-identical to direct ``GraphSession.detect`` for all
four detectors on both int- and str-labelled graphs.  The serving
semantics only the socket adds — round-robin admission across clients,
per-client in-flight caps, deadline shedding — are pinned against a
gated manager stub so the tests control dispatch timing exactly.
"""

import json
import socket
import threading
import time

import pytest

from repro import Graph, GraphSession
from repro.errors import ConfigurationError
from repro.generators import ring_of_cliques
from repro.serving import ServingServer, ServingService, start_server_thread
from repro.serving.service import _serialize_cover

DETECTORS = ("oca", "lfk", "cfinder", "cpm")
SEED = 41


# ----------------------------------------------------------------------
# Plumbing
# ----------------------------------------------------------------------
class _Connection:
    """One JSONL client connection with line-by-line send/receive."""

    def __init__(self, host, port, timeout=30.0):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._stream = self._sock.makefile("rw", encoding="utf-8")

    def send(self, payload):
        text = payload if isinstance(payload, str) else json.dumps(payload)
        self._stream.write(text + "\n")
        self._stream.flush()

    def receive(self):
        line = self._stream.readline()
        if not line:
            raise AssertionError("server closed the connection early")
        return json.loads(line)

    def close(self):
        self._sock.close()


class _GatedManager:
    """A manager stub whose detects block on one gate and record order."""

    def __init__(self):
        self.release = threading.Event()
        self.started = threading.Event()
        self.calls = []
        self._lock = threading.Lock()

    def detect(self, graph, algorithm, seed=None, **params):
        self.started.set()
        assert self.release.wait(timeout=30)
        with self._lock:
            self.calls.append(seed)

        class _Result:
            algorithm = "stub"
            cover = [[0]]
            elapsed_seconds = 0.0
            raw_cover = None

            def __init__(self):
                self.stats = {}

        return _Result()


def _wait_until(predicate, timeout=30.0, interval=0.005):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval)
    raise AssertionError("condition not reached in time")


@pytest.fixture()
def int_graph():
    g, _ = ring_of_cliques(4, 5)
    return g


@pytest.fixture()
def str_graph(int_graph):
    mapping = {node: f"n{node}" for node in int_graph.nodes()}
    g = Graph(nodes=(mapping[node] for node in int_graph.nodes()))
    for u, v in int_graph.edges():
        g.add_edge(mapping[u], mapping[v])
    return g


def _edges_payload(graph):
    return {"edges": [[u, v] for u, v in graph.edges()]}


# ----------------------------------------------------------------------
# Schema fidelity over a real socket
# ----------------------------------------------------------------------
class TestSocketAcceptanceMatrix:
    def test_socket_covers_byte_identical_to_direct_sessions(
        self, int_graph, str_graph
    ):
        """4 detectors x {int,str} labels: the socket serves exactly the
        canonical serialization of the direct GraphSession cover."""
        expected = {}
        for label, graph in (("int", int_graph), ("str", str_graph)):
            with GraphSession(graph) as session:
                for name in DETECTORS:
                    cover = session.detect(name, seed=SEED).cover
                    expected[(label, name)] = _serialize_cover(cover)

        with start_server_thread(max_sessions=2) as handle:
            client = _Connection(handle.host, handle.port)
            keys = []
            for label, graph in (("int", int_graph), ("str", str_graph)):
                for name in DETECTORS:
                    keys.append((label, name))
                    client.send(
                        {
                            "id": f"{label}-{name}",
                            "graph": _edges_payload(graph),
                            "algorithm": name,
                            "seed": SEED,
                        }
                    )
            for key in keys:
                response = client.receive()
                assert response["ok"], response
                assert response["id"] == f"{key[0]}-{key[1]}"
                assert response["communities"] == expected[key]
            client.close()
        assert handle.stats.ok == len(keys)

    def test_responses_in_request_order_with_per_request_errors(
        self, int_graph
    ):
        with start_server_thread(max_sessions=2) as handle:
            client = _Connection(handle.host, handle.port)
            client.send(
                {"id": "a", "graph": _edges_payload(int_graph), "seed": 1}
            )
            client.send("this is not json")
            client.send({"id": "c", "graph": _edges_payload(int_graph),
                         "algorithm": "nope"})
            client.send(
                {"id": "d", "graph": _edges_payload(int_graph), "seed": 1}
            )
            responses = [client.receive() for _ in range(4)]
            client.close()
        assert [r["id"] for r in responses] == ["a", None, "c", "d"]
        assert [r["ok"] for r in responses] == [True, False, False, True]
        assert "malformed JSON" in responses[1]["error"]
        assert "unknown algorithm" in responses[2]["error"]
        # The two good requests share content => one warm session.
        assert responses[3]["session_hit"] is True

    def test_two_clients_share_warm_sessions(self, int_graph):
        with start_server_thread(max_sessions=2) as handle:
            first = _Connection(handle.host, handle.port)
            first.send(
                {"id": 0, "graph": _edges_payload(int_graph), "seed": 5}
            )
            warm = first.receive()
            second = _Connection(handle.host, handle.port)
            second.send(
                {"id": 1, "graph": _edges_payload(int_graph), "seed": 5}
            )
            reused = second.receive()
            first.close()
            second.close()
        assert warm["ok"] and reused["ok"]
        assert reused["session_hit"] is True
        assert reused["communities"] == warm["communities"]
        assert handle.stats.clients_total == 2


# ----------------------------------------------------------------------
# Fairness, caps, deadlines (gated manager: dispatch timing is ours)
# ----------------------------------------------------------------------
def _gated_server(gate, max_inflight_per_client=16, **service_kwargs):
    service = ServingService(manager=gate, **service_kwargs)
    return start_server_thread(
        service=service, max_inflight_per_client=max_inflight_per_client
    )


class TestFairness:
    def test_round_robin_interleaves_unequal_client_streams(self):
        """A client streaming 10 requests cannot starve one sending 2:
        round-robin admission serves the small client long before the
        big one's backlog clears."""
        gate = _GatedManager()
        heavy_seeds = list(range(10))
        light_seeds = [100, 101]
        with _gated_server(gate, queue_workers=1, max_depth=1) as handle:
            heavy = _Connection(handle.host, handle.port)
            for seed in heavy_seeds:
                heavy.send({"id": seed, "fingerprint": "f" * 64, "seed": seed})
            # The heavy stream must be in first: wait until its lines
            # are parsed so the light client genuinely arrives second.
            _wait_until(lambda: handle.stats.requests == len(heavy_seeds))
            light = _Connection(handle.host, handle.port)
            for seed in light_seeds:
                light.send({"id": seed, "fingerprint": "f" * 64, "seed": seed})
            _wait_until(
                lambda: handle.stats.requests
                == len(heavy_seeds) + len(light_seeds)
            )
            gate.release.set()
            light_responses = [light.receive() for _ in light_seeds]
            heavy_responses = [heavy.receive() for _ in heavy_seeds]
            heavy.close()
            light.close()
        assert all(r["ok"] for r in light_responses + heavy_responses)
        # Admission (== dispatch: 1 worker, depth 1) interleaved: both
        # light requests were served well before the heavy backlog — a
        # FIFO queue would have put them at positions 11 and 12.
        positions = [gate.calls.index(seed) for seed in light_seeds]
        assert max(positions) <= 6, gate.calls

    def test_per_client_inflight_cap_rejects_with_queue_full(self):
        gate = _GatedManager()
        service = ServingService(manager=gate, queue_workers=1, max_depth=8)
        with start_server_thread(
            service=service, max_inflight_per_client=2
        ) as handle:
            client = _Connection(handle.host, handle.port)
            for index in range(6):
                client.send(
                    {"id": index, "fingerprint": "f" * 64, "seed": index}
                )
            # All six lines parsed while the first two block the gate:
            # the cap verdict is taken at parse time, deterministically.
            _wait_until(lambda: handle.stats.requests == 6)
            gate.release.set()
            responses = [client.receive() for _ in range(6)]
            client.close()
        assert [r["ok"] for r in responses] == [True, True] + [False] * 4
        assert all(r["error"] == "queue full" for r in responses[2:])
        assert handle.stats.queue_full_rejections == 4
        assert sorted(gate.calls) == [0, 1]  # rejected requests never ran

    def test_cap_frees_as_responses_flush(self):
        """The cap is on *outstanding* work: once earlier responses are
        written, the same client can submit again."""
        gate = _GatedManager()
        gate.release.set()  # no gating: requests flow straight through
        service = ServingService(manager=gate, queue_workers=1, max_depth=8)
        with start_server_thread(
            service=service, max_inflight_per_client=1
        ) as handle:
            client = _Connection(handle.host, handle.port)
            for index in range(5):
                client.send(
                    {"id": index, "fingerprint": "f" * 64, "seed": index}
                )
                response = client.receive()  # wait: outstanding drops to 0
                assert response["ok"], response
            client.close()
        assert handle.stats.queue_full_rejections == 0
        assert len(gate.calls) == 5


class TestDeadlines:
    def test_expired_request_is_shed_without_running_detect(self):
        gate = _GatedManager()
        with _gated_server(gate, queue_workers=1, max_depth=4) as handle:
            client = _Connection(handle.host, handle.port)
            client.send({"id": "long", "fingerprint": "f" * 64, "seed": 0})
            assert gate.started.wait(timeout=30)  # worker now blocked
            client.send({"id": "fill", "fingerprint": "f" * 64, "seed": 1})
            client.send(
                {
                    "id": "doomed",
                    "fingerprint": "f" * 64,
                    "seed": 2,
                    "deadline_seconds": 0.05,
                }
            )
            _wait_until(lambda: handle.stats.requests == 3)
            time.sleep(0.2)  # the doomed request expires in the queue
            gate.release.set()
            responses = [client.receive() for _ in range(3)]
            client.close()
        assert [r["id"] for r in responses] == ["long", "fill", "doomed"]
        assert [r["ok"] for r in responses] == [True, True, False]
        assert "deadline" in responses[2]["error"]
        assert handle.stats.deadline_expired == 1
        assert sorted(gate.calls) == [0, 1]  # seed 2's detect never ran

    def test_deadline_covers_time_parked_before_admission(self):
        """The budget starts at arrival: a request stuck *behind* the
        admission stage (shared queue full, admission blocked) is shed
        too — its clock must not start only at queue submission."""
        gate = _GatedManager()
        with _gated_server(gate, queue_workers=1, max_depth=1) as handle:
            client = _Connection(handle.host, handle.port)
            client.send({"id": "long", "fingerprint": "f" * 64, "seed": 0})
            assert gate.started.wait(timeout=30)  # worker pinned
            client.send({"id": "fills", "fingerprint": "f" * 64, "seed": 1})
            client.send({"id": "blocks", "fingerprint": "f" * 64, "seed": 2})
            client.send(
                {
                    "id": "parked",
                    "fingerprint": "f" * 64,
                    "seed": 3,
                    "deadline_seconds": 0.05,
                }
            )
            _wait_until(lambda: handle.stats.requests == 4)
            time.sleep(0.2)  # "parked" expires while awaiting admission
            gate.release.set()
            responses = [client.receive() for _ in range(4)]
            client.close()
        assert [r["id"] for r in responses] == [
            "long", "fills", "blocks", "parked",
        ]
        assert [r["ok"] for r in responses] == [True, True, True, False]
        assert "deadline" in responses[3]["error"]
        assert handle.stats.deadline_expired == 1
        assert sorted(gate.calls) == [0, 1, 2]  # the parked detect never ran

    def test_deadline_met_requests_serve_normally(self, int_graph):
        with start_server_thread(max_sessions=2) as handle:
            client = _Connection(handle.host, handle.port)
            client.send(
                {
                    "id": 0,
                    "graph": _edges_payload(int_graph),
                    "seed": 3,
                    "deadline_seconds": 30,
                }
            )
            response = client.receive()
            client.close()
        assert response["ok"], response
        assert handle.stats.deadline_expired == 0

    def test_invalid_deadline_is_a_parse_error(self, int_graph):
        with start_server_thread(max_sessions=2) as handle:
            client = _Connection(handle.host, handle.port)
            client.send(
                {
                    "id": 0,
                    "graph": _edges_payload(int_graph),
                    "deadline_seconds": -1,
                }
            )
            response = client.receive()
            client.close()
        assert response["ok"] is False
        assert "deadline_seconds" in response["error"]


class TestLifecycle:
    def test_invalid_inflight_cap_rejected(self):
        with pytest.raises(ConfigurationError):
            ServingServer(max_inflight_per_client=0)

    def test_stop_flushes_inflight_responses(self):
        gate = _GatedManager()
        service = ServingService(manager=gate, queue_workers=1, max_depth=4)
        handle = start_server_thread(service=service)
        client = _Connection(handle.host, handle.port)
        client.send({"id": "inflight", "fingerprint": "f" * 64, "seed": 0})
        assert gate.started.wait(timeout=30)
        stopper = threading.Thread(target=handle.stop)
        stopper.start()
        gate.release.set()
        response = client.receive()  # written during the graceful stop
        stopper.join(timeout=30)
        assert not stopper.is_alive()
        assert response["ok"], response
        client.close()
        service.close()

    def test_caller_supplied_service_stays_open(self, int_graph):
        with ServingService(max_sessions=2) as service:
            with start_server_thread(service=service) as handle:
                client = _Connection(handle.host, handle.port)
                client.send(
                    {"id": 0, "graph": _edges_payload(int_graph), "seed": 1}
                )
                assert client.receive()["ok"]
                client.close()
            # The handle owns no service: the queue must still accept.
            assert not service.queue.closed
            responses = list(
                service.handle_lines(
                    [
                        json.dumps(
                            {
                                "id": 1,
                                "graph": _edges_payload(int_graph),
                                "seed": 1,
                            }
                        )
                    ]
                )
            )
            assert responses[0]["ok"]
