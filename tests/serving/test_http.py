"""The HTTP front-end: schema fidelity, /health, /metrics, traces.

The acceptance matrix extends the socket front-end's: covers served
over HTTP must be byte-identical to direct ``GraphSession.detect`` for
all four detectors on both int- and str-labelled graphs.  The
operational endpoints are pinned against the stack's real accounting:
a /metrics scrape must agree with the ``QueueStats`` / ``ManagerStats``
views (one registry, one truth), and /health must flip to draining
*during* a graceful stop, while in-flight work is still finishing.
"""

import asyncio
import http.client
import json
import os
import re
import threading
import time

import pytest

from repro import Graph, GraphSession
from repro.generators import ring_of_cliques
from repro.serving import (
    HttpServer,
    ServingService,
    start_http_thread,
    start_server_thread,
)
from repro.serving.service import _serialize_cover

DETECTORS = ("oca", "lfk", "cfinder", "cpm")
SEED = 41


# ----------------------------------------------------------------------
# Plumbing
# ----------------------------------------------------------------------
def _request(handle, method, path, body=None, headers=None, timeout=30.0):
    """One HTTP exchange; returns (status, headers dict, body text)."""
    conn = http.client.HTTPConnection(handle.host, handle.port, timeout=timeout)
    try:
        conn.request(method, path, body=body, headers=headers or {})
        response = conn.getresponse()
        return (
            response.status,
            {k.lower(): v for k, v in response.getheaders()},
            response.read().decode("utf-8"),
        )
    finally:
        conn.close()


def _detect_lines(handle, payloads):
    """POST /detect with one JSONL line per payload; parsed responses."""
    body = "".join(json.dumps(p) + "\n" for p in payloads).encode("utf-8")
    status, _, text = _request(
        handle, "POST", "/detect", body=body,
        headers={"Content-Type": "application/x-ndjson"},
    )
    assert status == 200
    return [json.loads(line) for line in text.strip().splitlines()]


def _parse_metrics(text):
    """Prometheus text -> {'name{labels}': float}, comments skipped."""
    samples = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        key, value = line.rsplit(" ", 1)
        samples[key] = float(value)
    return samples


@pytest.fixture()
def int_graph():
    g, _ = ring_of_cliques(4, 5)
    return g


@pytest.fixture()
def str_graph(int_graph):
    mapping = {node: f"n{node}" for node in int_graph.nodes()}
    g = Graph(nodes=(mapping[node] for node in int_graph.nodes()))
    for u, v in int_graph.edges():
        g.add_edge(mapping[u], mapping[v])
    return g


def _edges_payload(graph):
    return {"edges": [[u, v] for u, v in graph.edges()]}


# ----------------------------------------------------------------------
# Schema fidelity over HTTP
# ----------------------------------------------------------------------
class TestHttpAcceptanceMatrix:
    def test_http_covers_byte_identical_to_direct_sessions(
        self, int_graph, str_graph
    ):
        """4 detectors x {int,str} labels: POST /detect serves exactly
        the canonical serialization of the direct GraphSession cover."""
        expected = {}
        for label, graph in (("int", int_graph), ("str", str_graph)):
            with GraphSession(graph) as session:
                for name in DETECTORS:
                    cover = session.detect(name, seed=SEED).cover
                    expected[(label, name)] = _serialize_cover(cover)

        with start_http_thread(max_sessions=2) as handle:
            payloads = [
                {
                    "id": f"{label}-{name}",
                    "graph": _edges_payload(graph),
                    "algorithm": name,
                    "seed": SEED,
                }
                for label, graph in (("int", int_graph), ("str", str_graph))
                for name in DETECTORS
            ]
            responses = _detect_lines(handle, payloads)
            assert len(responses) == len(payloads)
            for payload, response in zip(payloads, responses):
                assert response["ok"], response
                assert response["id"] == payload["id"]
                label, name = payload["id"].split("-", 1)
                assert response["communities"] == expected[(label, name)]
                assert response["algorithm"] == name

    def test_http_and_socket_response_lines_are_byte_identical(
        self, int_graph
    ):
        """The exact response text, not just the cover: both front-ends
        serialize through the same helpers, modulo per-run timings."""
        payload = {
            "id": "same",
            "graph": _edges_payload(int_graph),
            "algorithm": "oca",
            "seed": SEED,
        }

        def _scrub(line):
            response = json.loads(line)
            for volatile in ("elapsed_seconds", "latency_seconds",
                             "stats", "trace"):
                response.pop(volatile, None)
            return json.dumps(response, sort_keys=True)

        with start_http_thread(max_sessions=1) as handle:
            _, _, http_text = _request(
                handle, "POST", "/detect",
                body=(json.dumps(payload) + "\n").encode("utf-8"),
            )
        import socket as socket_module

        with start_server_thread(max_sessions=1) as handle:
            sock = socket_module.create_connection(
                (handle.host, handle.port), timeout=30
            )
            stream = sock.makefile("rw", encoding="utf-8")
            stream.write(json.dumps(payload) + "\n")
            stream.flush()
            socket_text = stream.readline()
            sock.close()
        assert _scrub(http_text.strip()) == _scrub(socket_text.strip())

    def test_per_line_errors_do_not_poison_the_body(self, int_graph):
        with start_http_thread(max_sessions=1) as handle:
            body = (
                json.dumps(
                    {
                        "id": "good",
                        "graph": _edges_payload(int_graph),
                        "algorithm": "oca",
                        "seed": SEED,
                    }
                )
                + "\n"
                + "this is not json\n"
                + json.dumps({"id": "bad-algo",
                              "graph": _edges_payload(int_graph),
                              "algorithm": "nope"})
                + "\n"
            ).encode("utf-8")
            status, _, text = _request(handle, "POST", "/detect", body=body)
            assert status == 200
            responses = [json.loads(line) for line in text.strip().splitlines()]
        assert [r["ok"] for r in responses] == [True, False, False]
        assert responses[0]["id"] == "good"
        assert responses[2]["id"] == "bad-algo"

    def test_keep_alive_serves_sequential_requests(self, int_graph):
        with start_http_thread(max_sessions=1) as handle:
            conn = http.client.HTTPConnection(
                handle.host, handle.port, timeout=30
            )
            try:
                for _ in range(3):
                    conn.request("GET", "/health")
                    response = conn.getresponse()
                    assert response.status == 200
                    response.read()
            finally:
                conn.close()


# ----------------------------------------------------------------------
# Request tracing
# ----------------------------------------------------------------------
class TestTraces:
    def test_trace_ids_round_trip_and_spans_cover_the_pipeline(
        self, int_graph
    ):
        with start_http_thread(max_sessions=1) as handle:
            payloads = [
                {
                    "id": f"r{i}",
                    "graph": _edges_payload(int_graph),
                    "algorithm": "oca",
                    "seed": SEED,
                }
                for i in range(2)
            ]
            responses = _detect_lines(handle, payloads)
        traces = [response["trace"] for response in responses]
        ids = [trace["id"] for trace in traces]
        assert len(set(ids)) == 2
        for trace_id in ids:
            assert re.fullmatch(r"t-\d+-\d{6}", trace_id)
        for trace in traces:
            assert set(trace["spans"]) >= {
                "parse",
                "queue_wait",
                "session_acquire",
                "detect",
                "render",
            }
            assert all(value >= 0 for value in trace["spans"].values())
        # The second request hits the first's warm session.
        assert traces[0]["session_hit"] is False
        assert traces[1]["session_hit"] is True

    def test_parse_errors_carry_a_trace_too(self):
        with start_http_thread(max_sessions=1) as handle:
            responses = _detect_lines(handle, ["not an object"])
        assert responses[0]["ok"] is False
        assert re.fullmatch(r"t-\d+-\d{6}", responses[0]["trace"]["id"])
        assert "parse" in responses[0]["trace"]["spans"]


# ----------------------------------------------------------------------
# /metrics
# ----------------------------------------------------------------------
class TestMetricsEndpoint:
    def test_scrape_parses_and_matches_stats_views(self, int_graph):
        with start_http_thread(max_sessions=2) as handle:
            payloads = [
                {
                    "id": f"r{i}",
                    "graph": _edges_payload(int_graph),
                    "algorithm": "oca",
                    "seed": SEED,
                }
                for i in range(4)
            ]
            responses = _detect_lines(handle, payloads)
            assert all(r["ok"] for r in responses)
            status, headers, text = _request(handle, "GET", "/metrics")
            assert status == 200
            assert headers["content-type"].startswith("text/plain")
            samples = _parse_metrics(text)
            service = handle.server.service
            queue_stats = service.queue.stats
            manager_stats = service.manager.stats

        assert samples["repro_queue_submitted_total"] == queue_stats.submitted
        assert samples["repro_queue_completed_total"] == queue_stats.completed
        assert (
            samples['repro_manager_requests_total{outcome="hit"}']
            == manager_stats.hits
        )
        assert (
            samples['repro_manager_requests_total{outcome="miss"}']
            == manager_stats.misses
        )
        assert samples["repro_manager_sessions_resident"] == 1
        assert samples["repro_queue_wait_seconds_count"] == 4
        assert samples['repro_service_responses_total{status="ok"}'] == 4
        assert samples['repro_session_detect_total{algorithm="oca"}'] == 4
        assert samples['repro_http_requests_total{path="/detect"}'] == 1
        # One registry spans every layer: queue, manager, session,
        # service, and the HTTP front-end itself all in one scrape.
        prefixes = {key.split("_")[1] for key in samples if "{" not in key}
        assert {"queue", "manager", "session", "service", "http"} <= prefixes

    def test_unknown_paths_scrape_as_other(self):
        with start_http_thread(max_sessions=1) as handle:
            status, _, _ = _request(handle, "GET", "/nope")
            assert status == 404
            _, _, text = _request(handle, "GET", "/metrics")
            samples = _parse_metrics(text)
        assert samples['repro_http_requests_total{path="other"}'] == 1


# ----------------------------------------------------------------------
# /health and graceful shutdown
# ----------------------------------------------------------------------
class _GatedManager:
    """A manager stub whose detects block on one gate."""

    def __init__(self):
        self.release = threading.Event()
        self.started = threading.Event()

    def __len__(self):
        return 0

    def detect(self, graph, algorithm, seed=None, **params):
        self.started.set()
        assert self.release.wait(timeout=30)

        class _Result:
            algorithm = "stub"
            cover = [[0]]
            elapsed_seconds = 0.0
            raw_cover = None
            stats = {}

        return _Result()


class TestHealthAndShutdown:
    def test_health_reports_ready_with_live_stack_numbers(self):
        with start_http_thread(max_sessions=3) as handle:
            status, _, text = _request(handle, "GET", "/health")
        assert status == 200
        payload = json.loads(text)
        assert payload["status"] == "ready"
        assert payload["queue_depth"] == 0
        assert payload["sessions_resident"] == 0
        assert payload["pid"] == os.getpid()
        assert payload["uptime_seconds"] >= 0.0
        from repro import __version__

        assert payload["version"] == __version__

    def test_health_flips_to_draining_during_graceful_stop(self):
        """During stop(grace): /health answers 503 draining on new
        connections while an in-flight detect is still finishing, and
        the in-flight response is delivered before connections close."""
        gate = _GatedManager()
        service = ServingService(manager=gate, queue_workers=1, max_depth=4)
        handle = start_http_thread(service=service)
        try:
            results = {}

            def post():
                results["detect"] = _request(
                    handle,
                    "POST",
                    "/detect",
                    body=b'{"id": "slow", "fingerprint": "f" }\n',
                )

            poster = threading.Thread(target=post)
            poster.start()
            assert gate.started.wait(timeout=30)

            stop_future = asyncio.run_coroutine_threadsafe(
                handle.server.stop(), handle._loop
            )
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                if handle.server.draining:
                    break
                time.sleep(0.01)
            status, _, text = _request(handle, "GET", "/health")
            assert status == 503
            assert json.loads(text)["status"] == "draining"

            gate.release.set()
            stop_future.result(timeout=30)
            poster.join(timeout=30)
            status, _, text = results["detect"]
            assert status == 200
            response = json.loads(text.strip())
            assert response["id"] == "slow"

            with pytest.raises(OSError):
                _request(handle, "GET", "/health", timeout=2)
        finally:
            gate.release.set()
            handle.stop()
            service.close()

    def test_detect_refused_while_draining(self):
        gate = _GatedManager()
        service = ServingService(manager=gate, queue_workers=1, max_depth=4)
        handle = start_http_thread(service=service)
        try:
            def post():
                _request(
                    handle,
                    "POST",
                    "/detect",
                    body=b'{"id": "slow", "fingerprint": "f"}\n',
                )

            poster = threading.Thread(target=post)
            poster.start()
            assert gate.started.wait(timeout=30)
            asyncio.run_coroutine_threadsafe(
                handle.server.stop(), handle._loop
            )
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                if handle.server.draining:
                    break
                time.sleep(0.01)
            status, _, text = _request(
                handle, "POST", "/detect", body=b'{"id": "late"}\n'
            )
            assert status == 503
            assert json.loads(text)["error"] == "draining"
            gate.release.set()
            poster.join(timeout=30)
        finally:
            gate.release.set()
            handle.stop()
            service.close()


# ----------------------------------------------------------------------
# Protocol edges
# ----------------------------------------------------------------------
class TestProtocolEdges:
    def test_unknown_endpoint_404(self):
        with start_http_thread(max_sessions=1) as handle:
            status, _, text = _request(handle, "GET", "/covers")
        assert status == 404
        assert "no such endpoint" in json.loads(text)["error"]

    def test_wrong_method_405(self):
        with start_http_thread(max_sessions=1) as handle:
            status, _, _ = _request(handle, "POST", "/health", body=b"")
            assert status == 405
            status, _, _ = _request(handle, "GET", "/detect")
            assert status == 405

    def test_detect_without_content_length_411(self):
        with start_http_thread(max_sessions=1) as handle:
            sock_status = None
            conn = http.client.HTTPConnection(
                handle.host, handle.port, timeout=30
            )
            try:
                conn.putrequest("POST", "/detect", skip_accept_encoding=True)
                conn.endheaders()
                response = conn.getresponse()
                sock_status = response.status
                response.read()
            finally:
                conn.close()
        assert sock_status == 411

    def test_oversized_body_413_and_counted(self):
        with start_http_thread(
            max_sessions=1, max_body_bytes=64
        ) as handle:
            status, _, text = _request(
                handle, "POST", "/detect", body=b"x" * 100
            )
            assert status == 413
            assert "max_body_bytes" in json.loads(text)["error"]
            _, _, metrics_text = _request(handle, "GET", "/metrics")
            samples = _parse_metrics(metrics_text)
        assert samples["repro_http_oversized_total"] == 1

    def test_empty_body_yields_empty_response(self):
        with start_http_thread(max_sessions=1) as handle:
            status, _, text = _request(handle, "POST", "/detect", body=b"")
        assert status == 200
        assert text == ""


# ----------------------------------------------------------------------
# /debug/* forensics
# ----------------------------------------------------------------------
class TestDebugEndpoints:
    def test_debug_events_sees_the_request_event(self, int_graph):
        with start_http_thread(max_sessions=1) as handle:
            _detect_lines(handle, [{
                "id": "seen",
                "graph": _edges_payload(int_graph),
                "algorithm": "oca",
                "seed": SEED,
            }])
            status, _, text = _request(handle, "GET", "/debug/events")
        assert status == 200
        payload = json.loads(text)
        kinds = [event["kind"] for event in payload["events"]]
        assert "server_start" in kinds
        assert "request" in kinds
        assert payload["dropped"] == 0
        assert payload["buffered"] == len(payload["events"])
        request_event = next(
            e for e in payload["events"] if e["kind"] == "request"
        )
        assert request_event["request_id"] == "seen"
        assert request_event["client"] == "http"
        assert request_event["status"] == "ok"
        assert request_event["algorithm"] == "oca"
        assert re.fullmatch(r"t-\d+-\d{6}", request_event["trace"])
        assert "detect" in request_event["spans"]

    def test_debug_events_kind_filter_and_bound(self, int_graph):
        with start_http_thread(max_sessions=1) as handle:
            payloads = [
                {
                    "id": f"r{i}",
                    "graph": _edges_payload(int_graph),
                    "algorithm": "oca",
                    "seed": SEED,
                }
                for i in range(3)
            ]
            _detect_lines(handle, payloads)
            status, _, text = _request(
                handle, "GET", "/debug/events?kind=request&n=2"
            )
        assert status == 200
        events = json.loads(text)["events"]
        assert [e["kind"] for e in events] == ["request", "request"]
        assert [e["request_id"] for e in events] == ["r1", "r2"]

    def test_debug_slow_captures_with_zero_threshold(self, int_graph):
        with start_http_thread(
            max_sessions=1, slow_threshold_seconds=0.0
        ) as handle:
            _detect_lines(handle, [{
                "id": "slowpoke",
                "graph": _edges_payload(int_graph),
                "algorithm": "oca",
                "seed": SEED,
            }])
            status, _, text = _request(handle, "GET", "/debug/slow")
        assert status == 200
        payload = json.loads(text)
        assert payload["threshold_seconds"] == 0.0
        assert payload["captured"] == 1
        record = payload["requests"][0]
        assert record["request_id"] == "slowpoke"
        assert record["latency_seconds"] >= 0.0
        # Forensics context rides along: full trace, engine stats, queue.
        assert "spans" in record["trace_export"]
        assert record["stats"]
        assert "queue_depth_now" in record

    def test_debug_slow_empty_without_threshold(self):
        with start_http_thread(max_sessions=1) as handle:
            status, _, text = _request(handle, "GET", "/debug/slow")
        assert status == 200
        payload = json.loads(text)
        assert payload["requests"] == []
        assert payload["threshold_seconds"] is None

    def test_debug_vars_is_the_registry_snapshot(self):
        with start_http_thread(max_sessions=1) as handle:
            _request(handle, "GET", "/health")
            status, _, text = _request(handle, "GET", "/debug/vars")
        assert status == 200
        snapshot = json.loads(text)
        assert snapshot['repro_http_requests_total{path="/health"}'] == 1.0
        assert "repro_manager_sessions_resident" in snapshot

    def test_debug_profile_returns_collapsed_stacks(self):
        with start_http_thread(max_sessions=1) as handle:
            status, headers, text = _request(
                handle, "GET", "/debug/profile?seconds=0.3"
            )
        assert status == 200
        assert headers["content-type"].startswith("text/plain")
        assert text.startswith("# samples:")
        # The serving loop itself is running, so stacks are non-empty.
        body = [l for l in text.splitlines() if not l.startswith("#")]
        assert body, text
        for line in body:
            assert int(line.rsplit(" ", 1)[1]) >= 1

    def test_debug_profile_rejects_bad_durations(self):
        with start_http_thread(max_sessions=1) as handle:
            for query in ("seconds=0", "seconds=61", "seconds=banana"):
                status, _, _ = _request(
                    handle, "GET", f"/debug/profile?{query}"
                )
                assert status == 400

    def test_debug_unknown_path_404(self):
        with start_http_thread(max_sessions=1) as handle:
            status, _, _ = _request(handle, "GET", "/debug/nope")
        assert status == 404

    def test_debug_is_get_only(self):
        with start_http_thread(max_sessions=1) as handle:
            status, _, text = _request(handle, "POST", "/debug/events")
        assert status == 405
        assert "use GET" in json.loads(text)["error"]

    def test_server_stop_event_emitted_on_close(self):
        with start_http_thread(max_sessions=1) as handle:
            service = handle.server.service
        kinds = [e["kind"] for e in service.events.tail()]
        assert "server_stop" in kinds
