"""ServingQueue: admission, backpressure, deadlines, drain, fidelity."""

import threading
import time

import pytest

from repro import GraphSession, ServeRequest, ServingQueue, SessionManager
from repro.errors import (
    ConfigurationError,
    DeadlineExceeded,
    QueueFull,
    ServingError,
)
from repro.generators import ring_of_cliques


@pytest.fixture()
def graph():
    g, _ = ring_of_cliques(4, 5)
    return g


class _BlockingManager:
    """A manager stub whose detect blocks until released — lets the
    tests fill the queue deterministically without timing games."""

    def __init__(self):
        self.release = threading.Event()
        self.started = threading.Event()
        self.calls = 0

    def detect(self, graph, algorithm, seed=None, **params):
        self.started.set()
        self.release.wait(timeout=30)
        self.calls += 1

        class _Result:
            stats = {}
            cover = graph

        return _Result()


class TestAdmission:
    def test_submit_returns_future_with_result(self, graph):
        with SessionManager(max_sessions=2) as manager:
            with GraphSession(graph.copy()) as session:
                expected = session.detect("oca", seed=5).cover
            with ServingQueue(manager, workers=2, max_depth=8) as queue:
                future = queue.detect(graph, "oca", seed=5)
                result = future.result(timeout=30)
            assert result.cover == expected
            assert result.stats["session_fingerprint"]
            assert result.stats["queue_wait_seconds"] >= 0.0

    def test_queue_full_backpressure(self):
        manager = _BlockingManager()
        queue = ServingQueue(manager, workers=1, max_depth=2)
        try:
            first = queue.submit(ServeRequest(graph="g"))
            manager.started.wait(timeout=30)  # worker busy on `first`
            queue.submit(ServeRequest(graph="g"))
            queue.submit(ServeRequest(graph="g"))
            with pytest.raises(QueueFull) as excinfo:
                queue.submit(ServeRequest(graph="g"))
            assert excinfo.value.depth == 2
            assert queue.stats.rejected == 1
            assert queue.depth == 2
        finally:
            manager.release.set()
            queue.close()
        assert first.result(timeout=30) is not None
        assert manager.calls == 3

    def test_detect_errors_travel_through_the_future(self, graph):
        with SessionManager(max_sessions=2) as manager:
            with ServingQueue(manager, workers=1, max_depth=4) as queue:
                future = queue.detect(graph, "no-such-algorithm")
                with pytest.raises(Exception, match="unknown algorithm"):
                    future.result(timeout=30)
                assert queue.stats.failed == 1
                # The queue survives a failed request.
                ok = queue.detect(graph, "oca", seed=0).result(timeout=30)
                assert len(ok.cover) >= 1

    def test_blocking_submit_waits_without_counting_rejections(self):
        manager = _BlockingManager()
        queue = ServingQueue(manager, workers=1, max_depth=1)
        try:
            queue.submit(ServeRequest(graph="g"))
            manager.started.wait(timeout=30)
            queue.submit(ServeRequest(graph="g"))  # fills the queue
            waited = []
            blocker = threading.Thread(
                target=lambda: waited.append(
                    queue.submit_blocking(ServeRequest(graph="g"))
                )
            )
            blocker.start()
            blocker.join(timeout=0.1)
            assert blocker.is_alive()  # genuinely waiting for space
            manager.release.set()
            blocker.join(timeout=30)
            assert not blocker.is_alive()
        finally:
            manager.release.set()
            queue.close()
        assert waited[0].result(timeout=30) is not None
        # The wait is flow control, not refusal: rejected stays 0.
        assert queue.stats.rejected == 0
        assert queue.stats.submitted == 3

    def test_blocking_submit_timeout_raises_queue_full(self):
        manager = _BlockingManager()
        queue = ServingQueue(manager, workers=1, max_depth=1)
        try:
            queue.submit(ServeRequest(graph="g"))
            manager.started.wait(timeout=30)
            queue.submit(ServeRequest(graph="g"))  # fills the queue
            started = time.perf_counter()
            with pytest.raises(QueueFull):
                queue.submit_blocking(ServeRequest(graph="g"), timeout=0.05)
            waited = time.perf_counter() - started
            assert waited >= 0.05  # genuinely waited the timeout out
            # A timed-out blocking submit *was* refused: it counts.
            assert queue.stats.rejected == 1
        finally:
            manager.release.set()
            queue.close()

    def test_invalid_sizing_rejected(self):
        with pytest.raises(ConfigurationError):
            ServingQueue(object(), workers=0)
        with pytest.raises(ConfigurationError):
            ServingQueue(object(), max_depth=0)

    def test_invalid_deadline_rejected_at_submission(self):
        manager = _BlockingManager()
        queue = ServingQueue(manager, workers=1, max_depth=2)
        try:
            for bad in (0, -0.5, True, "soon"):
                with pytest.raises(ConfigurationError):
                    queue.submit(
                        ServeRequest(graph="g", deadline_seconds=bad)
                    )
            assert queue.stats.submitted == 0
        finally:
            manager.release.set()
            queue.close()


class TestDeadlines:
    def test_expired_queued_request_is_shed_without_detect(self):
        manager = _BlockingManager()
        queue = ServingQueue(manager, workers=1, max_depth=4)
        try:
            blocker = queue.submit(ServeRequest(graph="g"))
            manager.started.wait(timeout=30)  # worker pinned
            doomed = queue.submit(
                ServeRequest(graph="g", deadline_seconds=0.05)
            )
            time.sleep(0.2)  # the deadline passes while queued
            manager.release.set()
            with pytest.raises(DeadlineExceeded) as excinfo:
                doomed.result(timeout=30)
            assert excinfo.value.deadline_seconds == 0.05
            assert excinfo.value.waited_seconds >= 0.05
            assert blocker.result(timeout=30) is not None
        finally:
            manager.release.set()
            queue.close()
        # Shed means shed: only the blocker's detect ever ran.
        assert manager.calls == 1
        assert queue.stats.expired == 1
        assert queue.stats.completed == 1
        assert queue.stats.failed == 0

    def test_deadline_met_request_completes(self):
        manager = _BlockingManager()
        manager.release.set()
        queue = ServingQueue(manager, workers=1, max_depth=4)
        try:
            future = queue.submit(
                ServeRequest(graph="g", deadline_seconds=30.0)
            )
            assert future.result(timeout=30) is not None
        finally:
            queue.close()
        assert queue.stats.expired == 0
        assert queue.stats.completed == 1

    def test_close_drain_still_sheds_expired_requests(self):
        """A graceful drain must not run detects whose waiters gave up:
        expiry applies on the drain path too."""
        manager = _BlockingManager()
        queue = ServingQueue(manager, workers=1, max_depth=4)
        blocker = queue.submit(ServeRequest(graph="g"))
        manager.started.wait(timeout=30)
        doomed = queue.submit(ServeRequest(graph="g", deadline_seconds=0.05))
        time.sleep(0.2)
        manager.release.set()
        queue.close(drain=True)
        assert blocker.done() and not blocker.cancelled()
        with pytest.raises(DeadlineExceeded):
            doomed.result(timeout=1)
        assert manager.calls == 1


class TestShutdown:
    def test_graceful_drain_completes_accepted_work(self, graph):
        with SessionManager(max_sessions=2) as manager:
            queue = ServingQueue(manager, workers=2, max_depth=16)
            futures = [queue.detect(graph, "oca", seed=s) for s in range(6)]
            queue.close(drain=True)
            assert all(future.done() for future in futures)
            assert queue.stats.completed == 6
            covers = {futures[0].result().cover == f.result().cover for f in futures[:1]}
            assert covers == {True}

    def test_non_drain_close_cancels_pending(self):
        manager = _BlockingManager()
        queue = ServingQueue(manager, workers=1, max_depth=8)
        in_flight = queue.submit(ServeRequest(graph="g"))
        manager.started.wait(timeout=30)
        pending = [queue.submit(ServeRequest(graph="g")) for _ in range(3)]
        manager.release.set()
        queue.close(drain=False)
        assert in_flight.done() and not in_flight.cancelled()
        assert all(future.cancelled() for future in pending)
        assert queue.stats.cancelled == 3

    def test_submit_after_close_raises(self, graph):
        with SessionManager(max_sessions=1) as manager:
            queue = ServingQueue(manager, workers=1, max_depth=4)
            queue.close()
            queue.close()  # idempotent
            with pytest.raises(ServingError, match="closed"):
                queue.detect(graph, "oca", seed=0)

    def test_closed_refusals_are_counted_separately(self, graph):
        """A post-shutdown submit storm is visible in rejected_closed —
        not conflated with full-queue backpressure, not invisible."""
        with SessionManager(max_sessions=1) as manager:
            queue = ServingQueue(manager, workers=1, max_depth=4)
            queue.close()
            for _ in range(3):
                with pytest.raises(ServingError):
                    queue.submit(ServeRequest(graph=graph))
            with pytest.raises(ServingError):
                queue.submit_blocking(ServeRequest(graph=graph))
            assert queue.stats.rejected_closed == 4
            assert queue.stats.rejected == 0  # full-queue signal untouched
            assert queue.stats.submitted == 0

    def test_close_while_blocked_submitter_waits(self):
        """close() must wake a submitter parked on the space condition:
        it raises ServingError instead of hanging forever."""
        manager = _BlockingManager()
        queue = ServingQueue(manager, workers=1, max_depth=1)
        queue.submit(ServeRequest(graph="g"))
        manager.started.wait(timeout=30)
        queue.submit(ServeRequest(graph="g"))  # fills the queue
        outcome = []

        def blocked_submit():
            try:
                queue.submit_blocking(ServeRequest(graph="g"))
                outcome.append("accepted")
            except ServingError:
                outcome.append("refused-closed")

        blocker = threading.Thread(target=blocked_submit)
        blocker.start()
        blocker.join(timeout=0.1)
        assert blocker.is_alive()  # parked, waiting for space
        closer = threading.Thread(target=lambda: queue.close(drain=True))
        closer.start()
        blocker.join(timeout=30)
        assert not blocker.is_alive()
        assert outcome == ["refused-closed"]
        manager.release.set()
        closer.join(timeout=30)
        assert not closer.is_alive()
        assert queue.stats.rejected_closed == 1

    def test_drain_without_close(self, graph):
        with SessionManager(max_sessions=1) as manager:
            with ServingQueue(manager, workers=1, max_depth=8) as queue:
                futures = [queue.detect(graph, "oca", seed=s) for s in range(3)]
                queue.drain()
                assert all(future.done() for future in futures)


class TestConcurrentFidelity:
    def test_queued_covers_match_direct_sessions(self):
        graphs = [ring_of_cliques(3 + index, 4)[0] for index in range(3)]
        expected = []
        for index, graph in enumerate(graphs):
            with GraphSession(graph.copy()) as session:
                expected.append(session.detect("oca", seed=index).cover)

        with SessionManager(max_sessions=3) as manager:
            with ServingQueue(manager, workers=4, max_depth=64) as queue:
                futures = [
                    (index, queue.detect(graphs[index], "oca", seed=index))
                    for _ in range(4)
                    for index in range(len(graphs))
                ]
                for index, future in futures:
                    assert future.result(timeout=60).cover == expected[index]
        assert manager.stats.hits >= len(futures) - len(graphs)


class TestExpiredSplit:
    """``expired`` decomposes into admission pre-shed vs queue-shed."""

    def test_worker_shed_counts_as_queue_stage(self):
        manager = _BlockingManager()
        queue = ServingQueue(manager, workers=1, max_depth=4)
        try:
            blocker = queue.submit(ServeRequest(graph="g"))
            manager.started.wait(timeout=30)
            doomed = queue.submit(
                ServeRequest(graph="g", deadline_seconds=0.05)
            )
            time.sleep(0.2)
            manager.release.set()
            with pytest.raises(DeadlineExceeded):
                doomed.result(timeout=30)
            blocker.result(timeout=30)
        finally:
            manager.release.set()
            queue.close()
        assert queue.stats.expired_queue == 1
        assert queue.stats.expired_admission == 0
        assert queue.stats.expired == 1

    def test_note_admission_expired_counts_as_admission_stage(self):
        manager = _BlockingManager()
        manager.release.set()
        queue = ServingQueue(manager, workers=1, max_depth=4)
        try:
            queue.note_admission_expired()
            queue.note_admission_expired()
        finally:
            queue.close()
        assert queue.stats.expired_admission == 2
        assert queue.stats.expired_queue == 0
        # Back-compat: the pre-split aggregate is the sum of both stages.
        assert queue.stats.expired == 2

    def test_stages_render_as_one_labeled_series(self):
        manager = _BlockingManager()
        manager.release.set()
        queue = ServingQueue(manager, workers=1, max_depth=4)
        try:
            queue.note_admission_expired()
        finally:
            queue.close()
        text = queue.registry.render()
        assert 'repro_queue_expired_total{stage="admission"} 1' in text
        assert 'repro_queue_expired_total{stage="queue"} 0' in text
