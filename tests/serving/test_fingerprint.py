"""Fingerprint stability: content in, construction order out.

The serving cache key must identify a graph by *what it is* — node
labels, edges, label types — and by nothing else: not construction
order, not endpoint order, not which graph form (mutable or compiled)
carried it in.
"""

import pickle

import pytest

from repro import Graph, compile_graph, graph_fingerprint
from repro.generators import ring_of_cliques


@pytest.fixture()
def graph():
    g, _ = ring_of_cliques(4, 5)
    return g


def _rebuilt(graph, reverse=False, flip_endpoints=False):
    """The same content, constructed differently."""
    edges = list(graph.edges())
    if reverse:
        edges = list(reversed(edges))
    clone = Graph()
    for u, v in edges:
        if flip_endpoints:
            clone.add_edge(v, u)
        else:
            clone.add_edge(u, v)
    for node in graph.nodes():  # isolated nodes, if any
        clone.add_node(node)
    return clone


class TestStability:
    def test_same_object_is_stable(self, graph):
        assert graph_fingerprint(graph) == graph_fingerprint(graph)
        assert len(graph_fingerprint(graph)) == 64  # sha256 hex

    def test_construction_order_does_not_matter(self, graph):
        reversed_twin = _rebuilt(graph, reverse=True)
        flipped_twin = _rebuilt(graph, flip_endpoints=True)
        assert graph_fingerprint(reversed_twin) == graph_fingerprint(graph)
        assert graph_fingerprint(flipped_twin) == graph_fingerprint(graph)

    def test_graph_and_compiled_forms_agree(self, graph):
        compiled = compile_graph(graph)
        assert graph_fingerprint(compiled) == graph_fingerprint(graph)
        # Pickled compiled copies (what workers hold) agree too.
        clone = pickle.loads(pickle.dumps(compiled))
        assert graph_fingerprint(clone) == graph_fingerprint(graph)

    def test_cached_on_the_compiled_form(self, graph):
        compiled = compile_graph(graph)
        first = graph_fingerprint(compiled)
        assert compiled._fingerprint == first
        assert graph_fingerprint(compiled) is first  # cache hit, same str

    def test_mutation_changes_the_fingerprint(self, graph):
        before = graph_fingerprint(graph)
        graph.add_edge(0, 12)
        after = graph_fingerprint(graph)
        assert after != before
        graph.remove_edge(0, 12)
        assert graph_fingerprint(graph) == before  # content round-trip


class TestSensitivity:
    def test_different_structure_differs(self, graph):
        other, _ = ring_of_cliques(5, 4)
        assert graph_fingerprint(other) != graph_fingerprint(graph)

    def test_label_values_matter(self, graph):
        shifted = Graph()
        for u, v in graph.edges():
            shifted.add_edge(u + 1, v + 1)
        assert graph_fingerprint(shifted) != graph_fingerprint(graph)

    def test_label_type_matters(self, graph):
        as_str = Graph()
        for u, v in graph.edges():
            as_str.add_edge(str(u), str(v))
        assert graph_fingerprint(as_str) != graph_fingerprint(graph)

    def test_bool_labels_are_not_int_labels(self):
        as_int = Graph()
        as_int.add_edge(0, 1)
        as_bool = Graph()
        as_bool.add_edge(False, True)
        assert graph_fingerprint(as_bool) != graph_fingerprint(as_int)

    def test_isolated_nodes_matter(self, graph):
        with_isolate = _rebuilt(graph)
        with_isolate.add_node(999)
        assert graph_fingerprint(with_isolate) != graph_fingerprint(graph)
