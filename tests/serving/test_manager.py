"""SessionManager: LRU determinism, accounting, and serving fidelity."""

import threading

import pytest

from repro import GraphSession, SessionManager, graph_fingerprint
from repro.errors import ConfigurationError, ServingError
from repro.generators import ring_of_cliques


def make_graphs(count=4, size=4):
    """Distinct small graphs (different clique counts)."""
    return [ring_of_cliques(3 + index, size)[0] for index in range(count)]


@pytest.fixture()
def graphs():
    return make_graphs()


class TestLRU:
    def test_hit_miss_accounting(self, graphs):
        with SessionManager(max_sessions=4) as manager:
            manager.detect(graphs[0], "oca", seed=0)
            manager.detect(graphs[0], "oca", seed=1)
            manager.detect(graphs[1], "oca", seed=0)
            stats = manager.stats
            assert (stats.misses, stats.hits) == (2, 1)
            assert stats.hit_rate == pytest.approx(1 / 3)
            assert stats.detect_calls == 3
            assert stats.detect_seconds > 0.0

    def test_eviction_order_is_strict_lru(self, graphs):
        fingerprints = [graph_fingerprint(g) for g in graphs]
        with SessionManager(max_sessions=2) as manager:
            manager.detect(graphs[0], "oca", seed=0)
            manager.detect(graphs[1], "oca", seed=0)
            # Refresh 0: now 1 is the least recently used.
            manager.detect(graphs[0], "oca", seed=1)
            manager.detect(graphs[2], "oca", seed=0)  # evicts 1, not 0
            assert manager.fingerprints() == [fingerprints[0], fingerprints[2]]
            manager.detect(graphs[3], "oca", seed=0)  # evicts 0
            assert manager.fingerprints() == [fingerprints[2], fingerprints[3]]
            assert manager.stats.evictions == 2

    def test_eviction_closes_the_session(self, graphs):
        with SessionManager(max_sessions=1) as manager:
            first = manager.session(graphs[0])
            manager.detect(graphs[1], "oca", seed=0)
            assert first.closed
            assert len(manager) == 1

    def test_eviction_is_deterministic_across_replays(self, graphs):
        requests = [0, 1, 0, 2, 3, 2, 1]

        def replay():
            with SessionManager(max_sessions=2) as manager:
                for index in requests:
                    manager.detect(graphs[index], "oca", seed=index)
                return manager.fingerprints(), manager.stats.evictions

        assert replay() == replay()

    def test_evicted_graph_rebinds_on_next_request(self, graphs):
        with SessionManager(max_sessions=1) as manager:
            before = manager.detect(graphs[0], "oca", seed=3)
            manager.detect(graphs[1], "oca", seed=0)
            again = manager.detect(graphs[0], "oca", seed=3)
            assert again.stats["session_hit"] is False
            assert again.cover == before.cover

    def test_manual_evict(self, graphs):
        with SessionManager(max_sessions=4) as manager:
            manager.detect(graphs[0], "oca", seed=0)
            fingerprint = graph_fingerprint(graphs[0])
            assert manager.evict(fingerprint) is True
            assert manager.evict(fingerprint) is False
            assert fingerprint not in manager


class TestMemoryBudget:
    def test_memory_budget_evicts_lru(self, graphs):
        one_session = GraphSession(graphs[0])
        footprint = one_session.memory_bytes()
        one_session.close()
        # Room for roughly two small sessions, not four.
        with SessionManager(
            max_sessions=10, max_memory_bytes=int(footprint * 2.5)
        ) as manager:
            for graph in graphs:
                manager.detect(graph, "oca", seed=0)
            assert manager.stats.evictions >= 1
            assert manager.memory_bytes() <= int(footprint * 2.5) * 2
            assert len(manager) < len(graphs)

    def test_last_session_never_evicted_by_memory(self, graphs):
        with SessionManager(max_sessions=10, max_memory_bytes=1) as manager:
            result = manager.detect(graphs[0], "oca", seed=0)
            assert len(result.cover) >= 1
            assert len(manager) == 1  # over budget, but still serving

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ConfigurationError):
            SessionManager(max_sessions=0)
        with pytest.raises(ConfigurationError):
            SessionManager(max_memory_bytes=0)


class TestServingContract:
    def test_fingerprint_mode_requires_warm_session(self, graphs):
        with SessionManager(max_sessions=2) as manager:
            with pytest.raises(ServingError, match="no warm session"):
                manager.detect("0" * 64, "oca", seed=0)
            manager.detect(graphs[0], "oca", seed=0)
            served = manager.detect(graph_fingerprint(graphs[0]), "oca", seed=0)
            assert served.stats["session_hit"] is True

    def test_closed_manager_refuses_requests(self, graphs):
        manager = SessionManager(max_sessions=2)
        manager.detect(graphs[0], "oca", seed=0)
        manager.close()
        manager.close()  # idempotent
        assert manager.closed
        with pytest.raises(ServingError, match="closed"):
            manager.detect(graphs[0], "oca", seed=0)

    def test_out_of_band_close_is_revived_by_reopen(self, graphs):
        with SessionManager(max_sessions=2) as manager:
            manager.detect(graphs[0], "oca", seed=0)  # warm the caches
            session = manager.session(graphs[0])
            session.close()
            result = manager.detect(graphs[0], "oca", seed=0)
            assert result.stats["session_hit"] is True
            assert manager.stats.reopened == 1
            # The revived session kept its compiled graph + spectral
            # cache; only the pool was rebuilt.
            assert result.stats["c_source"] == "cache"

    def test_session_accessor_refreshes_lru(self, graphs):
        with SessionManager(max_sessions=2) as manager:
            manager.detect(graphs[0], "oca", seed=0)
            manager.detect(graphs[1], "oca", seed=0)
            assert manager.session(graphs[0]) is not None  # refresh 0
            manager.detect(graphs[2], "oca", seed=0)  # evicts 1
            assert graph_fingerprint(graphs[0]) in manager
            assert graph_fingerprint(graphs[1]) not in manager


class TestThreadSafety:
    def test_concurrent_mixed_graph_traffic(self, graphs):
        expected = {}
        for index, graph in enumerate(graphs):
            with GraphSession(graph.copy()) as session:
                expected[index] = session.detect("oca", seed=index).cover

        errors = []
        results = {}

        def client(worker_index):
            try:
                for _ in range(3):
                    for index, graph in enumerate(graphs):
                        result = manager.detect(graph, "oca", seed=index)
                        results[(worker_index, index)] = result.cover
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        with SessionManager(max_sessions=2) as manager:
            threads = [
                threading.Thread(target=client, args=(index,)) for index in range(4)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

        assert not errors
        for (_, index), cover in results.items():
            assert cover == expected[index]
