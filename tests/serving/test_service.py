"""The JSONL front-end: schemas, error isolation, CLI integration."""

import io
import json
import threading
import time

import pytest

from repro import GraphSession, graph_fingerprint
from repro.cli import main
from repro.generators import ring_of_cliques
from repro.graph import write_edge_list
from repro.serving import ServingService, serve_stream


@pytest.fixture()
def graph():
    g, _ = ring_of_cliques(4, 5)
    return g


@pytest.fixture()
def graph_path(graph, tmp_path):
    path = tmp_path / "graph.txt"
    write_edge_list(graph, path)
    return str(path)


def _cover_from_response(response):
    return {frozenset(community) for community in response["communities"]}


def _request_lines(*payloads):
    return io.StringIO("\n".join(json.dumps(payload) for payload in payloads))


class TestBatchMode:
    def test_responses_in_request_order_with_ids(self, graph, graph_path):
        requests = _request_lines(
            {"id": "first", "graph": graph_path, "algorithm": "oca", "seed": 3},
            {"id": "second", "graph": graph_path, "algorithm": "oca", "seed": 3},
            {"id": "third", "graph": graph_path, "algorithm": "cpm"},
        )
        output = io.StringIO()
        summary = serve_stream(requests, output, max_sessions=2)
        responses = [json.loads(line) for line in output.getvalue().splitlines()]
        assert [r["id"] for r in responses] == ["first", "second", "third"]
        assert all(r["ok"] for r in responses)
        assert responses[0]["session_hit"] is False
        assert responses[1]["session_hit"] is True
        assert responses[0]["fingerprint"] == graph_fingerprint(graph)
        assert summary["requests"] == 3 and summary["failed"] == 0
        assert summary["session_hits"] == 2  # second + third share the session
        # Served covers are byte-identical to a direct session detect.
        with GraphSession(graph) as session:
            expected = session.detect("oca", seed=3).cover
        assert _cover_from_response(responses[0]) == {
            frozenset(c) for c in expected
        }
        assert responses[0]["latency_seconds"] >= responses[0]["elapsed_seconds"]

    def test_inline_edges_and_fingerprint_requests(self, graph):
        edges = [[u, v] for u, v in graph.edges()]
        requests = _request_lines(
            {"id": 1, "graph": {"edges": edges}, "seed": 0},
            {"id": 2, "fingerprint": graph_fingerprint(graph), "seed": 0},
        )
        output = io.StringIO()
        # One dispatch worker: the fingerprint request must not race the
        # inline request's session bind (execution order across queue
        # workers is unordered by design — a bare fingerprint only
        # targets sessions that are already warm when it dispatches).
        summary = serve_stream(
            requests, output, max_sessions=2, queue_workers=1
        )
        responses = [json.loads(line) for line in output.getvalue().splitlines()]
        assert all(r["ok"] for r in responses)
        # The inline graph has the same content => same fingerprint =>
        # the bare-fingerprint request hit its warm session.
        assert responses[1]["session_hit"] is True
        assert _cover_from_response(responses[0]) == _cover_from_response(
            responses[1]
        )
        assert summary["ok"] == 2

    def test_failures_are_per_request(self, graph_path):
        requests = io.StringIO(
            "\n".join(
                [
                    json.dumps({"id": "bad-algo", "graph": graph_path,
                                "algorithm": "nope"}),
                    "this is not json",
                    json.dumps({"id": "no-graph"}),
                    json.dumps({"id": "cold-fp", "fingerprint": "0" * 64}),
                    json.dumps({"id": "ok", "graph": graph_path, "seed": 1}),
                ]
            )
        )
        output = io.StringIO()
        summary = serve_stream(requests, output, max_sessions=2)
        responses = [json.loads(line) for line in output.getvalue().splitlines()]
        assert [r["ok"] for r in responses] == [False, False, False, False, True]
        assert "unknown algorithm" in responses[0]["error"]
        assert "malformed JSON" in responses[1]["error"]
        assert "graph" in responses[2]["error"]
        assert "no warm session" in responses[3]["error"]
        # Every failure that could be attributed carries its request id.
        assert [r["id"] for r in responses] == [
            "bad-algo", None, "no-graph", "cold-fp", "ok",
        ]
        assert summary == {**summary, "requests": 5, "ok": 1, "failed": 4}

    def test_non_repro_errors_are_isolated_per_request(self, graph_path, tmp_path):
        """A missing file, a malformed edge, or a params TypeError must
        produce an ok:false response — never abort the batch."""
        requests = _request_lines(
            {"id": "gone", "graph": str(tmp_path / "missing.edges"), "seed": 0},
            {"id": "triple", "graph": {"edges": [[1, 2, 3]]}, "seed": 0},
            {"id": "badparam", "graph": graph_path,
             "params": {"batch_size": "four"}},
            {"id": "fine", "graph": graph_path, "seed": 0},
        )
        output = io.StringIO()
        summary = serve_stream(requests, output, max_sessions=2)
        responses = [json.loads(line) for line in output.getvalue().splitlines()]
        assert [r["id"] for r in responses] == ["gone", "triple", "badparam", "fine"]
        assert [r["ok"] for r in responses] == [False, False, False, True]
        assert all(r["error"] for r in responses[:3])
        assert summary["failed"] == 3 and summary["ok"] == 1

    def test_blank_lines_and_comments_are_skipped(self, graph_path):
        requests = io.StringIO(
            "\n# a comment\n\n"
            + json.dumps({"id": 9, "graph": graph_path, "seed": 2})
            + "\n"
        )
        output = io.StringIO()
        summary = serve_stream(requests, output)
        assert summary["requests"] == 1

    def test_supplied_manager_is_used_even_when_empty(self, graph_path):
        from repro import SessionManager

        # A fresh manager is len()==0 and therefore falsy — it must
        # still be honoured (and left open) by the service.
        with SessionManager(max_sessions=7) as manager:
            with ServingService(manager=manager) as service:
                assert service.manager is manager
                responses = list(
                    service.handle_lines(
                        [json.dumps({"id": 0, "graph": graph_path, "seed": 1})]
                    )
                )
                assert responses[0]["ok"]
            assert not manager.closed  # caller-owned managers stay open
            assert manager.stats.misses == 1

    def test_graph_path_cache_shares_sessions(self, graph_path):
        with ServingService(max_sessions=4) as service:
            requests = [
                json.dumps({"id": i, "graph": graph_path, "seed": i})
                for i in range(4)
            ]
            responses = list(service.handle_lines(requests))
            assert all(r["ok"] for r in responses)
            assert service.manager.stats.misses == 1
            assert service.manager.stats.hits == 3

    def test_rewritten_graph_file_is_reloaded(self, tmp_path):
        import os

        from repro.generators import ring_of_cliques
        from repro.graph import write_edge_list

        path = tmp_path / "mutable.edges"
        first, _ = ring_of_cliques(3, 4)
        write_edge_list(first, path)
        request = json.dumps({"id": 0, "graph": str(path), "seed": 0})
        with ServingService(max_sessions=4) as service:
            before = list(service.handle_lines([request]))[0]
            # Rewrite the file in place with a different graph (and
            # force a distinct mtime for coarse filesystem clocks).
            second, _ = ring_of_cliques(5, 4)
            write_edge_list(second, path)
            os.utime(path, ns=(1, 1))
            after = list(service.handle_lines([request]))[0]
        assert before["ok"] and after["ok"]
        # The stale cache entry must not serve the old graph's cover.
        assert before["fingerprint"] != after["fingerprint"]
        assert after["fingerprint"] == graph_fingerprint(second)


class _GatedManager:
    """Blocks every detect on one gate; returns a result-shaped stub."""

    def __init__(self):
        self.release = threading.Event()
        self.started = threading.Event()
        self.calls = 0

    def detect(self, graph, algorithm, seed=None, **params):
        self.started.set()
        assert self.release.wait(timeout=30)
        self.calls += 1

        class _Result:
            algorithm = "stub"
            cover = [[0]]
            elapsed_seconds = 0.0

            def __init__(self):
                self.stats = {}

        return _Result()


def _stub_line(request_id, seed=0):
    return json.dumps(
        {"id": request_id, "fingerprint": "f" * 64, "seed": seed}
    )


class TestShutdownRaces:
    """ISSUE 5 headline bug: ServingQueue.close() racing an in-flight
    batch used to let submit_blocking's ServingError escape
    handle_lines, aborting the stream and dropping every pending *and
    completed* response."""

    def test_queue_closed_mid_stream_never_raises_out_of_handle_lines(self):
        gate = _GatedManager()
        service = ServingService(manager=gate, queue_workers=1, max_depth=4)

        def lines():
            yield _stub_line("in-flight")
            assert gate.started.wait(timeout=30)  # r0 is being served
            # The race: the queue shuts down under the live stream.
            closer = threading.Thread(
                target=lambda: service.queue.close(drain=True)
            )
            closer.start()
            while not service.queue.closed:
                time.sleep(0.001)
            yield _stub_line("after-close-1")
            yield _stub_line("after-close-2")
            gate.release.set()
            closer.join(timeout=30)

        responses = list(service.handle_lines(lines()))
        # Nothing escaped; every request got its response slot, in order.
        assert [r["id"] for r in responses] == [
            "in-flight", "after-close-1", "after-close-2",
        ]
        # The already-submitted future still flushed as a real result...
        assert responses[0]["ok"] is True
        # ...and the unsubmittable ones are per-request failures.
        assert [r["ok"] for r in responses[1:]] == [False, False]
        assert all("closed" in r["error"] for r in responses[1:])
        assert service.queue.stats.rejected_closed == 2

    def test_non_drain_close_cancels_pending_into_error_responses(self):
        """close(drain=False) with queued work: cancelled requests come
        back as ok:false responses, the in-flight one still completes."""
        gate = _GatedManager()
        service = ServingService(manager=gate, queue_workers=1, max_depth=4)

        def lines():
            yield _stub_line("dispatched")
            assert gate.started.wait(timeout=30)
            yield _stub_line("queued-1")
            yield _stub_line("queued-2")
            closer = threading.Thread(
                target=lambda: service.queue.close(drain=False)
            )
            closer.start()
            while not service.queue.closed:
                time.sleep(0.001)
            gate.release.set()
            closer.join(timeout=30)

        responses = list(service.handle_lines(lines()))
        assert [r["id"] for r in responses] == [
            "dispatched", "queued-1", "queued-2",
        ]
        assert responses[0]["ok"] is True  # in-flight work is never lost
        assert [r["ok"] for r in responses[1:]] == [False, False]
        assert gate.calls == 1  # the cancelled detects never ran
        assert service.queue.stats.cancelled == 2

    def test_submit_after_close_through_service_path(self):
        """A fully closed queue: the stream is all ok:false, no raise."""
        gate = _GatedManager()
        gate.release.set()
        service = ServingService(manager=gate, queue_workers=1, max_depth=4)
        service.queue.close()
        responses = list(
            service.handle_lines([_stub_line(i) for i in range(3)])
        )
        assert [r["ok"] for r in responses] == [False, False, False]
        assert all("closed" in r["error"] for r in responses)
        assert service.queue.stats.rejected_closed == 3
        assert gate.calls == 0

    def test_submit_timeout_becomes_error_response(self):
        """submit_timeout_seconds bounds the stall a full queue causes:
        the starved request fails per-request instead of hanging."""
        gate = _GatedManager()
        service = ServingService(
            manager=gate,
            queue_workers=1,
            max_depth=1,
            submit_timeout_seconds=0.05,
        )
        lines = [_stub_line("served"), _stub_line("fills-queue"),
                 _stub_line("starved")]
        collected = []
        streamer = threading.Thread(
            target=lambda: collected.extend(service.handle_lines(lines))
        )
        streamer.start()
        assert gate.started.wait(timeout=30)
        # "starved" cannot be admitted while the queue stays full; after
        # 0.05s it is refused and the stream moves on.
        time.sleep(0.2)
        gate.release.set()
        streamer.join(timeout=30)
        assert not streamer.is_alive()
        service.close()
        by_id = {r["id"]: r for r in collected}
        assert by_id["served"]["ok"] is True
        assert by_id["fills-queue"]["ok"] is True
        assert by_id["starved"]["ok"] is False
        assert service.queue.stats.rejected == 1


class TestCLI:
    def test_serve_roundtrip_through_files(self, graph, graph_path, tmp_path, capsys):
        requests_path = tmp_path / "requests.jsonl"
        output_path = tmp_path / "responses.jsonl"
        requests_path.write_text(
            "\n".join(
                json.dumps({"id": i, "graph": graph_path, "seed": 5})
                for i in range(3)
            )
        )
        rc = main(
            [
                "serve",
                "--requests", str(requests_path),
                "--output", str(output_path),
                "--max-sessions", "2",
                "--queue-workers", "2",
            ]
        )
        assert rc == 0
        summary_line = capsys.readouterr().err
        assert "served 3 request(s)" in summary_line
        responses = [
            json.loads(line) for line in output_path.read_text().splitlines()
        ]
        assert len(responses) == 3
        with GraphSession(graph) as session:
            expected = {frozenset(c) for c in session.detect("oca", seed=5).cover}
        assert all(_cover_from_response(r) == expected for r in responses)

    def test_serve_nonzero_exit_on_failures(self, graph_path, tmp_path, capsys):
        requests_path = tmp_path / "requests.jsonl"
        requests_path.write_text(
            json.dumps({"id": 0, "graph": graph_path, "algorithm": "nope"})
        )
        rc = main(["serve", "--requests", str(requests_path), "--quiet"])
        assert rc == 1
        out = capsys.readouterr()
        assert json.loads(out.out)["ok"] is False
        assert out.err == ""  # --quiet suppressed the summary
