"""Tests for the multi-graph serving layer (:mod:`repro.serving`)."""
