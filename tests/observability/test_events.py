"""EventLog / SlowRequestLog unit contract: ring, sink, forensics."""

import json
import threading

import pytest

from repro.errors import ConfigurationError
from repro.observability import (
    NULL_EVENT_LOG,
    EventLog,
    MetricsRegistry,
    NullEventLog,
    SlowRequestLog,
)


# ----------------------------------------------------------------------
# Ring buffer
# ----------------------------------------------------------------------
class TestRing:
    def test_emit_stamps_envelope_and_keeps_order(self):
        log = EventLog(capacity=8)
        log.emit("request", request_id="a")
        log.emit("session_evicted", fingerprint="f1")
        events = log.tail()
        assert [e["kind"] for e in events] == ["request", "session_evicted"]
        assert events[0]["seq"] == 1
        assert events[1]["seq"] == 2
        for event in events:
            assert event["ts"] > 0
            assert event["pid"] > 0

    def test_drop_oldest_when_full_and_counts_drops(self):
        log = EventLog(capacity=3)
        for i in range(5):
            log.emit("request", request_id=i)
        events = log.tail()
        assert [e["request_id"] for e in events] == [2, 3, 4]
        assert log.dropped == 2
        assert len(log) == 3

    def test_tail_bounds_and_kind_filter(self):
        log = EventLog(capacity=16)
        for i in range(4):
            log.emit("request", request_id=i)
        log.emit("store_corrupt", fingerprint="f")
        assert len(log.tail(n=2)) == 2
        assert log.tail(n=2)[-1]["kind"] == "store_corrupt"
        only = log.tail(kind="store_corrupt")
        assert len(only) == 1 and only[0]["fingerprint"] == "f"

    def test_tail_returns_copies(self):
        log = EventLog(capacity=4)
        log.emit("request", request_id="a")
        log.tail()[0]["request_id"] = "tampered"
        assert log.tail()[0]["request_id"] == "a"

    def test_capacity_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            EventLog(capacity=0)

    def test_concurrent_emit_is_safe_and_lossless_within_capacity(self):
        log = EventLog(capacity=4096)

        def spin(worker):
            for i in range(200):
                log.emit("request", worker=worker, i=i)

        threads = [
            threading.Thread(target=spin, args=(w,)) for w in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        events = log.tail()
        assert len(events) == 1600
        assert log.dropped == 0
        # seq is globally unique and monotone in emission order.
        seqs = [e["seq"] for e in events]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == 1600


# ----------------------------------------------------------------------
# JSONL sink + rotation
# ----------------------------------------------------------------------
class TestSink:
    def test_sink_writes_one_json_line_per_event(self, tmp_path):
        path = tmp_path / "access.jsonl"
        with EventLog(capacity=8, sink_path=path) as log:
            log.emit("request", request_id="a", status="ok")
            log.emit("server_stop", front_end="http")
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["kind"] == "request"
        assert first["request_id"] == "a"

    def test_rotation_moves_full_file_aside(self, tmp_path):
        path = tmp_path / "access.jsonl"
        with EventLog(capacity=64, sink_path=path,
                      sink_max_bytes=1024) as log:
            for i in range(50):
                log.emit("request", request_id=i, pad="x" * 64)
        rotated = tmp_path / "access.jsonl.1"
        assert rotated.exists()
        assert path.exists()
        # Every line in both files is still valid JSON.
        for f in (rotated, path):
            for line in f.read_text().splitlines():
                json.loads(line)

    def test_sink_max_bytes_requires_sink_path(self):
        with pytest.raises(ConfigurationError):
            EventLog(capacity=8, sink_max_bytes=4096)

    def test_non_serializable_fields_degrade_to_repr(self, tmp_path):
        path = tmp_path / "access.jsonl"
        with EventLog(capacity=8, sink_path=path) as log:
            log.emit("request", payload=object())
        assert "object object" in path.read_text()

    def test_metrics_count_events_and_sink_bytes(self, tmp_path):
        registry = MetricsRegistry()
        path = tmp_path / "access.jsonl"
        with EventLog(capacity=2, sink_path=path, registry=registry) as log:
            for i in range(3):
                log.emit("request", request_id=i)
            log.emit("deadline_shed", stage="queue")
        snap = registry.snapshot()
        assert snap['repro_events_total{kind="request"}'] == 3.0
        assert snap['repro_events_total{kind="deadline_shed"}'] == 1.0
        assert snap["repro_events_dropped_total"] == 2.0
        assert snap["repro_events_sink_bytes_total"] == float(
            path.stat().st_size
        )


# ----------------------------------------------------------------------
# Null twin
# ----------------------------------------------------------------------
class TestNullEventLog:
    def test_null_log_accepts_everything_and_stores_nothing(self):
        NULL_EVENT_LOG.emit("request", request_id="x")
        assert NULL_EVENT_LOG.tail() == []
        assert len(NULL_EVENT_LOG) == 0
        assert NULL_EVENT_LOG.dropped == 0
        NULL_EVENT_LOG.close()  # never raises

    def test_null_log_is_an_event_log(self):
        assert isinstance(NULL_EVENT_LOG, NullEventLog)
        assert isinstance(NULL_EVENT_LOG, EventLog)


# ----------------------------------------------------------------------
# SlowRequestLog
# ----------------------------------------------------------------------
class TestSlowRequestLog:
    def test_disabled_without_threshold(self):
        slow = SlowRequestLog()
        assert not slow.enabled
        assert slow.note(10.0, {"request_id": "a"}) is False
        assert slow.worst() == []

    def test_zero_threshold_captures_everything(self):
        slow = SlowRequestLog(threshold_seconds=0.0)
        assert slow.enabled
        assert slow.note(0.0, {"request_id": "a"})
        assert slow.captured == 1

    def test_keeps_worst_n_sorted_slowest_first(self):
        slow = SlowRequestLog(limit=3, threshold_seconds=0.1)
        for i, latency in enumerate([0.5, 0.2, 0.9, 0.3, 0.7]):
            slow.note(latency, {"request_id": i})
        worst = slow.worst()
        assert [r["latency_seconds"] for r in worst] == [0.9, 0.7, 0.5]
        assert slow.captured == 5

    def test_below_threshold_is_not_captured(self):
        slow = SlowRequestLog(limit=4, threshold_seconds=1.0)
        assert slow.note(0.5, {"request_id": "fast"}) is False
        assert slow.captured == 0

    def test_records_are_copied_and_annotated(self):
        slow = SlowRequestLog(limit=2, threshold_seconds=0.0)
        record = {"request_id": "a"}
        slow.note(0.25, record)
        record["request_id"] = "tampered"
        stored = slow.worst()[0]
        assert stored["request_id"] == "a"
        assert stored["latency_seconds"] == 0.25

    def test_worst_n_bound(self):
        slow = SlowRequestLog(limit=8, threshold_seconds=0.0)
        for i in range(5):
            slow.note(float(i), {"request_id": i})
        assert len(slow.worst(2)) == 2
