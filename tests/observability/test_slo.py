"""SLO unit contract: P² quantiles, spec grammar, budget accounting."""

import math
import random

import pytest

import repro.observability.slo as slo_module
from repro.errors import ConfigurationError
from repro.observability import (
    MetricsRegistry,
    P2Quantile,
    SloTracker,
    parse_slo_spec,
)


# ----------------------------------------------------------------------
# P² streaming quantile
# ----------------------------------------------------------------------
class TestP2Quantile:
    def test_empty_is_nan(self):
        assert math.isnan(P2Quantile(0.99).value())

    def test_exact_below_five_samples(self):
        est = P2Quantile(0.5)
        for x in (3.0, 1.0, 2.0):
            est.observe(x)
        assert est.value() == 2.0

    @pytest.mark.parametrize("q", [0.5, 0.9, 0.99])
    def test_tracks_sorted_list_quantile_on_uniform_stream(self, q):
        rng = random.Random(7)
        est = P2Quantile(q)
        samples = [rng.random() for _ in range(5000)]
        for x in samples:
            est.observe(x)
        samples.sort()
        exact = samples[min(len(samples) - 1, int(q * len(samples)))]
        # P² is an approximation; on U(0,1) with n=5000 it should land
        # well within a few percent of the exact order statistic.
        assert abs(est.value() - exact) < 0.05

    def test_tracks_heavy_tail(self):
        rng = random.Random(11)
        est = P2Quantile(0.99)
        samples = [rng.expovariate(10.0) for _ in range(5000)]
        for x in samples:
            est.observe(x)
        samples.sort()
        exact = samples[int(0.99 * len(samples))]
        assert abs(est.value() - exact) / exact < 0.25

    @pytest.mark.parametrize("q", [0.0, 1.0, -0.1, 1.5])
    def test_quantile_must_be_strictly_inside_unit_interval(self, q):
        with pytest.raises(ConfigurationError):
            P2Quantile(q)


# ----------------------------------------------------------------------
# Spec grammar
# ----------------------------------------------------------------------
class TestParseSloSpec:
    def test_full_grammar(self):
        parsed = parse_slo_spec("p99:0.5s,availability:99.9")
        assert parsed["latency"] == [("p99", 0.99, 0.5)]
        assert parsed["availability"] == 99.9

    def test_unit_suffix_is_optional(self):
        assert parse_slo_spec("p99:0.5")["latency"] == [("p99", 0.99, 0.5)]

    def test_multiple_latency_objectives(self):
        parsed = parse_slo_spec("p50:0.1s,p99.9:2s")
        names = [(name, target) for name, _q, target in parsed["latency"]]
        assert names == [("p50", 0.1), ("p99.9", 2.0)]
        quantiles = [q for _n, q, _t in parsed["latency"]]
        assert quantiles == [pytest.approx(0.5), pytest.approx(0.999)]
        assert parsed["availability"] is None

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "p99",
            "p0:1s",            # quantile of zero
            "p100:1s",          # three digits / quantile of one
            "p99:-1s",
            "p99:fast",
            "availability:101",
            "availability:nope",
            "p99:0.5s,p99:1s",  # duplicate objective
            "latency:0.5s",
        ],
    )
    def test_rejects_bad_grammar(self, bad):
        with pytest.raises(ConfigurationError):
            parse_slo_spec(bad)


# ----------------------------------------------------------------------
# SloTracker
# ----------------------------------------------------------------------
class _FakeTime:
    """Stand-in for the slo module's ``time`` with a settable clock."""

    def __init__(self, start=1000.0):
        self.now = start

    def time(self):
        return self.now


class TestSloTracker:
    def test_quantile_and_availability_accounting(self):
        slo = SloTracker("p50:1s,availability:99.0")
        for _ in range(99):
            slo.observe(0.2, ok=True)
        slo.observe(0.0, ok=False)
        assert slo.quantile("p50") == pytest.approx(0.2, abs=0.05)
        assert slo.window_counts() == (99, 1)
        assert slo.availability_percent() == pytest.approx(99.0)
        # Budget exactly consumed: 1% allowed, 1% observed.
        assert slo.error_budget_remaining() == pytest.approx(0.0, abs=1e-9)

    def test_idle_window_is_fully_available(self):
        slo = SloTracker("availability:99.9")
        assert slo.availability_percent() == 100.0
        assert slo.error_budget_remaining() == 1.0

    def test_window_trims_old_buckets(self, monkeypatch):
        clock = _FakeTime()
        monkeypatch.setattr(slo_module, "time", clock)
        slo = SloTracker("availability:99.0", window_seconds=60.0)
        slo.observe(0.1, ok=False)
        clock.now += 120.0
        slo.observe(0.1, ok=True)
        assert slo.window_counts() == (1, 0)
        assert slo.availability_percent() == 100.0

    def test_summary_flags_violation(self):
        slo = SloTracker("p50:0.1s")
        for _ in range(50):
            slo.observe(5.0, ok=True)
        assert "VIOLATED" in slo.summary()
        ok = SloTracker("p50:10s")
        ok.observe(0.1, ok=True)
        assert "VIOLATED" not in ok.summary()

    def test_errors_do_not_feed_latency_estimators(self):
        slo = SloTracker("p50:1s")
        slo.observe(99.0, ok=False)
        assert math.isnan(slo.quantile("p50"))

    def test_gauges_exported_on_registry(self):
        registry = MetricsRegistry()
        slo = SloTracker("p99:0.5s,availability:99.9", registry=registry)
        for _ in range(20):
            slo.observe(0.01, ok=True)
        snap = registry.snapshot()
        assert snap['repro_slo_latency_target_seconds{objective="p99"}'] \
            == 0.5
        assert snap['repro_slo_latency_seconds{objective="p99"}'] \
            == pytest.approx(0.01, abs=0.05)
        assert snap['repro_slo_latency_within_target{objective="p99"}'] == 1.0
        assert snap["repro_slo_availability_percent"] == 100.0
        assert snap["repro_slo_availability_target_percent"] == 99.9
        assert snap["repro_slo_error_budget_remaining"] == 1.0

    def test_accepts_parsed_spec_dict(self):
        slo = SloTracker(parse_slo_spec("p90:1s"))
        slo.observe(0.5, ok=True)
        assert slo.quantile("p90") == pytest.approx(0.5)

    def test_snapshot_shape(self):
        slo = SloTracker("p99:0.5s,availability:99.9")
        slo.observe(0.1, ok=True)
        snap = slo.snapshot()
        assert snap["availability"]["target_percent"] == 99.9
        assert snap["availability"]["window_ok"] == 1
        p99 = snap["latency"]["p99"]
        assert p99["target_seconds"] == 0.5
        assert p99["within_target"] is True

    def test_window_must_be_at_least_one_second(self):
        with pytest.raises(ConfigurationError):
            SloTracker("p99:0.5s", window_seconds=0.5)
