"""Discrete events reach the shared log from every serving component.

The request event itself is covered by the HTTP/service suites; this
module exercises the *exceptional* vocabulary — evictions, rejections,
deadline sheds, store corruption — each forced deterministically on the
component that emits it, all landing in one :class:`EventLog`.
"""

import threading
import time

import pytest

from repro import (
    GraphStore,
    ServeRequest,
    ServingQueue,
    SessionManager,
    graph_fingerprint,
)
from repro.errors import DeadlineExceeded, QueueFull
from repro.generators import ring_of_cliques
from repro.observability import EventLog


@pytest.fixture()
def log():
    return EventLog(capacity=64)


def _graph(cliques=3):
    g, _ = ring_of_cliques(cliques, 4)
    return g


class _BlockingManager:
    """detect() blocks until released — fills the queue deterministically."""

    def __init__(self):
        self.release = threading.Event()
        self.started = threading.Event()

    def detect(self, graph, algorithm, seed=None, **params):
        self.started.set()
        self.release.wait(timeout=30)

        class _Result:
            stats = {}
            cover = graph

        return _Result()


class TestSessionEvents:
    def test_capacity_eviction_emits_with_fingerprint(self, log):
        first, second = _graph(3), _graph(4)
        with SessionManager(max_sessions=1, events=log) as manager:
            manager.detect(first, "oca", seed=0)
            manager.detect(second, "oca", seed=0)
        evictions = log.tail(kind="session_evicted")
        assert len(evictions) == 1
        assert evictions[0]["reason"] == "capacity"
        assert evictions[0]["fingerprint"] == graph_fingerprint(first)
        assert evictions[0]["served"] == 1

    def test_explicit_eviction_reason(self, log):
        graph = _graph()
        with SessionManager(max_sessions=2, events=log) as manager:
            manager.detect(graph, "oca", seed=0)
            assert manager.evict(graph_fingerprint(graph))
        evictions = log.tail(kind="session_evicted")
        assert len(evictions) == 1
        assert evictions[0]["reason"] == "explicit"

    def test_close_is_event_silent(self, log):
        with SessionManager(max_sessions=2, events=log) as manager:
            manager.detect(_graph(), "oca", seed=0)
        # Teardown is not an eviction: server_stop covers it.
        assert log.tail(kind="session_evicted") == []


class TestQueueEvents:
    def test_full_queue_emits_queue_rejected(self, log):
        manager = _BlockingManager()
        queue = ServingQueue(manager, workers=1, max_depth=1, events=log)
        try:
            queue.submit(ServeRequest(graph="g", client="c1"))
            manager.started.wait(timeout=30)
            queue.submit(ServeRequest(graph="g"))  # fills the queue
            with pytest.raises(QueueFull):
                queue.submit(ServeRequest(graph="g", client="c1"))
        finally:
            manager.release.set()
            queue.close()
        rejected = log.tail(kind="queue_rejected")
        assert len(rejected) == 1
        assert rejected[0]["reason"] == "full"
        assert rejected[0]["client"] == "c1"

    def test_queued_deadline_shed_emits_stage_queue(self, log):
        manager = _BlockingManager()
        queue = ServingQueue(manager, workers=1, max_depth=4, events=log)
        try:
            queue.submit(ServeRequest(graph="g"))
            manager.started.wait(timeout=30)
            doomed = queue.submit(
                ServeRequest(graph="g", deadline_seconds=0.05)
            )
            time.sleep(0.2)  # the deadline passes while queued
            manager.release.set()
            with pytest.raises(DeadlineExceeded):
                doomed.result(timeout=30)
        finally:
            manager.release.set()
            queue.close()
        sheds = log.tail(kind="deadline_shed")
        assert len(sheds) == 1
        assert sheds[0]["stage"] == "queue"
        assert sheds[0]["deadline_seconds"] == 0.05
        assert sheds[0]["waited_seconds"] >= 0.05

    def test_admission_shed_emits_stage_admission(self, log):
        manager = _BlockingManager()
        queue = ServingQueue(manager, workers=1, max_depth=4, events=log)
        try:
            request = ServeRequest(
                graph="g", deadline_seconds=0.01, client="edge"
            )
            queue.note_admission_expired(request)
        finally:
            manager.release.set()
            queue.close()
        sheds = log.tail(kind="deadline_shed")
        assert len(sheds) == 1
        assert sheds[0]["stage"] == "admission"
        assert sheds[0]["client"] == "edge"

    def test_closed_queue_emits_queue_rejected_closed(self, log):
        manager = _BlockingManager()
        queue = ServingQueue(manager, workers=1, max_depth=4, events=log)
        manager.release.set()
        queue.close()
        with pytest.raises(Exception):
            queue.submit(ServeRequest(graph="g"))
        rejected = log.tail(kind="queue_rejected")
        assert len(rejected) == 1
        assert rejected[0]["reason"] == "closed"


class TestStoreEvents:
    def test_corrupt_entry_emits_store_corrupt(self, log, tmp_path):
        graph = _graph()
        store = GraphStore(tmp_path / "store", events=log)
        store.save(graph)
        fingerprint = graph_fingerprint(graph)
        payload = (
            store.root
            / fingerprint[:2]
            / store.manifest(fingerprint)["payload"]
        )
        target = payload / "indices.npy"
        target.write_bytes(target.read_bytes()[:-8])
        with pytest.warns(RuntimeWarning):
            assert store.load(fingerprint) is None
        events = log.tail(kind="store_corrupt")
        assert len(events) == 1
        assert events[0]["fingerprint"] == fingerprint
        assert events[0]["fallback"] == "recompile"
        assert events[0]["reason"]
