"""MetricsRegistry unit contract: instruments, labels, rendering.

The registry is the single source of truth every serving layer
publishes into, so its semantics are pinned tightly: get-or-create
identity, type/label mismatch rejection, thread-safe counting, gauge
callbacks that survive failing owners, cumulative histogram rendering
in the Prometheus text format, and the no-op twin reading all-zero.
"""

import math
import threading

import pytest

from repro.errors import ConfigurationError
from repro.observability import (
    DEFAULT_LATENCY_BUCKETS,
    NULL_REGISTRY,
    MetricsRegistry,
    NullMetricsRegistry,
)


class TestCounters:
    def test_inc_and_value(self):
        registry = MetricsRegistry()
        counter = registry.counter("requests_total", "requests")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_get_or_create_returns_same_family(self):
        registry = MetricsRegistry()
        first = registry.counter("x_total", "x")
        second = registry.counter("x_total", "x")
        assert first is second

    def test_labeled_children_are_independent_series(self):
        registry = MetricsRegistry()
        family = registry.counter(
            "rejects_total", "rejects", labelnames=("reason",)
        )
        family.labels(reason="full").inc(2)
        family.labels(reason="closed").inc()
        assert family.labels(reason="full").value == 2
        assert family.labels(reason="closed").value == 1

    def test_labels_by_position_and_keyword_hit_same_child(self):
        registry = MetricsRegistry()
        family = registry.counter("y_total", "y", labelnames=("kind",))
        family.labels("a").inc()
        family.labels(kind="a").inc()
        assert family.labels("a").value == 2

    def test_unlabeled_access_on_labeled_family_rejected(self):
        registry = MetricsRegistry()
        family = registry.counter("z_total", "z", labelnames=("kind",))
        with pytest.raises(ConfigurationError):
            family.inc()

    def test_concurrent_increments_do_not_lose_counts(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", "c")

        def spin():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=spin) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 8000


class TestRegistryIdentity:
    def test_type_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("thing", "as counter")
        with pytest.raises(ConfigurationError):
            registry.gauge("thing", "as gauge")

    def test_label_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("t_total", "t", labelnames=("a",))
        with pytest.raises(ConfigurationError):
            registry.counter("t_total", "t", labelnames=("b",))

    def test_bad_metric_name_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ConfigurationError):
            registry.counter("bad-name", "hyphens are not allowed")

    def test_registries_are_independent(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("n_total", "n").inc()
        assert b.counter("n_total", "n").value == 0


class TestGauges:
    def test_set_inc_dec(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth", "depth")
        gauge.set(5)
        gauge.inc(2)
        gauge.dec()
        assert gauge.value == 6

    def test_set_max_tracks_high_water(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("peak", "peak")
        gauge.set_max(3)
        gauge.set_max(1)
        assert gauge.value == 3

    def test_callback_backed_reads(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("live", "live")
        box = {"value": 7}
        gauge.set_function(lambda: box["value"])
        assert gauge.value == 7
        box["value"] = 9
        assert gauge.value == 9

    def test_failing_callback_degrades_to_zero(self):
        """A callback racing its component's shutdown must not take
        down a scrape."""
        registry = MetricsRegistry()
        gauge = registry.gauge("racy", "racy")

        def explode():
            raise RuntimeError("owner is gone")

        gauge.set_function(explode)
        assert gauge.value == 0.0
        assert "racy 0" in registry.render()


class TestHistograms:
    def test_observe_sum_count(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat", "lat", buckets=(0.1, 1.0))
        histogram.observe(0.05)
        histogram.observe(0.5)
        histogram.observe(10.0)
        assert histogram.count == 3
        assert histogram.sum == pytest.approx(10.55)

    def test_cumulative_bucket_rendering(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat", "lat", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 10.0):
            histogram.observe(value)
        text = registry.render()
        assert 'lat_bucket{le="0.1"} 1' in text
        assert 'lat_bucket{le="1"} 2' in text
        assert 'lat_bucket{le="+Inf"} 3' in text
        assert "lat_count 3" in text

    def test_inf_bucket_appended_automatically(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", "h", buckets=(1.0,))
        assert histogram.buckets[-1] == math.inf

    def test_non_increasing_buckets_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ConfigurationError):
            registry.histogram("h", "h", buckets=(1.0, 1.0))

    def test_default_buckets_cover_latency_range(self):
        assert DEFAULT_LATENCY_BUCKETS[0] <= 0.001
        assert DEFAULT_LATENCY_BUCKETS[-1] >= 30.0


class TestRendering:
    def test_help_type_and_samples(self):
        registry = MetricsRegistry()
        registry.counter("a_total", "what a counts").inc(3)
        family = registry.counter("b_total", "b", labelnames=("kind",))
        family.labels(kind="x").inc()
        text = registry.render()
        assert "# HELP a_total what a counts" in text
        assert "# TYPE a_total counter" in text
        assert "a_total 3" in text
        assert 'b_total{kind="x"} 1' in text
        assert text.endswith("\n")

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        family = registry.counter("e_total", "e", labelnames=("path",))
        family.labels(path='a"b\\c\nd').inc()
        assert 'path="a\\"b\\\\c\\nd"' in registry.render()

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().render() == ""

    def test_snapshot_flattens_series(self):
        registry = MetricsRegistry()
        registry.counter("a_total", "a").inc(2)
        family = registry.counter("b_total", "b", labelnames=("k",))
        family.labels(k="v").inc()
        registry.histogram("h", "h", buckets=(1.0,)).observe(0.5)
        snapshot = registry.snapshot()
        assert snapshot["a_total"] == 2
        assert snapshot['b_total{k="v"}'] == 1
        assert snapshot["h_count"] == 1
        assert snapshot["h_sum"] == pytest.approx(0.5)


class TestNullRegistry:
    def test_writes_accepted_reads_zero(self):
        registry = NullMetricsRegistry()
        counter = registry.counter("n_total", "n")
        counter.inc(100)
        assert counter.value == 0
        gauge = registry.gauge("g", "g")
        gauge.set(5)
        assert gauge.value == 0
        histogram = registry.histogram("h", "h")
        histogram.observe(1.0)
        assert histogram.count == 0

    def test_labels_and_render_are_inert(self):
        family = NULL_REGISTRY.counter("l_total", "l", labelnames=("k",))
        family.labels(k="x").inc()
        assert NULL_REGISTRY.render() == ""
        assert NULL_REGISTRY.snapshot() == {}


class TestThreadStorm:
    def test_concurrent_render_under_mutation(self):
        """Scrapes must survive a write storm: concurrent render() and
        snapshot() while counters increment, gauges move, histograms
        observe, and *new* label children appear — no exceptions, and
        every successive read of one counter is monotone."""
        registry = MetricsRegistry()
        counter = registry.counter("storm_total", "storm writes")
        labeled = registry.counter(
            "storm_labeled_total", "storm labeled writes",
            labelnames=("worker",),
        )
        gauge = registry.gauge("storm_gauge", "storm gauge")
        histogram = registry.histogram("storm_seconds", "storm latencies")
        stop = threading.Event()
        errors = []

        def write(worker):
            i = 0
            try:
                while not stop.is_set():
                    counter.inc()
                    labeled.labels(worker=f"w{worker}-{i % 50}").inc()
                    gauge.set(i)
                    histogram.observe(i * 1e-4)
                    i += 1
            except Exception as error:  # pragma: no cover - the assertion
                errors.append(error)

        def read():
            last = -1.0
            try:
                for _ in range(200):
                    text = registry.render()
                    assert "storm_total" in text
                    value = registry.snapshot()["storm_total"]
                    assert value >= last, "counter went backwards"
                    last = value
            except Exception as error:  # pragma: no cover - the assertion
                errors.append(error)

        writers = [
            threading.Thread(target=write, args=(w,)) for w in range(4)
        ]
        readers = [threading.Thread(target=read) for _ in range(4)]
        for t in writers + readers:
            t.start()
        for t in readers:
            t.join()
        stop.set()
        for t in writers:
            t.join()
        assert errors == []
        # The final render is well-formed Prometheus text.
        for line in registry.render().splitlines():
            assert line.startswith("#") or " " in line
