"""RequestTrace unit contract: ids, spans, marks, export."""

import json
import os
import threading

from repro.observability import RequestTrace, new_trace, reset_trace_ids


class TestIds:
    def test_ids_are_monotonic_and_pid_prefixed(self):
        reset_trace_ids()
        pid = os.getpid()
        first, second = new_trace(), new_trace()
        assert first.trace_id == f"t-{pid}-000001"
        assert second.trace_id == f"t-{pid}-000002"

    def test_reset_restarts_the_sequence(self):
        reset_trace_ids()
        new_trace()
        reset_trace_ids()
        assert new_trace().trace_id == f"t-{os.getpid()}-000001"

    def test_ids_unique_under_concurrency(self):
        reset_trace_ids()
        seen = []
        lock = threading.Lock()

        def spin():
            for _ in range(200):
                trace = new_trace()
                with lock:
                    seen.append(trace.trace_id)

        threads = [threading.Thread(target=spin) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(seen) == len(set(seen)) == 1600

    def test_explicit_id_respected(self):
        assert RequestTrace(trace_id="t-custom").trace_id == "t-custom"


class TestSpans:
    def test_record_and_read(self):
        trace = new_trace()
        trace.record("detect", 0.25)
        assert trace.spans == {"detect": 0.25}

    def test_span_context_manager_times_the_block(self):
        trace = new_trace()
        with trace.span("parse"):
            pass
        assert "parse" in trace.spans
        assert trace.spans["parse"] >= 0.0

    def test_span_records_even_when_block_raises(self):
        trace = new_trace()
        try:
            with trace.span("parse"):
                raise ValueError("bad line")
        except ValueError:
            pass
        assert "parse" in trace.spans

    def test_last_write_wins(self):
        trace = new_trace()
        trace.record("detect", 1.0)
        trace.record("detect", 2.0)
        assert trace.spans["detect"] == 2.0


class TestExport:
    def test_export_shape(self):
        trace = RequestTrace(trace_id="t-000009")
        trace.record("detect", 0.5)
        trace.mark("session_hit", True)
        exported = trace.export()
        assert exported == {
            "id": "t-000009",
            "spans": {"detect": 0.5},
            "session_hit": True,
        }

    def test_export_is_json_serializable(self):
        trace = new_trace()
        trace.record("queue_wait", 1e-7)
        trace.mark("session_hit", False)
        text = json.dumps(trace.export())
        assert trace.trace_id in text

    def test_export_rounds_span_precision(self):
        trace = new_trace()
        trace.record("detect", 0.123456789123456)
        assert trace.export()["spans"]["detect"] == 0.123456789
