"""Sampling profiler unit contract: capture, collapse, exclusivity."""

import threading
import time

import pytest

from repro.errors import ConfigurationError
from repro.observability import ProfileReport, SamplingProfiler


def _busy_wheel(stop_event):
    """A worker with a recognisable frame to find in the samples."""
    while not stop_event.is_set():
        sum(i * i for i in range(2000))


class TestSamplingProfiler:
    def test_profile_samples_a_busy_thread(self):
        stop = threading.Event()
        worker = threading.Thread(
            target=_busy_wheel, args=(stop,), name="busy-wheel", daemon=True
        )
        worker.start()
        try:
            report = SamplingProfiler(interval_seconds=0.001).profile(0.3)
        finally:
            stop.set()
            worker.join()
        assert report.samples > 0
        assert report.seconds >= 0.3
        text = report.collapsed()
        assert "busy-wheel" in text
        assert "_busy_wheel" in text

    def test_collapsed_lines_are_stack_space_count(self):
        report = SamplingProfiler(interval_seconds=0.002).profile(0.05)
        for line in report.collapsed().splitlines():
            stack, _, count = line.rpartition(" ")
            assert stack  # at least "thread-name"
            assert int(count) >= 1

    def test_collapsed_orders_heaviest_first(self):
        report = ProfileReport(
            stacks={"main;a.py:f": 2, "main;a.py:g": 7, "io;b.py:h": 4},
            samples=13,
            seconds=1.0,
            interval_seconds=0.005,
        )
        counts = [
            int(line.rsplit(" ", 1)[1])
            for line in report.collapsed().splitlines()
        ]
        assert counts == [7, 4, 2]

    def test_empty_report_collapses_to_empty_string(self):
        report = ProfileReport(
            stacks={}, samples=0, seconds=0.0, interval_seconds=0.005
        )
        assert report.collapsed() == ""

    def test_only_one_run_at_a_time(self):
        profiler = SamplingProfiler(interval_seconds=0.005)
        profiler.start()
        try:
            with pytest.raises(RuntimeError):
                profiler.start()
            with pytest.raises(RuntimeError):
                profiler.profile(0.05)
        finally:
            report = profiler.stop()
        assert report.seconds >= 0.0
        # After stop() a fresh run is allowed again.
        profiler.profile(0.02)

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            SamplingProfiler().stop()

    def test_profile_rejects_non_positive_duration(self):
        with pytest.raises(ConfigurationError):
            SamplingProfiler().profile(0.0)

    def test_profiler_excludes_its_own_sampling_thread(self):
        report = SamplingProfiler(interval_seconds=0.001).profile(0.1)
        assert "repro-profiler" not in report.collapsed()
