"""Cross-validation against networkx as an independent oracle.

Our substrate and baselines are implemented from scratch; these tests
replay the same computations through networkx (a mature, unrelated
implementation) on random instances and demand exact agreement.  Any
systematic bug in either the graph structure or an algorithm would have
to be replicated in networkx to pass.
"""

import pytest

networkx = pytest.importorskip("networkx")

from repro.baselines import clique_percolation, greedy_modularity, maximal_cliques
from repro.communities import Partition, modularity
from repro.graph import (
    average_clustering,
    bfs_distances,
    connected_components,
    local_clustering,
    to_networkx,
    triangle_count,
)
from repro.generators import erdos_renyi, karate_club


@pytest.fixture(params=[0, 1, 2], ids=lambda s: f"seed{s}")
def random_pair(request):
    """A repro graph and its networkx twin."""
    graph = erdos_renyi(40, 0.15, seed=request.param)
    return graph, to_networkx(graph)


class TestStructuralAgreement:
    def test_triangles(self, random_pair):
        graph, nx_graph = random_pair
        nx_total = sum(networkx.triangles(nx_graph).values()) // 3
        assert triangle_count(graph) == nx_total

    def test_local_clustering(self, random_pair):
        graph, nx_graph = random_pair
        nx_clustering = networkx.clustering(nx_graph)
        for node in graph.nodes():
            assert local_clustering(graph, node) == pytest.approx(
                nx_clustering[node]
            )

    def test_average_clustering(self, random_pair):
        graph, nx_graph = random_pair
        assert average_clustering(graph) == pytest.approx(
            networkx.average_clustering(nx_graph)
        )

    def test_connected_components(self, random_pair):
        graph, nx_graph = random_pair
        ours = {frozenset(c) for c in connected_components(graph)}
        theirs = {frozenset(c) for c in networkx.connected_components(nx_graph)}
        assert ours == theirs

    def test_bfs_distances(self, random_pair):
        graph, nx_graph = random_pair
        source = next(iter(graph.nodes()))
        assert bfs_distances(graph, source) == dict(
            networkx.single_source_shortest_path_length(nx_graph, source)
        )


class TestCliqueAgreement:
    def test_maximal_cliques(self, random_pair):
        graph, nx_graph = random_pair
        ours = set(maximal_cliques(graph))
        theirs = {frozenset(c) for c in networkx.find_cliques(nx_graph)}
        assert ours == theirs

    def test_k_clique_communities(self, random_pair):
        graph, nx_graph = random_pair
        ours = {frozenset(c) for c in clique_percolation(graph, k=3).cover}
        theirs = {
            frozenset(c)
            for c in networkx.community.k_clique_communities(nx_graph, 3)
        }
        assert ours == theirs

    def test_k4_communities_on_karate(self):
        graph, _ = karate_club()
        nx_graph = to_networkx(graph)
        ours = {frozenset(c) for c in clique_percolation(graph, k=4).cover}
        theirs = {
            frozenset(c)
            for c in networkx.community.k_clique_communities(nx_graph, 4)
        }
        assert ours == theirs


class TestModularityAgreement:
    def test_modularity_value_matches(self, random_pair):
        graph, nx_graph = random_pair
        if graph.number_of_edges() == 0:
            return
        partition = greedy_modularity(graph).partition
        blocks = [set(block) for block in partition]
        assert modularity(graph, Partition(blocks)) == pytest.approx(
            networkx.community.modularity(nx_graph, blocks)
        )

    def test_karate_modularity_competitive(self):
        """Our CNM should land within a small gap of networkx's CNM."""
        graph, _ = karate_club()
        nx_graph = to_networkx(graph)
        ours = greedy_modularity(graph).modularity
        nx_blocks = networkx.community.greedy_modularity_communities(nx_graph)
        theirs = networkx.community.modularity(nx_graph, nx_blocks)
        assert ours >= theirs - 0.05
