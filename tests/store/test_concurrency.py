"""Concurrent writers: same fingerprint, clean race, loadable result.

Two processes saving the same graph race only on the manifest
``os.replace`` (atomic); whichever wins, the committed entry must
validate and load. The loser's payload directory becomes an orphan the
GC sweeps once it is past the in-flight-writer grace period.
"""

import multiprocessing
import time

import pytest

from repro import GraphStore, compile_graph, graph_fingerprint
from repro.generators import ring_of_cliques
from repro.store import store as store_module


def _build_graph():
    g, _ = ring_of_cliques(4, 5)
    return g


def _racing_save(root, barrier, rounds):
    graph = _build_graph()
    compiled = compile_graph(graph)
    compiled.spectral_cache[("admissible_c", 1e-6, 1000)] = 2.5
    store = GraphStore(root)
    barrier.wait(timeout=30)
    for _ in range(rounds):
        assert store.save(compiled) is True


@pytest.mark.parametrize("rounds", [3])
def test_two_processes_saving_the_same_fingerprint_race_cleanly(
    tmp_path, rounds
):
    root = tmp_path / "store"
    ctx = multiprocessing.get_context("spawn")
    barrier = ctx.Barrier(2)
    workers = [
        ctx.Process(target=_racing_save, args=(str(root), barrier, rounds))
        for _ in range(2)
    ]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join(timeout=120)
        assert worker.exitcode == 0

    store = GraphStore(root)
    fingerprint = graph_fingerprint(_build_graph())
    assert store.fingerprints() == [fingerprint]
    loaded = store.load(fingerprint)
    assert loaded is not None
    assert graph_fingerprint(loaded) == fingerprint
    assert loaded.spectral_cache == {("admissible_c", 1e-6, 1000): 2.5}


def test_loser_payloads_are_swept_once_past_the_grace_period(
    tmp_path, monkeypatch
):
    root = tmp_path / "store"
    store = GraphStore(root)
    graph = _build_graph()
    store.save(graph)
    store.save(graph)  # second save orphans the first payload dir
    fingerprint = graph_fingerprint(graph)
    shard = store.root / fingerprint[:2]
    payloads = [p for p in shard.iterdir() if p.is_dir()]
    assert len(payloads) == 2

    store.prune()  # fresh orphan: still inside the grace period
    assert len([p for p in shard.iterdir() if p.is_dir()]) == 2

    monkeypatch.setattr(store_module, "_ORPHAN_GRACE_SECONDS", 0.0)
    time.sleep(0.01)
    store.prune()
    remaining = [p.name for p in shard.iterdir() if p.is_dir()]
    assert remaining == [store.manifest(fingerprint)["payload"]]
    assert store.load(fingerprint) is not None


def test_interleaved_saves_in_one_process_always_stay_loadable(tmp_path):
    """The single-process flavour of last-writer-wins: every save
    commits a complete entry, and a load between any two saves works."""
    store = GraphStore(tmp_path / "store")
    graph = _build_graph()
    fingerprint = graph_fingerprint(graph)
    for _ in range(5):
        assert store.save(graph) is True
        assert store.load(fingerprint) is not None
    assert len(store) == 1
