"""GraphStore unit behaviour: roundtrip, layout, access log, GC."""

import json

import numpy as np
import pytest

from repro import Graph, GraphStore, compile_graph, graph_fingerprint
from repro.errors import ConfigurationError
from repro.generators import ring_of_cliques
from repro.store import STORE_FORMAT_VERSION


@pytest.fixture
def graph():
    g, _ = ring_of_cliques(3, 4)
    return g


@pytest.fixture
def store(tmp_path):
    return GraphStore(tmp_path / "store")


def str_labelled(graph):
    mapping = {node: f"n{node}" for node in graph.nodes()}
    g = Graph(nodes=(mapping[node] for node in graph.nodes()))
    for u, v in graph.edges():
        g.add_edge(mapping[u], mapping[v])
    return g


class TestRoundtrip:
    def test_save_then_load_restores_the_exact_arrays(self, store, graph):
        compiled = compile_graph(graph)
        fingerprint = graph_fingerprint(compiled)
        assert store.save(compiled) is True
        assert fingerprint in store
        loaded = store.load(fingerprint)
        assert loaded is not None
        np.testing.assert_array_equal(loaded.indptr, compiled.indptr)
        np.testing.assert_array_equal(loaded.indices, compiled.indices)
        np.testing.assert_array_equal(loaded.degrees, compiled.degrees)
        assert loaded.indptr.dtype == compiled.indptr.dtype
        assert list(loaded.labels) == list(compiled.labels)
        assert graph_fingerprint(loaded) == fingerprint

    def test_loaded_arrays_are_readonly_memory_maps(self, store, graph):
        store.save(graph)
        loaded = store.load(graph_fingerprint(graph))
        for name in ("indptr", "indices", "degrees"):
            array = getattr(loaded, name)
            assert isinstance(array, np.memmap)
            assert not array.flags.writeable

    def test_spectral_cache_travels_with_the_arrays(self, store, graph):
        compiled = compile_graph(graph)
        key = ("admissible_c", 1e-6, 1000)
        compiled.spectral_cache[key] = 3.25
        store.save(compiled)
        loaded = store.load(graph_fingerprint(compiled))
        assert loaded.spectral_cache == {key: 3.25}

    def test_foreign_spectral_keys_stay_process_local(self, store, graph):
        compiled = compile_graph(graph)
        compiled.spectral_cache[("admissible_c", 1e-6, 1000)] = 2.0
        compiled.spectral_cache["some-future-key"] = object()
        store.save(compiled)
        loaded = store.load(graph_fingerprint(compiled))
        assert loaded.spectral_cache == {("admissible_c", 1e-6, 1000): 2.0}

    def test_str_labels_roundtrip(self, store, graph):
        labelled = str_labelled(graph)
        compiled = compile_graph(labelled)
        store.save(compiled)
        loaded = store.load(graph_fingerprint(compiled))
        assert list(loaded.labels) == list(compiled.labels)
        assert all(isinstance(label, str) for label in loaded.labels)
        assert graph_fingerprint(loaded) == graph_fingerprint(compiled)

    def test_unpersistable_labels_decline_the_save(self, store):
        g = Graph(edges=[((0, 1), (2, 3)), ((2, 3), (4, 5))])
        assert store.save(g) is False
        assert len(store) == 0
        assert store.stats.saves_skipped == 1

    def test_missing_fingerprint_is_a_clean_miss(self, store):
        assert store.load("f" * 64) is None
        assert store.stats.misses == 1
        assert store.stats.corrupt == 0

    def test_resave_overwrites_and_stays_loadable(self, store, graph):
        store.save(graph)
        fingerprint = graph_fingerprint(graph)
        first = store.manifest(fingerprint)["payload"]
        store.save(graph)
        second = store.manifest(fingerprint)["payload"]
        assert first != second  # fresh nonce per save
        assert store.load(fingerprint) is not None
        assert len(store) == 1


class TestLayout:
    def test_manifest_records_the_documented_fields(self, store, graph):
        store.save(graph)
        fingerprint = graph_fingerprint(graph)
        manifest = store.manifest(fingerprint)
        assert manifest["format_version"] == STORE_FORMAT_VERSION
        assert manifest["fingerprint"] == fingerprint
        assert set(manifest["arrays"]) == {"indptr", "indices", "degrees"}
        for spec in manifest["arrays"].values():
            assert {"dtype", "shape", "sha256"} <= set(spec)
        assert manifest["nbytes"] > 0
        assert "checksum" in manifest

    def test_entries_shard_by_fingerprint_prefix(self, store, graph):
        store.save(graph)
        fingerprint = graph_fingerprint(graph)
        shard = store.root / fingerprint[:2]
        assert (shard / f"{fingerprint}.json").is_file()
        payload = store.manifest(fingerprint)["payload"]
        assert (shard / payload / "indptr.npy").is_file()

    def test_total_bytes_matches_the_manifests(self, store, graph):
        store.save(graph)
        fingerprint = graph_fingerprint(graph)
        assert store.total_bytes() == store.entry_bytes(fingerprint)
        assert store.total_bytes() == store.manifest(fingerprint)["nbytes"]


class TestAccessLogAndGC:
    def _save_two(self, store, graph):
        other, _ = ring_of_cliques(4, 5)
        store.save(graph)
        store.save(other)
        return graph_fingerprint(graph), graph_fingerprint(other)

    def test_recent_orders_by_last_access(self, store, graph):
        fp_a, fp_b = self._save_two(store, graph)
        assert store.recent() == [fp_b, fp_a]  # save order
        store.load(fp_a)  # touch refreshes recency
        assert store.recent() == [fp_a, fp_b]
        assert store.recent(limit=1) == [fp_a]

    def test_recent_survives_a_lost_access_log(self, store, graph):
        fp_a, fp_b = self._save_two(store, graph)
        (store.root / "access.json").unlink()
        # Falls back to manifest creation order; both still listed.
        assert set(store.recent()) == {fp_a, fp_b}

    def test_prune_evicts_least_recently_accessed_first(self, store, graph):
        fp_a, fp_b = self._save_two(store, graph)
        store.load(fp_a)
        keep = store.entry_bytes(fp_a)
        reclaimed = store.prune(max_bytes=keep)
        assert reclaimed == store.stats._metrics.pruned_bytes.value
        assert store.fingerprints() == [fp_a]
        assert store.stats.pruned == 1

    def test_prune_to_zero_empties_the_store(self, store, graph):
        self._save_two(store, graph)
        store.prune(max_bytes=0)
        assert len(store) == 0
        assert store.total_bytes() == 0

    def test_budgeted_store_prunes_after_each_save(self, tmp_path, graph):
        small, _ = ring_of_cliques(3, 3)
        compiled = compile_graph(small)
        one_entry = sum(
            getattr(compiled, name).nbytes
            for name in ("indptr", "indices", "degrees")
        )
        store = GraphStore(tmp_path / "budget", max_bytes=one_entry + 16)
        store.save(small)
        store.save(graph)  # bigger graph: small one must go
        assert store.total_bytes() <= one_entry + 16 or len(store) == 1
        assert graph_fingerprint(small) not in store

    def test_remove_is_idempotent(self, store, graph):
        store.save(graph)
        fingerprint = graph_fingerprint(graph)
        assert store.remove(fingerprint) is True
        assert store.remove(fingerprint) is False
        assert fingerprint not in store

    def test_invalid_budgets_are_rejected(self, tmp_path, store):
        with pytest.raises(ConfigurationError):
            GraphStore(tmp_path / "bad", max_bytes=0)
        with pytest.raises(ConfigurationError):
            store.prune(max_bytes=-1)


class TestStats:
    def test_counters_track_the_lifecycle(self, store, graph):
        fingerprint = graph_fingerprint(graph)
        store.load(fingerprint)
        store.save(graph)
        store.load(fingerprint)
        assert store.stats.misses == 1
        assert store.stats.hits == 1
        assert store.stats.saves == 1
        assert store.stats.load_bytes == store.total_bytes()
        assert store.stats.hit_rate == 0.5

    def test_metrics_render_into_the_registry(self, store, graph):
        store.save(graph)
        store.load(graph_fingerprint(graph))
        rendered = store.registry.render()
        assert 'repro_store_requests_total{outcome="hit"} 1' in rendered
        assert "repro_store_saves_total 1" in rendered
        assert "repro_store_entries 1" in rendered

    def test_access_log_is_valid_json(self, store, graph):
        store.save(graph)
        log = json.loads((store.root / "access.json").read_text())
        assert list(log) == [graph_fingerprint(graph)]
