"""Store wired through manager, warmer, service, and CLI stats."""

import io
import json

import pytest

from repro import (
    GraphStore,
    ServingService,
    SessionManager,
    StoreWarmer,
    graph_fingerprint,
)
from repro.errors import ConfigurationError, ServingError
from repro.generators import ring_of_cliques


@pytest.fixture
def graph():
    g, _ = ring_of_cliques(4, 5)
    return g


@pytest.fixture
def other_graph():
    g, _ = ring_of_cliques(5, 4)
    return g


class TestManagerStoreLifecycle:
    def test_session_source_progression(self, tmp_path, graph):
        store = GraphStore(tmp_path / "store")
        with SessionManager(max_sessions=2, store=store) as manager:
            first = manager.detect(graph, "oca", seed=1)
            second = manager.detect(graph, "oca", seed=2)
        assert first.stats["session_source"] == "compiled"
        assert second.stats["session_source"] == "warm"
        store2 = GraphStore(tmp_path / "store")
        with SessionManager(max_sessions=2, store=store2) as manager:
            third = manager.detect(graph, "oca", seed=3)
            fourth = manager.detect(graph, "oca", seed=4)
        assert third.stats["session_source"] == "store"
        assert fourth.stats["session_source"] == "warm"

    def test_eviction_victim_rebinds_from_the_store(
        self, tmp_path, graph, other_graph
    ):
        store = GraphStore(tmp_path / "store")
        with SessionManager(max_sessions=1, store=store) as manager:
            manager.detect(graph, "oca", seed=1)
            manager.detect(other_graph, "oca", seed=1)  # evicts graph
            back = manager.detect(graph, "oca", seed=1)
            assert back.stats["session_source"] == "store"
            assert store.stats.hits == 1

    def test_storeless_manager_behaviour_is_unchanged(self, graph):
        with SessionManager(max_sessions=2) as manager:
            first = manager.detect(graph, "oca", seed=1)
            second = manager.detect(graph, "oca", seed=1)
            assert first.stats["session_source"] == "compiled"
            assert second.stats["session_source"] == "warm"
            with pytest.raises(ServingError):
                manager.warm("f" * 64)

    def test_unknown_fingerprint_still_errors_with_a_store(
        self, tmp_path, graph
    ):
        store = GraphStore(tmp_path / "store")
        with SessionManager(max_sessions=2, store=store) as manager:
            with pytest.raises(ServingError, match="no loadable entry"):
                manager.detect("f" * 64, "oca")

    def test_session_accessor_binds_from_the_store(self, tmp_path, graph):
        store = GraphStore(tmp_path / "store")
        with SessionManager(max_sessions=1, store=store) as manager:
            manager.detect(graph, "oca", seed=1)
            fingerprint = manager.fingerprint(graph)
        with SessionManager(max_sessions=1, store=store) as manager:
            session = manager.session(fingerprint)
            assert session.detect("oca", seed=1) is not None
            assert fingerprint in manager


class TestWarmer:
    def test_warm_binds_most_recent_first_under_a_limit(
        self, tmp_path, graph, other_graph
    ):
        store = GraphStore(tmp_path / "store")
        with SessionManager(max_sessions=2, store=store) as manager:
            manager.detect(graph, "oca", seed=1)
            manager.detect(other_graph, "oca", seed=1)
        fp_old = graph_fingerprint(graph)
        fp_new = graph_fingerprint(other_graph)
        with SessionManager(max_sessions=2, store=store) as manager:
            warmed = StoreWarmer(store, manager, limit=1).warm()
            assert warmed == [fp_new]
            assert manager.fingerprints() == [fp_new]
        with SessionManager(max_sessions=2, store=store) as manager:
            warmed = StoreWarmer(store, manager).warm()
            # Both warmed; LRU order mirrors store recency (MRU last).
            assert warmed == [fp_old, fp_new]
            assert manager.fingerprints() == [fp_old, fp_new]
            assert manager.stats.prewarmed == 2

    def test_warmer_requires_the_managers_store(self, tmp_path, graph):
        store = GraphStore(tmp_path / "a")
        other = GraphStore(tmp_path / "b")
        with SessionManager(max_sessions=1, store=store) as manager:
            with pytest.raises(ServingError):
                StoreWarmer(other, manager)
        with SessionManager(max_sessions=1) as manager:
            with pytest.raises(ServingError):
                StoreWarmer(store, manager)

    def test_warming_skips_unloadable_entries(self, tmp_path, graph):
        store = GraphStore(tmp_path / "store")
        with SessionManager(max_sessions=1, store=store) as manager:
            manager.detect(graph, "oca", seed=1)
            fingerprint = manager.fingerprint(graph)
        (store.root / fingerprint[:2] / f"{fingerprint}.json").unlink()
        with SessionManager(max_sessions=1, store=store) as manager:
            assert StoreWarmer(store, manager).warm() == []
            assert len(manager) == 0


class TestServiceWiring:
    def _request(self, graph):
        return json.dumps(
            {
                "id": "r1",
                "graph": {"edges": [[u, v] for u, v in graph.edges()]},
                "algorithm": "oca",
                "seed": 7,
            }
        )

    def test_store_dir_round_trip_through_the_service(self, tmp_path, graph):
        line = self._request(graph)
        with ServingService(
            max_sessions=2, store_dir=str(tmp_path / "store")
        ) as service:
            first = list(service.handle_lines([line]))[0]
            assert first["ok"] and first["session_source"] == "compiled"
        with ServingService(
            max_sessions=2, store_dir=str(tmp_path / "store")
        ) as service:
            assert service.warmed == [first["fingerprint"]]
            second = list(service.handle_lines([line]))[0]
            assert second["ok"] and second["session_source"] == "store"
            assert second["communities"] == first["communities"]
            summary_stream = io.StringIO()
            summary = service.serve(io.StringIO(""), summary_stream)
            assert summary["store_hits"] == 1
            assert summary["store_bytes"] > 0

    def test_store_warm_zero_disables_prewarming(self, tmp_path, graph):
        line = self._request(graph)
        with ServingService(
            max_sessions=2, store_dir=str(tmp_path / "store")
        ) as service:
            list(service.handle_lines([line]))
        with ServingService(
            max_sessions=2, store_dir=str(tmp_path / "store"), store_warm=0
        ) as service:
            assert service.warmed == []
            assert len(service.manager) == 0
            response = list(service.handle_lines([line]))[0]
            assert response["session_source"] == "store"

    def test_supplied_manager_refuses_store_arguments(self, tmp_path):
        with SessionManager(max_sessions=1) as manager:
            with pytest.raises(ConfigurationError):
                ServingService(
                    manager=manager, store_dir=str(tmp_path / "store")
                )

    def test_store_limit_bytes_reaches_the_store(self, tmp_path):
        with ServingService(
            max_sessions=1,
            store_dir=str(tmp_path / "store"),
            store_limit_bytes=12345,
        ) as service:
            assert service.store.max_bytes == 12345

    def test_storeless_service_omits_store_fields(self, graph):
        with ServingService(max_sessions=1) as service:
            summary = service.serve(
                io.StringIO(self._request(graph) + "\n"), io.StringIO()
            )
            assert "store_hits" not in summary
            assert service.store is None


class TestStatsLine:
    def test_stats_line_includes_store_figures(self, tmp_path, graph):
        from repro.cli import _stats_line

        with ServingService(
            max_sessions=1, store_dir=str(tmp_path / "store")
        ) as service:
            line = json.dumps(
                {"graph": {"edges": [[u, v] for u, v in graph.edges()]}}
            )
            list(service.handle_lines([line]))
            rendered = _stats_line(service)
        assert "store hits=0" in rendered
        assert "misses=1" in rendered.split("store", 1)[1]
        assert "saves=1" in rendered
        assert "bytes=" in rendered

    def test_stats_line_without_a_store_is_unchanged(self):
        from repro.cli import _stats_line

        with ServingService(max_sessions=1) as service:
            rendered = _stats_line(service)
        assert "store hits" not in rendered
        assert rendered.startswith("stats: queue depth=")


def test_http_metrics_expose_store_counters(tmp_path, graph):
    """The registry the store publishes into is the one /metrics
    renders — a store hit is visible to a scraper."""
    store_dir = str(tmp_path / "store")
    line = json.dumps(
        {"graph": {"edges": [[u, v] for u, v in graph.edges()]}}
    )
    with ServingService(max_sessions=1, store_dir=store_dir) as service:
        list(service.handle_lines([line]))
    with ServingService(max_sessions=1, store_dir=store_dir) as service:
        list(service.handle_lines([line]))
        rendered = service.registry.render()
    assert 'repro_store_requests_total{outcome="hit"} 1' in rendered
    assert "repro_store_entries 1" in rendered
    assert "repro_store_load_seconds" in rendered
