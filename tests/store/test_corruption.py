"""Corruption robustness: a damaged entry is never served, only warned.

Every failure mode — truncated array file, flipped payload byte, a
format-version bump, a mangled label table or manifest — must turn into
a *single* ``warnings.warn`` plus a ``None`` from ``load`` (the caller
recompiles), and the bad entry must be overwritten by the next save.
"""

import json

import pytest

from repro import GraphStore, compile_graph, graph_fingerprint
from repro.generators import ring_of_cliques


@pytest.fixture
def graph():
    g, _ = ring_of_cliques(3, 4)
    return g


@pytest.fixture
def store(tmp_path):
    return GraphStore(tmp_path / "store")


@pytest.fixture
def saved(store, graph):
    """A committed entry, returning (fingerprint, payload_dir)."""
    store.save(graph)
    fingerprint = graph_fingerprint(graph)
    payload = store.root / fingerprint[:2] / store.manifest(fingerprint)["payload"]
    return fingerprint, payload


def assert_single_warned_fallback(store, fingerprint):
    """load() -> None with exactly one RuntimeWarning, entry discarded."""
    with pytest.warns(RuntimeWarning) as caught:
        assert store.load(fingerprint) is None
    store_warnings = [
        w for w in caught if "repro graph store" in str(w.message)
    ]
    assert len(store_warnings) == 1
    assert "recompiling" in str(store_warnings[0].message)
    # The manifest is dropped so later loads are clean misses, not
    # repeated warnings.
    assert fingerprint not in store
    assert store.stats.corrupt == 1


class TestTruncatedArray:
    def test_truncated_array_file_falls_back(self, store, saved):
        fingerprint, payload = saved
        target = payload / "indices.npy"
        target.write_bytes(target.read_bytes()[:-8])
        assert_single_warned_fallback(store, fingerprint)

    def test_deleted_array_file_falls_back(self, store, saved):
        fingerprint, payload = saved
        (payload / "degrees.npy").unlink()
        assert_single_warned_fallback(store, fingerprint)


class TestChecksumMismatch:
    def test_flipped_payload_byte_falls_back(self, store, saved):
        fingerprint, payload = saved
        target = payload / "degrees.npy"
        blob = bytearray(target.read_bytes())
        blob[-1] ^= 0xFF  # same size, wrong content
        target.write_bytes(bytes(blob))
        assert_single_warned_fallback(store, fingerprint)

    def test_hand_edited_manifest_checksum_falls_back(self, store, saved):
        fingerprint, _ = saved
        path = store.root / fingerprint[:2] / f"{fingerprint}.json"
        manifest = json.loads(path.read_text())
        manifest["checksum"] = "0" * 64
        path.write_text(json.dumps(manifest))
        assert_single_warned_fallback(store, fingerprint)

    def test_swapped_fingerprint_is_never_served(self, store, graph):
        """A manifest filed under the wrong key must not hand out the
        wrong graph — the fingerprint is part of what is verified."""
        store.save(graph)
        fingerprint = graph_fingerprint(graph)
        other_key = ("0" if fingerprint[0] != "0" else "1") + fingerprint[1:]
        src = store.root / fingerprint[:2] / f"{fingerprint}.json"
        dst = store.root / other_key[:2]
        dst.mkdir(exist_ok=True)
        (dst / f"{other_key}.json").write_text(src.read_text())
        with pytest.warns(RuntimeWarning):
            assert store.load(other_key) is None


class TestFormatVersion:
    def test_version_bump_falls_back(self, store, saved):
        fingerprint, _ = saved
        path = store.root / fingerprint[:2] / f"{fingerprint}.json"
        manifest = json.loads(path.read_text())
        manifest["format_version"] = 999
        path.write_text(json.dumps(manifest))
        assert_single_warned_fallback(store, fingerprint)

    def test_malformed_manifest_json_falls_back(self, store, saved):
        fingerprint, _ = saved
        path = store.root / fingerprint[:2] / f"{fingerprint}.json"
        path.write_text("{not json")
        assert_single_warned_fallback(store, fingerprint)


class TestLabelTable:
    def test_corrupt_label_table_falls_back(self, store):
        base, _ = ring_of_cliques(3, 4)
        from repro import Graph

        mapping = {node: f"n{node}" for node in base.nodes()}
        g = Graph(nodes=(mapping[node] for node in base.nodes()))
        for u, v in base.edges():
            g.add_edge(mapping[u], mapping[v])
        store.save(g)
        fingerprint = graph_fingerprint(g)
        payload = (
            store.root / fingerprint[:2] / store.manifest(fingerprint)["payload"]
        )
        blob = bytearray((payload / "labels.json").read_bytes())
        blob[1] ^= 0x01
        (payload / "labels.json").write_bytes(bytes(blob))
        assert_single_warned_fallback(store, fingerprint)


def test_bad_entry_is_overwritten_by_the_next_save(store, graph):
    store.save(graph)
    fingerprint = graph_fingerprint(graph)
    payload = store.root / fingerprint[:2] / store.manifest(fingerprint)["payload"]
    target = payload / "indptr.npy"
    target.write_bytes(target.read_bytes()[:-4])
    with pytest.warns(RuntimeWarning):
        assert store.load(fingerprint) is None
    # The fallback path: caller recompiles and saves again.
    assert store.save(compile_graph(graph)) is True
    loaded = store.load(fingerprint)
    assert loaded is not None
    assert graph_fingerprint(loaded) == fingerprint
    assert store.stats.hits == 1


def test_manager_falls_back_to_recompile_on_corrupt_entry(tmp_path, graph):
    """End to end: a corrupt store entry costs one warning and a
    recompile, never a failed or wrong detection."""
    from repro import SessionManager

    store = GraphStore(tmp_path / "store")
    with SessionManager(max_sessions=2, store=store) as manager:
        clean = manager.detect(graph, "oca", seed=3)
    fingerprint = graph_fingerprint(graph)
    payload = store.root / fingerprint[:2] / store.manifest(fingerprint)["payload"]
    target = payload / "indices.npy"
    target.write_bytes(target.read_bytes()[:-8])
    store2 = GraphStore(tmp_path / "store")
    with SessionManager(max_sessions=2, store=store2) as manager:
        with pytest.warns(RuntimeWarning):
            result = manager.detect(graph, "oca", seed=3)
        assert result.stats["session_source"] == "compiled"
        assert result.cover == clean.cover
    # The recompile re-saved a good entry.
    assert store2.load(fingerprint) is not None
