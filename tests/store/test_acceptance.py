"""Store acceptance matrix (ISSUE 8).

The persistence contract: covers served from a **store-loaded** graph
are byte-identical to covers from a freshly compiled one, for all four
registered detectors and both int- and str-labelled graphs — and a
store-warm session runs neither the CSR build nor any spectral solve
(the PR 4 monkeypatch guard, extended across a simulated restart).
"""

import pytest

from repro import Graph, GraphSession, GraphStore, SessionManager
from repro.generators import ring_of_cliques

DETECTORS = ("oca", "lfk", "cfinder", "cpm")
SEED = 41


@pytest.fixture(scope="module")
def int_graph():
    g, _ = ring_of_cliques(4, 5)
    return g


@pytest.fixture(scope="module")
def str_graph(int_graph):
    mapping = {node: f"n{node}" for node in int_graph.nodes()}
    g = Graph(nodes=(mapping[node] for node in int_graph.nodes()))
    for u, v in int_graph.edges():
        g.add_edge(mapping[u], mapping[v])
    return g


@pytest.fixture(scope="module", params=["int", "str"])
def graph(request, int_graph, str_graph):
    return int_graph if request.param == "int" else str_graph


@pytest.fixture(scope="module")
def direct(graph):
    """Freshly compiled covers — the persistence layer's ground truth."""
    covers = {}
    with GraphSession(graph) as session:
        for name in DETECTORS:
            result = session.detect(name, seed=SEED)
            covers[name] = (
                result.cover,
                result.raw_cover if name == "oca" else None,
            )
    return covers


@pytest.fixture(scope="module")
def stored(graph, tmp_path_factory):
    """A store holding the graph's compiled artifacts, plus its key."""
    store = GraphStore(tmp_path_factory.mktemp("store"))
    with SessionManager(max_sessions=1, store=store) as manager:
        manager.detect(graph, "oca", seed=SEED)  # compile + solve + save
        fingerprint = manager.fingerprint(graph)
    return store, fingerprint


@pytest.mark.parametrize("name", DETECTORS)
def test_store_loaded_covers_are_byte_identical(stored, direct, name):
    store, fingerprint = stored
    loaded = store.load(fingerprint)
    assert loaded is not None
    with GraphSession(loaded) as session:
        result = session.detect(name, seed=SEED)
    assert result.cover == direct[name][0]
    if name == "oca":
        assert result.raw_cover == direct[name][1]


@pytest.mark.parametrize("name", DETECTORS)
def test_manager_restart_serves_identical_covers_from_the_store(
    stored, direct, name
):
    store, fingerprint = stored
    with SessionManager(max_sessions=1, store=store) as manager:
        result = manager.detect(fingerprint, name, seed=SEED)
    assert result.stats["session_source"] == "store"
    assert result.cover == direct[name][0]


def test_store_warm_sessions_skip_compile_and_spectral_solves(
    int_graph, tmp_path, monkeypatch
):
    """Monkeypatch-proof: binding from the store across a simulated
    restart runs neither ``_build_csr`` nor a spectral solver."""
    store = GraphStore(tmp_path / "store")
    with SessionManager(max_sessions=1, store=store) as manager:
        baseline = manager.detect(int_graph, "oca", seed=SEED)
        fingerprint = manager.fingerprint(int_graph)

    def no_compile(*args, **kwargs):
        raise AssertionError("_build_csr ran on a store-warm session")

    def no_power_method(*args, **kwargs):
        raise AssertionError("power method ran on a store-warm session")

    def no_lanczos(*args, **kwargs):
        raise AssertionError("eigsh ran on a store-warm session")

    monkeypatch.setattr("repro.graph.csr._build_csr", no_compile)
    monkeypatch.setattr("repro.core.spectral.power_method", no_power_method)
    monkeypatch.setattr("scipy.sparse.linalg.eigsh", no_lanczos)

    # Fresh manager over the same store directory: the restart. The
    # request targets the bare fingerprint, so nothing can recompile.
    store2 = GraphStore(tmp_path / "store")
    with SessionManager(max_sessions=1, store=store2) as manager:
        result = manager.detect(fingerprint, "oca", seed=SEED)
        assert result.stats["session_source"] == "store"
        assert result.stats["c_source"] == "cache"
        assert result.cover == baseline.cover
        # Second request on the now-resident session is plain warm.
        again = manager.detect(fingerprint, "oca", seed=SEED)
        assert again.stats["session_source"] == "warm"
        assert again.cover == baseline.cover


def test_prewarmed_manager_first_request_is_store_sourced(
    int_graph, tmp_path
):
    from repro import StoreWarmer

    store = GraphStore(tmp_path / "store")
    with SessionManager(max_sessions=2, store=store) as manager:
        baseline = manager.detect(int_graph, "oca", seed=SEED)
        fingerprint = manager.fingerprint(int_graph)

    store2 = GraphStore(tmp_path / "store")
    with SessionManager(max_sessions=2, store=store2) as manager:
        warmed = StoreWarmer(store2, manager).warm()
        assert warmed == [fingerprint]
        assert manager.stats.prewarmed == 1
        result = manager.detect(fingerprint, "oca", seed=SEED)
        # Bound before the request, but the *first* serve still reports
        # where the session came from — the CI restart-smoke contract.
        assert result.stats["session_hit"] is True
        assert result.stats["session_source"] == "store"
        assert result.cover == baseline.cover
