"""Unit tests for halting criteria."""

import pytest

from repro.core import (
    CoverageHalting,
    MaxRunsHalting,
    RunStatistics,
    StagnationHalting,
    make_halting,
)
from repro.errors import ConfigurationError


def stats(runs=0, communities=0, covered=0.0, duplicates=0):
    return RunStatistics(
        runs=runs,
        communities=communities,
        covered_fraction=covered,
        consecutive_duplicates=duplicates,
    )


class TestMaxRuns:
    def test_stops_at_budget(self):
        criterion = MaxRunsHalting(max_runs=10)
        assert not criterion.should_stop(stats(runs=9))
        assert criterion.should_stop(stats(runs=10))

    def test_validates(self):
        with pytest.raises(ConfigurationError):
            MaxRunsHalting(max_runs=0)


class TestCoverage:
    def test_stops_at_target(self):
        criterion = CoverageHalting(target_fraction=0.9)
        assert not criterion.should_stop(stats(covered=0.89))
        assert criterion.should_stop(stats(covered=0.9))

    def test_backstop_max_runs(self):
        criterion = CoverageHalting(target_fraction=1.0, max_runs=5)
        assert criterion.should_stop(stats(runs=5, covered=0.1))

    def test_validates_fraction(self):
        with pytest.raises(ConfigurationError):
            CoverageHalting(target_fraction=0.0)
        with pytest.raises(ConfigurationError):
            CoverageHalting(target_fraction=1.5)

    def test_validates_max_runs(self):
        with pytest.raises(ConfigurationError):
            CoverageHalting(max_runs=-1)


class TestStagnation:
    def test_stops_on_patience(self):
        criterion = StagnationHalting(patience=3)
        assert not criterion.should_stop(stats(duplicates=2))
        assert criterion.should_stop(stats(duplicates=3))

    def test_backstop_max_runs(self):
        criterion = StagnationHalting(patience=100, max_runs=7)
        assert criterion.should_stop(stats(runs=7))

    def test_validates(self):
        with pytest.raises(ConfigurationError):
            StagnationHalting(patience=0)
        with pytest.raises(ConfigurationError):
            StagnationHalting(max_runs=0)


class TestTimeBudget:
    def test_stops_after_budget(self):
        import time

        from repro.core import TimeBudgetHalting

        criterion = TimeBudgetHalting(budget_seconds=0.02)
        assert not criterion.should_stop(stats())
        time.sleep(0.03)
        assert criterion.should_stop(stats())

    def test_restart_resets_clock(self):
        import time

        from repro.core import TimeBudgetHalting

        criterion = TimeBudgetHalting(budget_seconds=0.02)
        criterion.should_stop(stats())
        time.sleep(0.03)
        criterion.restart()
        assert not criterion.should_stop(stats())

    def test_max_runs_backstop(self):
        from repro.core import TimeBudgetHalting

        criterion = TimeBudgetHalting(budget_seconds=1000.0, max_runs=3)
        assert criterion.should_stop(stats(runs=3))

    def test_validates(self):
        from repro.core import TimeBudgetHalting

        with pytest.raises(ConfigurationError):
            TimeBudgetHalting(budget_seconds=0.0)
        with pytest.raises(ConfigurationError):
            TimeBudgetHalting(budget_seconds=1.0, max_runs=0)


def test_make_halting():
    from repro.core import TimeBudgetHalting

    assert isinstance(make_halting("max-runs", max_runs=5), MaxRunsHalting)
    assert isinstance(make_halting("coverage"), CoverageHalting)
    assert isinstance(make_halting("stagnation", patience=9), StagnationHalting)
    assert isinstance(
        make_halting("time-budget", budget_seconds=1.0), TimeBudgetHalting
    )


def test_make_halting_unknown():
    with pytest.raises(ValueError):
        make_halting("never")
