"""Unit tests for post-processing (merging + orphan assignment)."""

import pytest

from repro.communities import Cover
from repro.core import assign_orphans, merge_similar, postprocess
from repro.errors import ConfigurationError
from repro.generators import complete_graph, ring_of_cliques
from repro.graph import Graph


class TestMergeSimilar:
    def test_near_duplicates_merge(self):
        cover = Cover([{1, 2, 3, 4, 5}, {1, 2, 3, 4, 6}])
        merged = merge_similar(cover, threshold=0.5)
        assert merged == Cover([{1, 2, 3, 4, 5, 6}])

    def test_dissimilar_survive(self):
        cover = Cover([{1, 2, 3}, {10, 11, 12}])
        assert merge_similar(cover, threshold=0.5) == cover

    def test_cascading_merges_run_to_fixed_point(self):
        # a~b and (a|b)~c even though a!~c.
        a = {1, 2, 3, 4}
        b = {1, 2, 3, 5}
        c = {1, 2, 4, 5, 6}
        merged = merge_similar(Cover([a, b, c]), threshold=0.6)
        assert merged == Cover([a | b | c])

    def test_threshold_one_keeps_everything(self):
        cover = Cover([{1, 2, 3, 4, 5}, {1, 2, 3, 4, 6}])
        assert merge_similar(cover, threshold=1.0) == cover

    def test_threshold_validated(self):
        with pytest.raises(ConfigurationError):
            merge_similar(Cover([{1}]), threshold=0.0)
        with pytest.raises(ConfigurationError):
            merge_similar(Cover([{1}]), threshold=1.1)

    def test_empty_cover(self):
        assert merge_similar(Cover(), threshold=0.5) == Cover()


class TestAssignOrphans:
    def test_orphan_joins_majority_neighbour_community(self):
        g, cover = ring_of_cliques(3, 4)
        g.add_node(99)
        for v in (0, 1, 2):
            g.add_edge(99, v)
        g.add_edge(99, 4)  # one link to another clique
        extended = assign_orphans(g, cover)
        homes = [c for c in extended if 99 in c]
        assert len(homes) == 1
        assert {0, 1, 2}.issubset(homes[0])

    def test_covered_nodes_untouched(self):
        g, cover = ring_of_cliques(3, 4)
        extended = assign_orphans(g, cover)
        assert extended == cover

    def test_chain_of_orphans_resolved_in_waves(self):
        g = complete_graph(3)
        g.add_edge(2, 3)
        g.add_edge(3, 4)
        cover = Cover([{0, 1, 2}])
        extended = assign_orphans(g, cover)
        assert extended.covered_nodes() == {0, 1, 2, 3, 4}

    def test_stranded_component_becomes_community(self):
        g = complete_graph(3)
        g.add_edge(10, 11)
        cover = Cover([{0, 1, 2}])
        extended = assign_orphans(g, cover)
        assert {10, 11} in extended

    def test_isolated_node_becomes_singleton_community(self):
        g = complete_graph(3)
        g.add_node(42)
        extended = assign_orphans(g, Cover([{0, 1, 2}]))
        assert {42} in extended

    def test_every_node_covered_afterwards(self):
        g, cover = ring_of_cliques(4, 5)
        partial = Cover([cover[0], cover[2]])
        extended = assign_orphans(g, partial)
        assert extended.covered_nodes() == set(g.nodes())

    def test_tie_breaks_to_larger_community(self):
        g = Graph(edges=[(0, 1), (2, 3), (2, 4), (9, 0), (9, 2)])
        cover = Cover([{0, 1}, {2, 3, 4}])
        extended = assign_orphans(g, cover)
        homes = [c for c in extended if 9 in c]
        assert len(homes) == 1
        assert {2, 3, 4}.issubset(homes[0])


class TestPostprocessPipeline:
    def test_merge_then_orphans(self):
        g, cover = ring_of_cliques(3, 5)
        partial = Cover([cover[0], set(list(cover[0])[:4]) | {99}])
        g.add_node(99)
        g.add_edge(99, 0)
        result = postprocess(g, partial, merge_threshold=0.5, orphans=True)
        assert result.covered_nodes() == set(g.nodes())

    def test_merge_disabled(self):
        cover = Cover([{1, 2, 3, 4, 5}, {1, 2, 3, 4, 6}])
        g = complete_graph(7)
        result = postprocess(g, cover, merge_threshold=None, orphans=False)
        assert result == cover

    def test_orphans_disabled_by_default(self):
        g = complete_graph(4)
        cover = Cover([{0, 1}])
        result = postprocess(g, cover)
        assert result.covered_nodes() == {0, 1}
