"""Unit and integration tests for the OCA driver."""

import pytest

from repro import OCA, OCAConfig, oca
from repro.communities import theta
from repro.core import MaxRunsHalting, StagnationHalting
from repro.errors import AlgorithmError, ConfigurationError
from repro.generators import (
    complete_graph,
    daisy_graph,
    ring_of_cliques,
    two_cliques_bridged,
)
from repro.graph import Graph


class TestConfig:
    def test_defaults_valid(self):
        config = OCAConfig()
        assert config.halting is not None
        assert 0 <= config.seed_fraction <= 1

    def test_c_validated(self):
        with pytest.raises(ConfigurationError):
            OCAConfig(c=1.0)

    def test_seed_fraction_validated(self):
        with pytest.raises(ConfigurationError):
            OCAConfig(seed_fraction=-0.1)

    def test_min_size_validated(self):
        with pytest.raises(ConfigurationError):
            OCAConfig(min_community_size=0)

    def test_merge_threshold_validated(self):
        with pytest.raises(ConfigurationError):
            OCAConfig(merge_threshold=0.0)

    def test_max_growth_steps_validated(self):
        with pytest.raises(ConfigurationError):
            OCAConfig(max_growth_steps=-5)

    def test_spectral_solver_validated(self):
        with pytest.raises(ConfigurationError):
            OCAConfig(spectral_solver="qr")
        assert OCAConfig(spectral_solver="lanczos").spectral_solver == "lanczos"


class TestDriver:
    def test_empty_graph(self):
        result = oca(Graph(), seed=0)
        assert len(result.cover) == 0
        assert result.runs == 0

    def test_single_clique_found(self):
        result = oca(complete_graph(6), seed=0)
        assert len(result.cover) == 1
        assert set(result.cover[0]) == set(range(6))

    def test_ring_of_cliques_exact(self):
        g, truth = ring_of_cliques(5, 6)
        result = oca(g, seed=0)
        assert theta(truth, result.cover) == pytest.approx(1.0)

    def test_overlapping_cliques_exact(self):
        g, truth = two_cliques_bridged(6, 2)
        result = oca(g, seed=1)
        assert theta(truth, result.cover) == pytest.approx(1.0)
        # The shared nodes must really appear in both communities.
        overlapping = result.cover.overlapping_nodes()
        assert overlapping == {4, 5}

    def test_deterministic_given_seed(self):
        g, _ = ring_of_cliques(4, 5)
        a = oca(g, seed=123)
        b = oca(g, seed=123)
        assert a.cover == b.cover
        assert a.c == pytest.approx(b.c)

    def test_different_seeds_allowed_to_differ(self):
        g = daisy_graph(seed=5).graph
        a = oca(g, seed=1)
        b = oca(g, seed=2)
        # Not asserting inequality (they may coincide); just both valid.
        assert len(a.cover) >= 1 and len(b.cover) >= 1

    def test_fixed_c_skips_spectral(self):
        g, _ = ring_of_cliques(4, 5)
        result = oca(g, seed=0, c=0.25)
        assert result.c == 0.25

    def test_min_community_size_filters(self):
        g = Graph(edges=[(0, 1)])
        result = oca(g, seed=0, min_community_size=3)
        assert len(result.cover) == 0
        assert result.discarded_small >= 1

    def test_max_runs_halting_respected(self):
        g, _ = ring_of_cliques(6, 5)
        config = OCAConfig(halting=MaxRunsHalting(max_runs=2))
        result = OCA(config).run(g, seed=0)
        assert result.runs <= 2

    def test_assign_orphans_covers_graph(self):
        g, _ = ring_of_cliques(4, 5)
        result = oca(g, seed=0, assign_orphans=True)
        assert result.cover.covered_nodes() == set(g.nodes())

    def test_raw_cover_kept_alongside_merged(self):
        g = daisy_graph(seed=3).graph
        result = oca(g, seed=3)
        assert len(result.raw_cover) >= len(result.cover)

    def test_fitness_values_align_with_raw_cover(self):
        g, _ = ring_of_cliques(4, 5)
        result = oca(g, seed=0)
        assert len(result.fitness_values) == len(result.raw_cover)
        assert all(v > 0 for v in result.fitness_values)

    def test_elapsed_seconds_positive(self):
        g, _ = ring_of_cliques(3, 4)
        assert oca(g, seed=0).elapsed_seconds > 0

    def test_config_and_overrides_conflict(self):
        with pytest.raises(AlgorithmError):
            oca(Graph(), config=OCAConfig(), merge_threshold=0.5)

    def test_repr(self):
        g, _ = ring_of_cliques(3, 4)
        assert "OCAResult" in repr(oca(g, seed=0))

    def test_custom_fitness_override(self):
        """Swapping in phi makes the driver engulf whole components —
        the Section-II degeneracy, reachable through configuration."""
        from repro.core import PhiFitness

        g, _ = ring_of_cliques(3, 4)
        config = OCAConfig(fitness=PhiFitness(c=0.3), merge_threshold=None)
        result = OCA(config).run(g, seed=0)
        assert set(result.cover[0]) == set(g.nodes())

    def test_custom_lfk_fitness_through_oca_machinery(self):
        """The LFK objective runs through OCA's seeding/halting stack via
        the generic (non-monotone) growth path."""
        from repro.core import LFKFitness

        g, truth = ring_of_cliques(4, 6)
        config = OCAConfig(fitness=LFKFitness(alpha=1.0))
        result = OCA(config).run(g, seed=0)
        assert theta(truth, result.cover) == pytest.approx(1.0)


class TestQualityBenchmarks:
    """End-to-end quality pins on the paper's benchmark families (small)."""

    def test_daisy_flower_recovered(self):
        instance = daisy_graph(seed=7)
        result = oca(instance.graph, seed=7)
        assert theta(instance.communities, result.cover) >= 0.75

    def test_lfr_low_mixing_recovered(self):
        from repro.generators import LFRParams, lfr_graph

        instance = lfr_graph(LFRParams(n=300, mu=0.2), seed=5)
        result = oca(instance.graph, seed=5, assign_orphans=True)
        assert theta(instance.communities, result.cover) >= 0.8

    def test_karate_club_factions_overlap(self, karate):
        graph, truth = karate
        result = oca(graph, seed=0, assign_orphans=True)
        # Factions are fuzzy; demand better-than-random agreement.
        assert theta(truth, result.cover) >= 0.3
