"""Unit tests for the fitness functions (Section III)."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import (
    DirectedLaplacianFitness,
    LFKFitness,
    PhiFitness,
    directed_laplacian_value,
    phi_value,
)
from repro.errors import ConfigurationError


class TestDirectedLaplacianValue:
    def test_empty_set(self):
        assert directed_laplacian_value(0, 0, 0.5) == 0.0

    def test_singleton_is_one(self):
        assert directed_laplacian_value(1, 0, 0.5) == 1.0

    def test_negative_size_raises(self):
        with pytest.raises(ValueError):
            directed_laplacian_value(-1, 0, 0.5)

    def test_matches_formula(self):
        s, e, c = 5, 7, 0.3
        root = math.sqrt(5 * 4)
        expected = s - root + 2 * c * e * (1 - (s - 2) / root)
        assert directed_laplacian_value(s, e, c) == pytest.approx(expected)

    def test_matches_laplacian_definition(self):
        """L(S) must equal phi(S) - sum_x phi(S \\ {x}) / sqrt(s(s-1)).

        Definition 3 applied to the subset lattice: incoming neighbours of
        S are the s subsets S minus one element; indeg(S) = s, indeg of
        each predecessor is s - 1.
        """
        import itertools
        import random

        from repro.generators import erdos_renyi

        g = erdos_renyi(10, 0.5, seed=3)
        c = 0.25
        rng = random.Random(1)
        nodes = list(g.nodes())
        for size in (2, 4, 6):
            members = set(rng.sample(nodes, size))
            e_in = g.edges_inside(members)
            via_formula = directed_laplacian_value(size, e_in, c)
            predecessors = 0.0
            for x in members:
                sub = members - {x}
                predecessors += phi_value(len(sub), g.edges_inside(sub), c)
            via_definition = phi_value(size, e_in, c) - predecessors / math.sqrt(
                size * (size - 1)
            )
            assert via_formula == pytest.approx(via_definition)

    def test_dense_beats_sparse_at_same_size(self):
        c = 0.3
        assert directed_laplacian_value(6, 15, c) > directed_laplacian_value(6, 5, c)

    def test_nontrivial_maximum_exists(self):
        """Unlike phi, L is not monotone: a clique beats the clique plus a
        pendant vertex."""
        c = 0.3
        clique = directed_laplacian_value(5, 10, c)
        with_pendant = directed_laplacian_value(6, 11, c)
        assert clique > with_pendant


class TestPhiValue:
    def test_independent_set(self):
        assert phi_value(4, 0, 0.5) == 4.0

    def test_monotone_growth(self):
        # Adding any node (even with no edges) increases phi.
        assert phi_value(5, 3, 0.4) < phi_value(6, 3, 0.4)


class TestFitnessClasses:
    def test_directed_laplacian_class_delegates(self):
        fitness = DirectedLaplacianFitness(c=0.3)
        assert fitness.value(4, 5, 99) == pytest.approx(
            directed_laplacian_value(4, 5, 0.3)
        )

    def test_phi_class_delegates(self):
        fitness = PhiFitness(c=0.3)
        assert fitness.value(4, 5, 99) == pytest.approx(phi_value(4, 5, 0.3))

    def test_monotone_flags(self):
        assert DirectedLaplacianFitness(c=0.2).monotone_in_internal_edges
        assert PhiFitness(c=0.2).monotone_in_internal_edges
        assert not LFKFitness().monotone_in_internal_edges

    def test_c_validated(self):
        with pytest.raises(ConfigurationError):
            DirectedLaplacianFitness(c=1.0)
        with pytest.raises(ConfigurationError):
            PhiFitness(c=-0.2)

    def test_lfk_fitness_formula(self):
        fitness = LFKFitness(alpha=1.0)
        # k_in = 6, k_out = volume - k_in = 4 -> 6/10.
        assert fitness.value(3, 3, 10) == pytest.approx(0.6)

    def test_lfk_alpha_validated(self):
        with pytest.raises(ConfigurationError):
            LFKFitness(alpha=0.0)

    def test_lfk_zero_volume(self):
        assert LFKFitness().value(1, 0, 0) == 0.0


@given(
    s=st.integers(min_value=2, max_value=500),
    e=st.integers(min_value=0, max_value=2000),
    c=st.floats(min_value=0.0, max_value=0.999),
)
def test_laplacian_monotone_in_internal_edges(s, e, c):
    """The coefficient of E_in is positive for every s >= 2 — the property
    the bucket-queue fast path relies on."""
    assert directed_laplacian_value(s, e + 1, c) >= directed_laplacian_value(s, e, c)


@given(
    s=st.integers(min_value=1, max_value=500),
    c=st.floats(min_value=0.001, max_value=0.999),
)
def test_laplacian_of_independent_sets_decreasing_then_stable(s, c):
    """With no internal edges, growing the set never helps: L(s) = s -
    sqrt(s(s-1)) is decreasing, so independent sets collapse to single
    nodes (the greedy removes members)."""
    assert directed_laplacian_value(s + 1, 0, c) <= directed_laplacian_value(s, 0, c)
