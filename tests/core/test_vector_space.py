"""Unit tests for the virtual vector representation (Section II)."""

import numpy as np
import pytest

from repro.core import MAX_C_MARGIN, VirtualVectorRepresentation, admissible_c, phi
from repro.errors import ConfigurationError
from repro.graph import Graph
from repro.generators import complete_graph, cycle_graph, erdos_renyi, star_graph


class TestAdmissibleC:
    def test_complete_graph_clamps_below_one(self):
        # lambda_min(K_n) = -1 would give c = 1; Definition 1 needs c < 1.
        c = admissible_c(complete_graph(5), seed=0)
        assert c == pytest.approx(1.0 - MAX_C_MARGIN)
        assert c < 1.0

    def test_star_graph(self):
        # lambda_min = -3 -> c = 1/3.
        assert admissible_c(star_graph(9), seed=0) == pytest.approx(1 / 3, abs=1e-6)

    def test_even_cycle(self):
        # lambda_min = -2 -> c = 1/2.
        assert admissible_c(cycle_graph(6), seed=0) == pytest.approx(0.5, abs=1e-5)

    def test_edgeless_graph(self):
        assert admissible_c(Graph(nodes=range(3))) == 0.0

    def test_gram_matrix_psd_at_admissible_c(self):
        g = erdos_renyi(20, 0.3, seed=1)
        representation = VirtualVectorRepresentation(g, seed=0)
        eigenvalues = np.linalg.eigvalsh(representation.gram_matrix())
        assert eigenvalues.min() >= -1e-6


class TestPhi:
    def test_independent_set_phi_is_size(self, square):
        # Example 2: independent subsets have phi(S) = |S|.
        c = admissible_c(square, seed=0)
        assert phi(square, {0, 2}, c) == pytest.approx(2.0)

    def test_clique_phi_quadratic(self):
        # Example 2: phi(K_k subset) = c k^2 + (1-c) k.
        g = complete_graph(6)
        c = admissible_c(g, seed=0)
        k = 4
        assert phi(g, {0, 1, 2, 3}, c) == pytest.approx(c * k * k + (1 - c) * k)

    def test_phi_monotone_in_subset_order(self, k5):
        # Section II: phi always grows when the subset increases.
        c = admissible_c(k5, seed=0)
        assert phi(k5, {0, 1}, c) < phi(k5, {0, 1, 2}, c)

    def test_phi_validates_c(self, k5):
        with pytest.raises(ConfigurationError):
            phi(k5, {0}, 1.5)


class TestExplicitVectors:
    """The closed form phi(S) = s + 2 c E_in(S) must equal the honest
    squared length of the summed materialised vectors."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_phi_matches_explicit_sum(self, seed):
        g = erdos_renyi(12, 0.4, seed=seed)
        representation = VirtualVectorRepresentation(g, seed=0)
        import random

        rng = random.Random(seed)
        nodes = list(g.nodes())
        for size in (1, 3, 6, len(nodes)):
            members = set(rng.sample(nodes, size))
            assert representation.phi(members) == pytest.approx(
                representation.phi_explicit(members), abs=1e-6
            )

    def test_vectors_are_unit_length(self):
        g = cycle_graph(6)
        representation = VirtualVectorRepresentation(g, seed=0)
        vectors = representation.explicit_vectors()
        norms = np.linalg.norm(vectors, axis=1)
        assert np.allclose(norms, 1.0, atol=1e-6)

    def test_inner_products_match_definition_1(self):
        g = cycle_graph(6)
        representation = VirtualVectorRepresentation(g, seed=0)
        vectors = representation.explicit_vectors()
        index = g.node_index()
        for u in g.nodes():
            for v in g.nodes():
                if u == v:
                    continue
                expected = representation.c if g.has_edge(u, v) else 0.0
                actual = float(vectors[index[u]] @ vectors[index[v]])
                assert actual == pytest.approx(expected, abs=1e-6)

    def test_gram_entry(self, triangle):
        representation = VirtualVectorRepresentation(triangle, c=0.3)
        assert representation.gram_entry(0, 0) == 1.0
        assert representation.gram_entry(0, 1) == 0.3

    def test_explicit_c_validated(self, triangle):
        with pytest.raises(ConfigurationError):
            VirtualVectorRepresentation(triangle, c=-0.1)
