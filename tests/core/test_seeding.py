"""Unit tests for seeding strategies."""

import random

import pytest

from repro.core import (
    DegreeBiasedSeeding,
    RandomSeeding,
    UncoveredFirstSeeding,
    make_seeding,
)
from repro.generators import complete_graph, star_graph
from repro.graph import Graph


def test_random_seeding_returns_graph_nodes(k5):
    strategy = RandomSeeding()
    rng = random.Random(0)
    for _ in range(10):
        assert strategy.next_seed(k5, set(), rng) in k5


def test_random_seeding_empty_graph():
    assert RandomSeeding().next_seed(Graph(), set(), random.Random(0)) is None


def test_degree_biased_prefers_hubs():
    g = star_graph(30)
    strategy = DegreeBiasedSeeding()
    rng = random.Random(0)
    draws = [strategy.next_seed(g, set(), rng) for _ in range(300)]
    centre_fraction = draws.count(0) / len(draws)
    # Centre has degree 30 of total weight 30+1 + 30*(1+1) = 91.
    assert centre_fraction > 0.2


def test_degree_biased_reaches_isolated_nodes():
    g = Graph(edges=[(0, 1)], nodes=[9])
    strategy = DegreeBiasedSeeding()
    rng = random.Random(0)
    draws = {strategy.next_seed(g, set(), rng) for _ in range(200)}
    assert 9 in draws


def test_degree_biased_empty_graph():
    assert DegreeBiasedSeeding().next_seed(Graph(), set(), random.Random(0)) is None


def test_uncovered_first_skips_covered(k5):
    strategy = UncoveredFirstSeeding()
    rng = random.Random(0)
    covered = {0, 1, 2, 3}
    seeds = set()
    while True:
        seed = strategy.next_seed(k5, covered, rng)
        if seed is None:
            break
        seeds.add(seed)
    assert seeds == {4}


def test_uncovered_first_exhausts(k5):
    strategy = UncoveredFirstSeeding()
    rng = random.Random(0)
    seen = []
    while True:
        seed = strategy.next_seed(k5, set(seen), rng)
        if seed is None:
            break
        seen.append(seed)
    assert sorted(seen) == sorted(k5.nodes())


def test_uncovered_first_each_node_at_most_once(k5):
    strategy = UncoveredFirstSeeding()
    rng = random.Random(0)
    seeds = []
    while True:
        seed = strategy.next_seed(k5, set(), rng)
        if seed is None:
            break
        seeds.append(seed)
    assert len(seeds) == len(set(seeds)) == 5


def test_make_seeding_names():
    assert isinstance(make_seeding("random"), RandomSeeding)
    assert isinstance(make_seeding("degree"), DegreeBiasedSeeding)
    assert isinstance(make_seeding("uncovered"), UncoveredFirstSeeding)


def test_make_seeding_unknown():
    with pytest.raises(ValueError):
        make_seeding("mystery")
