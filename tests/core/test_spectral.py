"""Unit tests for the power method against closed-form spectra."""

import math

import numpy as np
import pytest

from repro.core import lambda_max, lambda_min, power_method, adjacency_extreme_eigenvalues
from repro.errors import ConvergenceError
from repro.graph import Graph, adjacency_matrix
from repro.generators import complete_graph, cycle_graph, path_graph, star_graph


class TestPowerMethod:
    def test_diagonal_matrix(self):
        diag = np.diag([3.0, 1.0, -2.0])
        result = power_method(diag.dot, 3, seed=0)
        assert result.eigenvalue == pytest.approx(3.0, abs=1e-6)

    def test_dominant_negative_eigenvalue(self):
        diag = np.diag([-5.0, 1.0, 2.0])
        result = power_method(diag.dot, 3, seed=0)
        assert abs(result.eigenvalue) == pytest.approx(5.0, abs=1e-6)

    def test_zero_matrix(self):
        zero = np.zeros((4, 4))
        result = power_method(zero.dot, 4, seed=0)
        assert result.eigenvalue == pytest.approx(0.0)

    def test_eigenvector_residual_small(self):
        matrix = np.array([[2.0, 1.0], [1.0, 2.0]])
        result = power_method(matrix.dot, 2, seed=0)
        assert result.residual <= 1e-8

    def test_convergence_error_raised(self):
        # Two equal-modulus opposite eigenvalues never converge.
        matrix = np.array([[0.0, 1.0], [1.0, 0.0]])
        with pytest.raises(ConvergenceError):
            power_method(matrix.dot, 2, max_iterations=50, seed=3)

    def test_no_convergence_requirement_returns_best(self):
        matrix = np.array([[0.0, 1.0], [1.0, 0.0]])
        result = power_method(
            matrix.dot, 2, max_iterations=50, seed=3, require_convergence=False
        )
        assert result.iterations == 50

    def test_dimension_validated(self):
        with pytest.raises(ValueError):
            power_method(lambda x: x, 0)


class TestGraphSpectra:
    def test_lambda_max_complete_graph(self):
        # K_n has lambda_max = n - 1.
        assert lambda_max(complete_graph(7), seed=0) == pytest.approx(6.0, abs=1e-6)

    def test_lambda_min_complete_graph(self):
        # K_n has lambda_min = -1.
        assert lambda_min(complete_graph(7), seed=0) == pytest.approx(-1.0, abs=1e-6)

    def test_lambda_min_single_edge(self):
        g = Graph(edges=[(0, 1)])
        assert lambda_min(g, seed=0) == pytest.approx(-1.0, abs=1e-6)

    def test_lambda_max_star(self):
        # Star with l leaves: lambda_max = sqrt(l).
        assert lambda_max(star_graph(9), seed=0) == pytest.approx(3.0, abs=1e-6)

    def test_lambda_min_star(self):
        assert lambda_min(star_graph(9), seed=0) == pytest.approx(-3.0, abs=1e-6)

    def test_lambda_min_even_cycle(self):
        # Even cycles are bipartite: lambda_min = -2.
        assert lambda_min(cycle_graph(8), seed=0) == pytest.approx(-2.0, abs=1e-5)

    def test_lambda_min_path(self):
        # P_n: lambda_min = -2 cos(pi / (n+1)).
        expected = -2 * math.cos(math.pi / 6)
        assert lambda_min(path_graph(5), seed=0) == pytest.approx(expected, abs=1e-6)

    def test_edgeless_graph_spectra(self):
        g = Graph(nodes=range(4))
        assert lambda_max(g) == 0.0
        assert lambda_min(g) == 0.0

    def test_extremes_tuple(self):
        low, high = adjacency_extreme_eigenvalues(complete_graph(5), seed=0)
        assert low == pytest.approx(-1.0, abs=1e-6)
        assert high == pytest.approx(4.0, abs=1e-6)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_dense_eigensolver(self, seed):
        from repro.generators import erdos_renyi

        g = erdos_renyi(24, 0.3, seed=seed)
        if g.number_of_edges() == 0:
            return
        dense = adjacency_matrix(g).toarray()
        eigenvalues = np.linalg.eigvalsh(dense)
        assert lambda_max(g, seed=0) == pytest.approx(eigenvalues[-1], abs=1e-5)
        assert lambda_min(g, seed=0) == pytest.approx(
            min(eigenvalues[0], -1.0), abs=1e-5
        )


class TestLanczos:
    """lambda_min_lanczos: same quantity as lambda_min, different solver."""

    def test_lambda_min_lanczos_complete_graph(self):
        from repro.core import lambda_min_lanczos

        # K_n: lambda_min = -1 exactly (clamped).
        assert lambda_min_lanczos(complete_graph(6), seed=0) == pytest.approx(
            -1.0, abs=1e-6
        )

    def test_lambda_min_lanczos_cycle(self):
        from repro.core import lambda_min_lanczos

        assert lambda_min_lanczos(cycle_graph(8), seed=0) == pytest.approx(
            -2.0, abs=1e-5
        )

    def test_edgeless_and_tiny_graphs(self):
        from repro.core import lambda_min_lanczos

        g = Graph(nodes=range(4))
        assert lambda_min_lanczos(g) == 0.0
        # n < 3 falls back to the power method internally.
        pair = Graph()
        pair.add_edge(0, 1)
        assert lambda_min_lanczos(pair, seed=0) == pytest.approx(-1.0, abs=1e-6)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_dense_eigensolver(self, seed):
        from repro.core import lambda_min_lanczos
        from repro.generators import erdos_renyi

        g = erdos_renyi(24, 0.3, seed=seed)
        if g.number_of_edges() == 0:
            return
        dense = adjacency_matrix(g).toarray()
        eigenvalues = np.linalg.eigvalsh(dense)
        assert lambda_min_lanczos(g, tol=1e-9, seed=0) == pytest.approx(
            min(eigenvalues[0], -1.0), abs=1e-5
        )

    def test_solvers_agree_on_admissible_c(self):
        from repro.core import admissible_c
        from repro.generators import ring_of_cliques

        g, _ = ring_of_cliques(5, 5)
        by_power = admissible_c(g, solver="power")
        by_lanczos = admissible_c(g, solver="lanczos")
        assert by_lanczos == pytest.approx(by_power, abs=1e-4)

    def test_unknown_solver_rejected(self):
        from repro.core import admissible_c
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="solver"):
            admissible_c(complete_graph(4), solver="qr")

    def test_shared_cache_slot_across_solvers(self):
        from repro.core import shared_admissible_c
        from repro.generators import ring_of_cliques

        g, _ = ring_of_cliques(4, 5)
        by_lanczos, hit1 = shared_admissible_c(g, solver="lanczos")
        cached, hit2 = shared_admissible_c(g, solver="power")
        assert (hit1, hit2) == (False, True)
        assert cached == by_lanczos  # one slot, whoever resolved first
