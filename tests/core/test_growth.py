"""Unit tests for the greedy local search (Section IV)."""

import pytest

from repro.core import (
    CommunityState,
    DirectedLaplacianFitness,
    LFKFitness,
    PhiFitness,
    admissible_c,
    grow_community,
)
from repro.errors import AlgorithmError
from repro.generators import (
    complete_graph,
    path_graph,
    ring_of_cliques,
    star_graph,
    two_cliques_bridged,
)
from repro.graph import Graph


def fitness_for(graph):
    return DirectedLaplacianFitness(c=admissible_c(graph, seed=0))


def test_empty_initial_set_rejected(k5):
    with pytest.raises(AlgorithmError):
        grow_community(k5, [], fitness_for(k5))


def test_clique_grows_to_whole_clique(k5):
    result = grow_community(k5, [0], fitness_for(k5))
    assert result.members == frozenset(k5.nodes())
    assert result.converged


def test_ring_clique_found_from_inside():
    g, cover = ring_of_cliques(4, 6)
    result = grow_community(g, [0, 1], fitness_for(g))
    assert result.members == cover[0]


def test_result_is_local_maximum():
    g, cover = ring_of_cliques(4, 6)
    fitness = fitness_for(g)
    result = grow_community(g, [0], fitness)
    state = CommunityState(g, result.members)
    current = state.value(fitness)
    for node in list(state.frontier):
        assert state.value_if_added(node, fitness) <= current + 1e-9
    for node in list(state.members):
        if state.size > 1:
            assert state.value_if_removed(node, fitness) <= current + 1e-9


def test_removals_prune_bad_seed_members():
    g, cover = ring_of_cliques(4, 6)
    # Seed with one clique plus a node from the opposite clique.
    stray = next(iter(cover[2]))
    initial = set(cover[0]) | {stray}
    result = grow_community(g, initial, fitness_for(g))
    assert stray not in result.members
    assert result.removals >= 1


def test_allow_removal_false_never_shrinks(k5):
    initial = {0, 1}
    result = grow_community(k5, initial, fitness_for(k5), allow_removal=False)
    assert initial <= set(result.members)
    assert result.removals == 0


def test_max_steps_budget_respected(k5):
    result = grow_community(k5, [0], fitness_for(k5), max_steps=1)
    assert result.steps <= 1


def test_fitness_value_reported_correctly(k5):
    fitness = fitness_for(k5)
    result = grow_community(k5, [0], fitness)
    state = CommunityState(k5, result.members)
    assert result.fitness_value == pytest.approx(state.value(fitness))


def test_overlapping_cliques_found_separately():
    g, truth = two_cliques_bridged(6, 2)
    fitness = fitness_for(g)
    left = grow_community(g, [0], fitness).members
    right = grow_community(g, [9], fitness).members
    assert left in {frozenset(c) for c in truth}
    assert right in {frozenset(c) for c in truth}
    assert left != right


def test_star_grows_to_whole_star():
    """On a star, each extra leaf adds exactly one internal edge, which
    keeps L creeping upward (verified by hand for c = 1/3): the whole
    star is the unique local maximum reachable from the centre."""
    g = star_graph(8)
    result = grow_community(g, [0], fitness_for(g))
    assert result.members == frozenset(g.nodes())


def test_phi_fitness_degenerates_to_whole_graph():
    """The Section-II observation: phi's only local max is the full graph."""
    g, _ = ring_of_cliques(4, 5)
    c = admissible_c(g, seed=0)
    result = grow_community(g, [0], PhiFitness(c))
    assert result.members == frozenset(g.nodes())


def test_lfk_fitness_usable_via_generic_path():
    g, cover = ring_of_cliques(4, 6)
    result = grow_community(g, [0, 1], LFKFitness(alpha=1.0))
    assert result.members == cover[0]


def test_growth_on_disconnected_component_stays_inside():
    g = Graph(edges=[(0, 1), (1, 2), (0, 2), (10, 11), (11, 12), (10, 12)])
    result = grow_community(g, [0], fitness_for(g))
    assert result.members <= {0, 1, 2}
