"""Property-based tests for the OCA core (hypothesis)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.communities import Cover
from repro.core import (
    CommunityState,
    DirectedLaplacianFitness,
    admissible_c,
    directed_laplacian_value,
    grow_community,
    merge_similar,
    oca,
    phi_value,
)
from repro.graph import Graph

from ..conftest import edge_lists


@given(
    s=st.integers(min_value=1, max_value=200),
    e=st.integers(min_value=0, max_value=1000),
    c=st.floats(min_value=0.0, max_value=0.999),
)
def test_laplacian_matches_lattice_definition_symbolically(s, e, c):
    """L(s, e) = phi(s, e) - [s * phi(s-1) summed with edge corrections] /
    sqrt(s(s-1)): verify against the expanded predecessor sum.

    Sum over x of phi(S \\ {x}) = s(s-1) + 2c(sE - 2E) because each edge
    survives in exactly s - 2 of the s predecessor subsets.
    """
    if s == 1:
        assert directed_laplacian_value(s, 0, c) == 1.0
        return
    predecessors = s * (s - 1) + 2.0 * c * e * (s - 2)
    expected = phi_value(s, e, c) - predecessors / math.sqrt(s * (s - 1))
    assert directed_laplacian_value(s, e, c) == pytest.approx(expected)


@settings(max_examples=30, deadline=None)
@given(edges=edge_lists(max_nodes=10, max_edges=25))
def test_growth_reaches_local_maximum(edges):
    g = Graph(edges=edges)
    if g.number_of_nodes() == 0 or g.number_of_edges() == 0:
        return
    c = admissible_c(g, seed=0)
    fitness = DirectedLaplacianFitness(c)
    source = next(iter(g.nodes()))
    result = grow_community(g, [source], fitness)
    assert result.converged
    state = CommunityState(g, result.members)
    current = state.value(fitness)
    for node in list(state.frontier):
        assert state.value_if_added(node, fitness) <= current + 1e-9
    if state.size > 1:
        for node in list(state.members):
            assert state.value_if_removed(node, fitness) <= current + 1e-9


@settings(max_examples=20, deadline=None)
@given(edges=edge_lists(max_nodes=12, max_edges=30), seed=st.integers(0, 3))
def test_oca_cover_is_wellformed(edges, seed):
    g = Graph(edges=edges)
    result = oca(g, seed=seed)
    covered = result.cover.covered_nodes()
    assert covered <= set(g.nodes())
    for community in result.cover:
        assert len(community) >= 1
    # Raw cover communities are distinct.
    raw = result.raw_cover.communities()
    assert len(raw) == len(set(raw))


@settings(max_examples=20, deadline=None)
@given(edges=edge_lists(max_nodes=12, max_edges=30), seed=st.integers(0, 3))
def test_oca_deterministic_property(edges, seed):
    g = Graph(edges=edges)
    assert oca(g, seed=seed).cover == oca(g, seed=seed).cover


@settings(max_examples=40)
@given(
    communities=st.lists(
        st.sets(st.integers(0, 20), min_size=1, max_size=8),
        min_size=1,
        max_size=6,
    ),
    threshold=st.floats(min_value=0.05, max_value=1.0),
)
def test_merge_similar_fixed_point(communities, threshold):
    """Merging is idempotent and never increases the community count."""
    from repro.communities import rho

    cover = Cover(communities)
    merged = merge_similar(cover, threshold)
    assert len(merged) <= len(cover)
    # Fixed point: no remaining pair is mergeable.
    result = merged.communities()
    for i in range(len(result)):
        for j in range(i + 1, len(result)):
            assert rho(result[i], result[j]) < threshold
    # Idempotence.
    assert merge_similar(merged, threshold) == merged


@settings(max_examples=25, deadline=None)
@given(edges=edge_lists(max_nodes=10, max_edges=25))
def test_admissible_c_always_valid(edges):
    g = Graph(edges=edges)
    if g.number_of_nodes() == 0:
        return
    c = admissible_c(g, seed=0)
    assert 0.0 <= c < 1.0
    if g.number_of_edges() == 0:
        assert c == 0.0
