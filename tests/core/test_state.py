"""Unit and property tests for CommunityState incremental tracking."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DirectedLaplacianFitness
from repro.core.state import BucketQueue, CommunityState
from repro.errors import AlgorithmError, NodeNotFoundError
from repro.generators import complete_graph, erdos_renyi, path_graph

from ..conftest import edge_lists
from repro.graph import Graph


class TestBucketQueue:
    def test_max_queue(self):
        q = BucketQueue(want_max=True)
        q.insert("a", 1)
        q.insert("b", 5)
        q.insert("c", 3)
        assert q.peek() == "b"
        assert q.peek_key() == 5

    def test_min_queue(self):
        q = BucketQueue(want_max=False)
        q.insert("a", 4)
        q.insert("b", 2)
        assert q.peek() == "b"
        assert q.peek_key() == 2

    def test_discard_repairs_extreme(self):
        q = BucketQueue(want_max=True)
        q.insert("a", 1)
        q.insert("b", 9)
        q.discard("b")
        assert q.peek() == "a"

    def test_adjust_moves_keys(self):
        q = BucketQueue(want_max=True)
        q.insert("a", 2)
        q.insert("b", 3)
        q.adjust("a", 5)
        assert q.peek() == "a"
        assert q.key_of("a") == 7

    def test_empty_peek_none(self):
        q = BucketQueue(want_max=True)
        assert q.peek() is None
        assert q.peek_key() is None

    def test_discard_absent_is_noop(self):
        q = BucketQueue(want_max=False)
        q.discard("ghost")
        assert len(q) == 0

    def test_double_insert_raises(self):
        q = BucketQueue(want_max=True)
        q.insert("a", 1)
        with pytest.raises(AlgorithmError):
            q.insert("a", 2)

    def test_contains_and_len(self):
        q = BucketQueue(want_max=True)
        q.insert("a", 1)
        assert "a" in q and "b" not in q
        assert len(q) == 1


class TestCommunityState:
    def test_initial_statistics(self, k5):
        state = CommunityState(k5, [0, 1, 2])
        assert state.size == 3
        assert state.internal_edges == 3
        assert state.volume == 12

    def test_frontier_counts(self, k5):
        state = CommunityState(k5, [0, 1])
        assert state.frontier == {2: 2, 3: 2, 4: 2}

    def test_add_updates_everything(self, k5):
        state = CommunityState(k5, [0])
        state.add(1)
        state.add(2)
        state.verify()
        assert state.internal_edges == 3

    def test_remove_reverses_add(self, k5):
        state = CommunityState(k5, [0, 1, 2])
        state.remove(1)
        state.verify()
        assert state.size == 2
        assert state.internal_edges == 1

    def test_add_member_twice_raises(self, k5):
        state = CommunityState(k5, [0])
        with pytest.raises(AlgorithmError):
            state.add(0)

    def test_remove_non_member_raises(self, k5):
        state = CommunityState(k5, [0])
        with pytest.raises(AlgorithmError):
            state.remove(3)

    def test_add_missing_node_raises(self, k5):
        state = CommunityState(k5, [0])
        with pytest.raises(NodeNotFoundError):
            state.add(99)

    def test_internal_degree_of(self, k5):
        state = CommunityState(k5, [0, 1, 2])
        assert state.internal_degree_of(0) == 2
        with pytest.raises(AlgorithmError):
            state.internal_degree_of(4)

    def test_best_frontier_node(self, path5):
        state = CommunityState(path5, [1, 2])
        # Frontier: 0 (1 link), 3 (1 link); both count 1.
        assert state.best_frontier_node() in {0, 3}

    def test_weakest_member(self):
        g = complete_graph(4)
        g.add_edge(0, 99)  # pendant
        state = CommunityState(g, [0, 1, 2, 99])
        assert state.weakest_member() == 99

    def test_value_if_added_matches_actual(self, k5):
        fitness = DirectedLaplacianFitness(c=0.2)
        state = CommunityState(k5, [0, 1])
        predicted = state.value_if_added(2, fitness)
        state.add(2)
        assert state.value(fitness) == pytest.approx(predicted)

    def test_value_if_removed_matches_actual(self, k5):
        fitness = DirectedLaplacianFitness(c=0.2)
        state = CommunityState(k5, [0, 1, 2])
        predicted = state.value_if_removed(2, fitness)
        state.remove(2)
        assert state.value(fitness) == pytest.approx(predicted)


@settings(max_examples=60)
@given(edges=edge_lists(max_nodes=10, max_edges=30), data=st.data())
def test_random_mutation_sequence_preserves_invariants(edges, data):
    """Fuzz add/remove sequences; verify() recomputes from scratch."""
    g = Graph(edges=edges)
    nodes = list(g.nodes())
    if not nodes:
        return
    state = CommunityState(g, [nodes[0]])
    for _ in range(data.draw(st.integers(min_value=0, max_value=20))):
        frontier = list(state.frontier)
        members = list(state.members)
        moves = []
        if frontier:
            moves.append("add-frontier")
        if len(members) > 1:
            moves.append("remove")
        outside = [n for n in nodes if n not in state.members]
        if outside:
            moves.append("add-any")
        if not moves:
            break
        move = data.draw(st.sampled_from(moves))
        if move == "add-frontier":
            state.add(data.draw(st.sampled_from(frontier)))
        elif move == "remove":
            state.remove(data.draw(st.sampled_from(members)))
        else:
            state.add(data.draw(st.sampled_from(outside)))
    state.verify()
