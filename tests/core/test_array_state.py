"""ArrayCommunityState must track exactly what CommunityState tracks.

The two state implementations are the only representation-specific code
on the greedy hot path, so their observable surface — aggregates,
per-node counters, and the argmax/argmin move probes with their
lowest-rank tie-breaking — must agree on every reachable configuration.
These tests drive both through identical mutation sequences and compare
everything after every step.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DirectedLaplacianFitness
from repro.core.state import ArrayCommunityState, CommunityState
from repro.errors import AlgorithmError, NodeNotFoundError
from repro.generators import complete_graph, ring_of_cliques
from repro.graph import Graph, compile_graph

from ..conftest import edge_lists

FITNESS = DirectedLaplacianFitness(c=0.4)


def assert_states_agree(dict_state, array_state):
    """Every observable of the two implementations must match."""
    assert array_state.size == dict_state.size
    assert array_state.internal_edges == dict_state.internal_edges
    assert array_state.volume == dict_state.volume
    assert set(array_state.members) == dict_state.members
    assert array_state.frontier == dict_state.frontier
    for node in dict_state.members:
        assert array_state.internal_degree_of(node) == (
            dict_state.internal_degree_of(node)
        )
    assert array_state.best_frontier_node() == dict_state.best_frontier_node()
    assert array_state.weakest_member() == dict_state.weakest_member()
    node = dict_state.best_frontier_node()
    if node is not None:
        assert array_state.value_if_added(node, FITNESS) == (
            dict_state.value_if_added(node, FITNESS)
        )
    node = dict_state.weakest_member()
    if node is not None and dict_state.size > 1:
        assert array_state.value_if_removed(node, FITNESS) == (
            dict_state.value_if_removed(node, FITNESS)
        )
    dict_state.verify()
    array_state.verify()


class TestAgainstDictState:
    def test_k5_initial_members(self):
        g = complete_graph(5)
        dict_state = CommunityState(g, [0, 1, 2])
        array_state = ArrayCommunityState(compile_graph(g), [0, 1, 2])
        assert_states_agree(dict_state, array_state)

    def test_ring_of_cliques_growth_sequence(self):
        g, _ = ring_of_cliques(4, 5)
        compiled = compile_graph(g)
        dict_state = CommunityState(g, [0])
        array_state = ArrayCommunityState(compiled, [0])
        for _ in range(6):
            node = dict_state.best_frontier_node()
            if node is None:
                break
            dict_state.add(node)
            array_state.add(node)
            assert_states_agree(dict_state, array_state)

    def test_remove_mirrors_dict_state(self):
        g = complete_graph(6)
        compiled = compile_graph(g)
        dict_state = CommunityState(g, [0, 1, 2, 3])
        array_state = ArrayCommunityState(compiled, [0, 1, 2, 3])
        dict_state.remove(1)
        array_state.remove(1)
        assert_states_agree(dict_state, array_state)
        dict_state.add(1)
        array_state.add(1)
        assert_states_agree(dict_state, array_state)


class TestArrayStateContracts:
    def test_add_duplicate_raises(self):
        state = ArrayCommunityState(compile_graph(complete_graph(4)), [0])
        with pytest.raises(AlgorithmError):
            state.add(0)

    def test_add_unknown_id_raises(self):
        state = ArrayCommunityState(compile_graph(complete_graph(4)))
        with pytest.raises(NodeNotFoundError):
            state.add(9)

    def test_remove_non_member_raises(self):
        state = ArrayCommunityState(compile_graph(complete_graph(4)), [0])
        with pytest.raises(AlgorithmError):
            state.remove(2)

    def test_contains_and_len(self):
        state = ArrayCommunityState(compile_graph(complete_graph(4)), [1, 3])
        assert 1 in state and 3 in state
        assert 0 not in state and 99 not in state
        assert len(state) == 2

    def test_full_graph_has_no_frontier(self):
        state = ArrayCommunityState(
            compile_graph(complete_graph(3)), [0, 1, 2]
        )
        assert state.best_frontier_node() is None
        assert state.frontier == {}

    def test_tie_breaks_choose_lowest_id(self):
        # K4: after seeding {0}, every other node has one member link.
        state = ArrayCommunityState(compile_graph(complete_graph(4)), [0])
        assert state.best_frontier_node() == 1
        state.add(1)
        # Members 0 and 1 both have internal degree 1: lowest id wins.
        assert state.weakest_member() == 0
        assert state.best_frontier_node() == 2


@settings(max_examples=40, deadline=None)
@given(
    edges=edge_lists(max_nodes=10, max_edges=30),
    moves=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_random_mutation_sequences_agree(edges, moves):
    """Random add/remove walks keep the two implementations in lockstep."""
    g = Graph(edges=edges)
    if g.number_of_nodes() == 0:
        return
    compiled = compile_graph(g)
    rank = g.node_index()
    first = next(iter(g.nodes()))
    dict_state = CommunityState(g, [first])
    array_state = ArrayCommunityState(compiled, [rank[first]])
    rng = random.Random(moves)
    labels = list(g.nodes())
    for _ in range(12):
        if rng.random() < 0.7 or dict_state.size <= 1:
            candidates = [v for v in labels if v not in dict_state.members]
            if not candidates:
                break
            node = rng.choice(candidates)
            dict_state.add(node)
            array_state.add(rank[node])
        else:
            node = rng.choice(sorted(dict_state.members, key=rank.__getitem__))
            dict_state.remove(node)
            array_state.remove(rank[node])
        # Identity-labelled graphs let the comparison helper match node
        # names directly; non-identity ids are covered by the engine
        # equivalence suite.
        if compiled.identity_labels:
            assert_states_agree(dict_state, array_state)
        else:
            assert array_state.size == dict_state.size
            assert array_state.internal_edges == dict_state.internal_edges
            assert array_state.volume == dict_state.volume
            array_state.verify()
            dict_state.verify()
