"""Unit tests for the exception hierarchy."""

import pytest

from repro.errors import (
    AlgorithmError,
    CommunityError,
    ConfigurationError,
    ConvergenceError,
    EdgeNotFoundError,
    EmptyCommunityError,
    GeneratorError,
    GraphError,
    GraphFormatError,
    NodeNotFoundError,
    ReproError,
)


def test_all_derive_from_repro_error():
    for cls in (
        GraphError,
        NodeNotFoundError,
        EdgeNotFoundError,
        GraphFormatError,
        CommunityError,
        EmptyCommunityError,
        GeneratorError,
        AlgorithmError,
        ConvergenceError,
        ConfigurationError,
    ):
        assert issubclass(cls, ReproError)


def test_lookup_errors_are_key_errors():
    assert issubclass(NodeNotFoundError, KeyError)
    assert issubclass(EdgeNotFoundError, KeyError)


def test_value_like_errors_are_value_errors():
    assert issubclass(GraphFormatError, ValueError)
    assert issubclass(GeneratorError, ValueError)
    assert issubclass(ConfigurationError, ValueError)
    assert issubclass(EmptyCommunityError, ValueError)


def test_node_not_found_carries_node():
    error = NodeNotFoundError(("a", 1))
    assert error.node == ("a", 1)
    assert "('a', 1)" in str(error)


def test_edge_not_found_carries_endpoints():
    error = EdgeNotFoundError(1, 2)
    assert (error.u, error.v) == (1, 2)


def test_convergence_error_carries_diagnostics():
    error = ConvergenceError("no", iterations=100, residual=0.5)
    assert error.iterations == 100
    assert error.residual == 0.5


def test_catch_all_with_base():
    with pytest.raises(ReproError):
        raise GeneratorError("bad parameter")
