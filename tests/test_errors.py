"""Unit tests for the exception hierarchy."""

import pytest

from repro.errors import (
    AlgorithmError,
    CommunityError,
    ConfigurationError,
    ConvergenceError,
    DeadlineExceeded,
    EdgeNotFoundError,
    EmptyCommunityError,
    GeneratorError,
    GraphError,
    GraphFormatError,
    NodeNotFoundError,
    QueueFull,
    ReproError,
    ServingError,
    SessionClosedError,
)


def test_all_derive_from_repro_error():
    for cls in (
        GraphError,
        NodeNotFoundError,
        EdgeNotFoundError,
        GraphFormatError,
        CommunityError,
        EmptyCommunityError,
        GeneratorError,
        AlgorithmError,
        ConvergenceError,
        ConfigurationError,
        ServingError,
        SessionClosedError,
        QueueFull,
        DeadlineExceeded,
    ):
        assert issubclass(cls, ReproError)


def test_serving_errors_share_one_base():
    for cls in (SessionClosedError, QueueFull, DeadlineExceeded):
        assert issubclass(cls, ServingError)


def test_queue_full_carries_depth():
    error = QueueFull("full", depth=64)
    assert error.depth == 64


def test_deadline_exceeded_carries_budget_and_wait():
    error = DeadlineExceeded("late", deadline_seconds=0.5, waited_seconds=0.8)
    assert error.deadline_seconds == 0.5
    assert error.waited_seconds == 0.8


def test_lookup_errors_are_key_errors():
    assert issubclass(NodeNotFoundError, KeyError)
    assert issubclass(EdgeNotFoundError, KeyError)


def test_value_like_errors_are_value_errors():
    assert issubclass(GraphFormatError, ValueError)
    assert issubclass(GeneratorError, ValueError)
    assert issubclass(ConfigurationError, ValueError)
    assert issubclass(EmptyCommunityError, ValueError)


def test_node_not_found_carries_node():
    error = NodeNotFoundError(("a", 1))
    assert error.node == ("a", 1)
    assert "('a', 1)" in str(error)


def test_edge_not_found_carries_endpoints():
    error = EdgeNotFoundError(1, 2)
    assert (error.u, error.v) == (1, 2)


def test_convergence_error_carries_diagnostics():
    error = ConvergenceError("no", iterations=100, residual=0.5)
    assert error.iterations == 100
    assert error.residual == 0.5


def test_catch_all_with_base():
    with pytest.raises(ReproError):
        raise GeneratorError("bad parameter")
