"""Shared fixtures and hypothesis strategies for the test-suite."""

from __future__ import annotations

import random

import pytest
from hypothesis import strategies as st

from repro.graph import Graph
from repro.generators import (
    complete_graph,
    erdos_renyi,
    karate_club,
    path_graph,
    ring_of_cliques,
    two_cliques_bridged,
)


# ----------------------------------------------------------------------
# Fixtures
# ----------------------------------------------------------------------
@pytest.fixture
def triangle() -> Graph:
    """K3."""
    return Graph(edges=[(0, 1), (1, 2), (0, 2)])


@pytest.fixture
def square() -> Graph:
    """C4 (bipartite, lambda_min = -2)."""
    return Graph(edges=[(0, 1), (1, 2), (2, 3), (3, 0)])


@pytest.fixture
def k5() -> Graph:
    """K5."""
    return complete_graph(5)


@pytest.fixture
def path5() -> Graph:
    """P5."""
    return path_graph(5)


@pytest.fixture
def karate():
    """Zachary's karate club with its two-faction ground truth."""
    return karate_club()


@pytest.fixture
def two_cliques():
    """Two 6-cliques sharing 2 nodes, with ground-truth cover."""
    return two_cliques_bridged(6, 2)


@pytest.fixture
def ring():
    """Five 5-cliques in a ring, with planted cover."""
    return ring_of_cliques(5, 5)


# ----------------------------------------------------------------------
# Hypothesis strategies
# ----------------------------------------------------------------------
def edge_lists(max_nodes: int = 12, max_edges: int = 40):
    """Strategy producing lists of (u, v) pairs with u != v."""
    node = st.integers(min_value=0, max_value=max_nodes - 1)
    pair = st.tuples(node, node).filter(lambda uv: uv[0] != uv[1])
    return st.lists(pair, max_size=max_edges)


def small_graphs(max_nodes: int = 12, max_edges: int = 40):
    """Strategy producing small Graph instances."""
    return edge_lists(max_nodes, max_edges).map(lambda edges: Graph(edges=edges))


def node_subsets(graph: Graph, rng_seed: int = 0):
    """A deterministic list of interesting node subsets of ``graph``."""
    nodes = list(graph.nodes())
    rng = random.Random(rng_seed)
    subsets = [set(nodes)] if nodes else []
    for size in range(1, min(len(nodes), 5) + 1):
        subsets.append(set(rng.sample(nodes, size)))
    return subsets
