"""Unit tests for structural community metrics."""

import pytest

from repro.communities import (
    Cover,
    Partition,
    conductance,
    coverage,
    cut_size,
    internal_density,
    internal_edges,
    modularity,
    overlap_statistics,
    overlapping_modularity,
)
from repro.errors import CommunityError
from repro.graph import Graph
from repro.generators import complete_graph, ring_of_cliques, two_cliques_bridged


def test_internal_edges_matches_clique():
    g = complete_graph(6)
    assert internal_edges(g, {0, 1, 2, 3}) == 6


def test_cut_size_of_clique_subset():
    g = complete_graph(6)
    # Each of the 4 members has 2 outside neighbours.
    assert cut_size(g, {0, 1, 2, 3}) == 8


def test_cut_size_whole_graph_zero(k5):
    assert cut_size(k5, set(k5.nodes())) == 0


def test_conductance_isolated_community():
    g, cover = ring_of_cliques(4, 5)
    block = set(cover[0])
    # Only the two ring bridges leave the clique.
    volume = sum(g.degree(v) for v in block)
    assert conductance(g, block) == pytest.approx(2 / volume)


def test_conductance_degenerate_community():
    g = Graph(edges=[(0, 1)], nodes=[9])
    assert conductance(g, {9}) == 1.0


def test_internal_density_clique(k5):
    assert internal_density(k5, {0, 1, 2}) == pytest.approx(1.0)


def test_internal_density_singleton(k5):
    assert internal_density(k5, {0}) == 0.0


def test_modularity_of_planted_partition_positive():
    g, cover = ring_of_cliques(5, 5)
    q = modularity(g, Partition(cover.communities()))
    assert q > 0.5


def test_modularity_single_block_zero():
    g = complete_graph(4)
    q = modularity(g, Partition([set(g.nodes())]))
    assert q == pytest.approx(0.0)


def test_modularity_edgeless_raises():
    with pytest.raises(CommunityError):
        modularity(Graph(nodes=[0, 1]), Partition([{0}, {1}]))


def test_overlapping_modularity_matches_modularity_on_partition():
    g, cover = ring_of_cliques(5, 5)
    partition = Partition(cover.communities())
    assert overlapping_modularity(g, partition) == pytest.approx(
        modularity(g, partition)
    )


def test_overlapping_modularity_planted_overlap_positive():
    g, cover = two_cliques_bridged(6, 2)
    assert overlapping_modularity(g, cover) > 0.2


def test_coverage():
    g = complete_graph(4)
    assert coverage(g, Cover([{0, 1}])) == pytest.approx(0.5)
    assert coverage(g, Cover([{0, 1}, {2, 3}])) == pytest.approx(1.0)


def test_coverage_empty_graph():
    assert coverage(Graph(), Cover()) == 1.0


def test_overlap_statistics():
    cover = Cover([{1, 2, 3}, {3, 4}])
    stats = overlap_statistics(cover)
    assert stats["communities"] == 2.0
    assert stats["covered_nodes"] == 4.0
    assert stats["overlapping_nodes"] == 1.0
    assert stats["max_memberships"] == 2.0
    assert stats["mean_memberships"] == pytest.approx(5 / 4)


def test_overlap_statistics_empty():
    stats = overlap_statistics(Cover())
    assert stats["covered_nodes"] == 0.0
    assert stats["mean_memberships"] == 0.0
