"""Unit tests for cover serialisation."""

import io

import pytest

from repro.communities import Cover, read_cover, write_cover


def test_round_trip_via_path(tmp_path):
    cover = Cover([{1, 2, 3}, {3, 4}])
    path = tmp_path / "cover.txt"
    write_cover(cover, path)
    assert read_cover(path) == cover


def test_round_trip_via_stream():
    cover = Cover([{"a", "b"}, {"c"}])
    buffer = io.StringIO()
    write_cover(cover, buffer)
    buffer.seek(0)
    assert read_cover(buffer) == cover


def test_comments_and_blanks_skipped():
    text = "# ground truth\n\n1 2 3\n4 5\n"
    cover = read_cover(io.StringIO(text))
    assert cover == Cover([{1, 2, 3}, {4, 5}])


def test_integer_tokens_parsed():
    cover = read_cover(io.StringIO("1 2\n"))
    assert {1, 2} in cover
    assert {"1", "2"} not in cover


def test_mixed_labels():
    cover = read_cover(io.StringIO("alice 7\n"))
    assert {"alice", 7} in cover


def test_one_line_per_community(tmp_path):
    cover = Cover([{3, 1, 2}])
    path = tmp_path / "cover.txt"
    write_cover(cover, path)
    assert path.read_text() == "1 2 3\n"
