"""Unit tests for the cover comparison report."""

import pytest

from repro.communities import Cover, comparison_report, match_table


def test_exact_recovery():
    cover = Cover([{1, 2, 3}, {4, 5}])
    matches = match_table(cover, cover)
    assert all(m.verdict == "exact" for m in matches)
    assert all(m.best_rho == 1.0 for m in matches)
    assert all(m.attributed == 1 for m in matches)


def test_missed_community():
    real = Cover([{1, 2, 3}, {7, 8, 9}])
    observed = Cover([{1, 2, 3}])
    matches = match_table(real, observed)
    assert matches[0].verdict == "exact"
    assert matches[1].verdict == "missed"
    assert matches[1].attributed == 0
    assert matches[1].best_rho == 0.0
    assert matches[1].best_observed is None


def test_fragmented_community():
    real = Cover([{1, 2, 3, 4, 5, 6}])
    observed = Cover([{1, 2, 3}, {4, 5, 6}])
    matches = match_table(real, observed)
    assert matches[0].verdict == "fragmented"
    assert matches[0].attributed == 2
    assert matches[0].best_rho == pytest.approx(0.5)


def test_good_vs_blurred_thresholds():
    real = Cover([{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}])
    good = Cover([set(range(1, 10))])      # rho = 0.9
    blurred = Cover([{1, 2, 3, 20, 21, 22, 23}])  # rho = 3/14
    assert match_table(real, good)[0].verdict == "good"
    assert match_table(real, blurred)[0].verdict == "blurred"


def test_empty_observed_cover():
    real = Cover([{1, 2}])
    matches = match_table(real, Cover())
    assert matches[0].verdict == "missed"


def test_report_renders_summary():
    real = Cover([{1, 2, 3}, {4, 5, 6}])
    observed = Cover([{1, 2, 3}, {4, 5}])
    text = comparison_report(real, observed)
    assert "Theta" in text
    assert "exact" in text
    assert "2 real / 2 observed" in text


def test_report_on_empty_observed():
    text = comparison_report(Cover([{1}]), Cover())
    assert "Theta = 0.0000" in text


def test_best_observed_indices_valid():
    real = Cover([{1, 2}, {3, 4}])
    observed = Cover([{3, 4}, {1, 2}])
    matches = match_table(real, observed)
    assert matches[0].best_observed == 1
    assert matches[1].best_observed == 0
