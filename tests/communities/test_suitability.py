"""Unit and property tests for Theta (Eq. V.2)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.communities import Cover, best_match_assignment, theta
from repro.errors import CommunityError

covers = st.lists(
    st.sets(st.integers(min_value=0, max_value=20), min_size=1, max_size=8),
    min_size=1,
    max_size=6,
).map(Cover)


def test_identical_structures_score_one():
    cover = Cover([{1, 2, 3}, {4, 5}])
    assert theta(cover, cover) == pytest.approx(1.0)


def test_disjoint_structures_score_zero():
    real = Cover([{1, 2}, {3, 4}])
    observed = Cover([{10, 11}, {12}])
    assert theta(real, observed) == pytest.approx(0.0)


def test_missing_community_penalised():
    real = Cover([{1, 2, 3}, {4, 5, 6}])
    observed = Cover([{1, 2, 3}])
    # Community 2 unfound: contributes 0; average over l = 2 -> 0.5.
    assert theta(real, observed) == pytest.approx(0.5)


def test_fragmented_community_averages_fragments():
    real = Cover([{1, 2, 3, 4}])
    observed = Cover([{1, 2}, {3, 4}])
    # Both fragments prefer the single real community; each rho = 0.5.
    assert theta(real, observed) == pytest.approx(0.5)


def test_extra_noise_community_hurts():
    real = Cover([{1, 2, 3}])
    exact = Cover([{1, 2, 3}])
    noisy = Cover([{1, 2, 3}, {10, 11}])
    assert theta(real, noisy) < theta(real, exact)


def test_overlapping_structures_supported():
    real = Cover([{1, 2, 3}, {3, 4, 5}])
    assert theta(real, real) == pytest.approx(1.0)


def test_empty_real_structure_raises():
    with pytest.raises(CommunityError):
        theta(Cover(), Cover([{1}]))


def test_empty_observed_scores_zero():
    assert theta(Cover([{1, 2}]), Cover()) == 0.0


def test_assignment_attributes_every_observed_exactly_once():
    real = Cover([{1, 2, 3}, {4, 5, 6}])
    observed = Cover([{1, 2}, {4, 5}, {1, 4}])
    assignment = best_match_assignment(real, observed)
    attributed = sorted(j for js in assignment.values() for j in js)
    assert attributed == [0, 1, 2]


def test_assignment_tie_breaks_to_first():
    real = Cover([{1, 2}, {3, 4}])
    observed = Cover([{1, 3}])  # rho = 1/3 against both
    assignment = best_match_assignment(real, observed)
    assert assignment[0] == [0]
    assert assignment[1] == []


@given(real=covers, observed=covers)
def test_theta_bounds(real, observed):
    assert 0.0 <= theta(real, observed) <= 1.0


@given(cover=covers)
def test_theta_self_comparison_is_one(cover):
    assert theta(cover, cover) == pytest.approx(1.0)
