"""Unit tests for Community, Cover, Partition."""

import pytest

from repro.communities import Community, Cover, Partition
from repro.errors import CommunityError, EmptyCommunityError


class TestCommunity:
    def test_requires_members(self):
        with pytest.raises(EmptyCommunityError):
            Community([])

    def test_is_frozenset(self):
        c = Community([1, 2, 2, 3])
        assert c == frozenset({1, 2, 3})
        assert len(c) == 3

    def test_jaccard(self):
        a = Community([1, 2, 3])
        assert a.jaccard({2, 3, 4}) == pytest.approx(0.5)
        assert a.jaccard(set()) == 0.0
        assert a.jaccard({1, 2, 3}) == 1.0

    def test_overlap(self):
        assert Community([1, 2, 3]).overlap({3, 4}) == 1

    def test_repr_shows_size(self):
        assert "size=3" in repr(Community([1, 2, 3]))


class TestCover:
    def test_deduplicates(self):
        cover = Cover([{1, 2}, {2, 1}, {3}])
        assert len(cover) == 2

    def test_iteration_and_indexing(self):
        cover = Cover([{1, 2}, {3}])
        assert cover[0] == {1, 2}
        assert [set(c) for c in cover] == [{1, 2}, {3}]

    def test_contains_set_like(self):
        cover = Cover([{1, 2}])
        assert {1, 2} in cover
        assert [2, 1] in cover
        assert {3} not in cover
        assert "nonsense" not in cover

    def test_equality_is_order_insensitive(self):
        assert Cover([{1}, {2}]) == Cover([{2}, {1}])
        assert Cover([{1}]) != Cover([{2}])

    def test_covered_nodes(self):
        cover = Cover([{1, 2}, {2, 3}])
        assert cover.covered_nodes() == {1, 2, 3}

    def test_membership(self):
        cover = Cover([{1, 2}, {2, 3}])
        membership = cover.membership()
        assert membership[2] == [0, 1]
        assert membership[1] == [0]

    def test_membership_counts_and_overlapping_nodes(self):
        cover = Cover([{1, 2}, {2, 3}])
        assert cover.membership_counts() == {1: 1, 2: 2, 3: 1}
        assert cover.overlapping_nodes() == {2}

    def test_orphan_nodes(self):
        cover = Cover([{1, 2}])
        assert cover.orphan_nodes([1, 2, 3, 4]) == {3, 4}

    def test_size_distribution(self):
        cover = Cover([{1}, {2, 3, 4}, {5, 6}])
        assert cover.size_distribution() == [3, 2, 1]

    def test_restrict_to(self):
        cover = Cover([{1, 2}, {3, 4}])
        restricted = cover.restrict_to({1, 3, 4})
        assert restricted == Cover([{1}, {3, 4}])

    def test_without_small(self):
        cover = Cover([{1}, {2, 3}, {4, 5, 6}])
        assert cover.without_small(2) == Cover([{2, 3}, {4, 5, 6}])

    def test_add_returns_new_cover(self):
        cover = Cover([{1}])
        extended = cover.add({2, 3})
        assert len(cover) == 1
        assert len(extended) == 2

    def test_as_sets_copies(self):
        cover = Cover([{1, 2}])
        sets = cover.as_sets()
        sets[0].add(99)
        assert 99 not in cover[0]

    def test_from_membership(self):
        cover = Cover.from_membership({1: [0], 2: [0, 1], 3: [1]})
        assert cover == Cover([{1, 2}, {2, 3}])

    def test_to_partition_rejects_overlap(self):
        with pytest.raises(CommunityError):
            Cover([{1, 2}, {2, 3}]).to_partition()

    def test_to_partition_ok_when_disjoint(self):
        partition = Cover([{1, 2}, {3}]).to_partition()
        assert isinstance(partition, Partition)

    def test_empty_cover(self):
        cover = Cover()
        assert len(cover) == 0
        assert cover.covered_nodes() == set()
        assert cover.size_distribution() == []


class TestPartition:
    def test_rejects_overlap(self):
        with pytest.raises(CommunityError):
            Partition([{1, 2}, {2, 3}])

    def test_block_of(self):
        partition = Partition([{1, 2}, {3}])
        blocks = partition.block_of()
        assert blocks[1] == blocks[2]
        assert blocks[3] != blocks[1]
