"""Unit and property tests for overlapping NMI."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.communities import Cover, overlapping_nmi
from repro.errors import CommunityError

UNIVERSE = list(range(12))

covers = st.lists(
    st.sets(st.sampled_from(UNIVERSE), min_size=1, max_size=8),
    min_size=1,
    max_size=4,
).map(Cover)


def test_identical_covers_score_one():
    cover = Cover([{0, 1, 2}, {3, 4, 5}])
    assert overlapping_nmi(cover, cover, UNIVERSE) == pytest.approx(1.0)


def test_unrelated_covers_score_low():
    a = Cover([{0, 1, 2, 3, 4, 5}])
    b = Cover([{0, 2, 4, 6, 8, 10}])
    assert overlapping_nmi(a, b, UNIVERSE) < 0.5


def test_refinement_scores_between():
    coarse = Cover([{0, 1, 2, 3, 4, 5}])
    fine = Cover([{0, 1, 2}, {3, 4, 5}])
    value = overlapping_nmi(coarse, fine, UNIVERSE)
    assert 0.0 < value < 1.0


def test_symmetric():
    a = Cover([{0, 1, 2}, {2, 3}])
    b = Cover([{0, 1}, {3, 4, 5}])
    assert overlapping_nmi(a, b, UNIVERSE) == pytest.approx(
        overlapping_nmi(b, a, UNIVERSE)
    )


def test_empty_cover_raises():
    with pytest.raises(CommunityError):
        overlapping_nmi(Cover(), Cover([{1}]), UNIVERSE)


def test_empty_universe_raises():
    with pytest.raises(CommunityError):
        overlapping_nmi(Cover([{1}]), Cover([{1}]), [])


def test_members_outside_universe_raise():
    with pytest.raises(CommunityError):
        overlapping_nmi(Cover([{99}]), Cover([{0}]), UNIVERSE)


def test_overlapping_ground_truth_supported():
    cover = Cover([{0, 1, 2, 3}, {3, 4, 5, 6}])
    assert overlapping_nmi(cover, cover, UNIVERSE) == pytest.approx(1.0)


@given(a=covers, b=covers)
def test_nmi_bounds(a, b):
    value = overlapping_nmi(a, b, UNIVERSE)
    assert 0.0 <= value <= 1.0


@given(a=covers, b=covers)
def test_nmi_symmetry_property(a, b):
    assert overlapping_nmi(a, b, UNIVERSE) == pytest.approx(
        overlapping_nmi(b, a, UNIVERSE)
    )
