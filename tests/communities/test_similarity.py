"""Unit and property tests for rho (Eq. V.1)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.communities import distance, rho, rho_jaccard_form

node_sets = st.sets(st.integers(min_value=0, max_value=30), max_size=15)


def test_identical_sets():
    assert rho({1, 2, 3}, {1, 2, 3}) == 1.0


def test_disjoint_sets():
    assert rho({1, 2}, {3, 4}) == 0.0


def test_half_overlap():
    # |C\D| + |D\C| = 2, |C u D| = 3 -> rho = 1/3
    assert rho({1, 2}, {2, 3}) == pytest.approx(1.0 / 3.0)


def test_subset_relation():
    assert rho({1, 2, 3, 4}, {1, 2}) == pytest.approx(0.5)


def test_empty_sets_are_identical():
    assert rho(set(), set()) == 1.0


def test_empty_vs_nonempty():
    assert rho(set(), {1}) == 0.0


def test_paper_formula_matches_jaccard_example():
    c, d = {1, 2, 3, 4, 5}, {4, 5, 6}
    assert rho(c, d) == pytest.approx(rho_jaccard_form(c, d))


def test_distance_complement():
    assert distance({1, 2}, {2, 3}) == pytest.approx(1 - rho({1, 2}, {2, 3}))


@given(c=node_sets, d=node_sets)
def test_rho_equals_jaccard_everywhere(c, d):
    assert rho(c, d) == pytest.approx(rho_jaccard_form(c, d))


@given(c=node_sets, d=node_sets)
def test_rho_symmetric(c, d):
    assert rho(c, d) == pytest.approx(rho(d, c))


@given(c=node_sets, d=node_sets)
def test_rho_bounds(c, d):
    assert 0.0 <= rho(c, d) <= 1.0


@given(c=node_sets)
def test_rho_reflexive(c):
    assert rho(c, c) == 1.0


@given(c=node_sets, d=node_sets, e=node_sets)
def test_distance_triangle_inequality(c, d, e):
    # 1 - Jaccard is a proper metric (Steinhaus transform).
    assert distance(c, e) <= distance(c, d) + distance(d, e) + 1e-12
