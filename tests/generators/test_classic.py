"""Unit tests for classic graphs."""

import pytest

from repro.errors import GeneratorError
from repro.generators import (
    caveman_graph,
    complete_graph,
    cycle_graph,
    erdos_renyi,
    karate_club,
    path_graph,
    ring_of_cliques,
    star_graph,
    two_cliques_bridged,
)
from repro.graph import is_connected


def test_complete_graph_counts():
    g = complete_graph(6)
    assert g.number_of_nodes() == 6
    assert g.number_of_edges() == 15


def test_complete_graph_empty():
    assert complete_graph(0).number_of_nodes() == 0


def test_path_graph():
    g = path_graph(5)
    assert g.number_of_edges() == 4
    assert g.degree(0) == 1 and g.degree(2) == 2


def test_cycle_graph():
    g = cycle_graph(6)
    assert all(g.degree(v) == 2 for v in g.nodes())
    with pytest.raises(GeneratorError):
        cycle_graph(2)


def test_star_graph():
    g = star_graph(7)
    assert g.degree(0) == 7
    assert g.number_of_edges() == 7


def test_erdos_renyi_extremes():
    assert erdos_renyi(10, 0.0, seed=0).number_of_edges() == 0
    assert erdos_renyi(10, 1.0, seed=0).number_of_edges() == 45


def test_erdos_renyi_deterministic():
    assert erdos_renyi(20, 0.3, seed=5) == erdos_renyi(20, 0.3, seed=5)


def test_erdos_renyi_validates():
    with pytest.raises(GeneratorError):
        erdos_renyi(10, 1.5)


def test_ring_of_cliques_structure():
    g, cover = ring_of_cliques(4, 5)
    assert g.number_of_nodes() == 20
    assert g.number_of_edges() == 4 * 10 + 4
    assert len(cover) == 4
    assert is_connected(g)


def test_ring_of_cliques_validates():
    with pytest.raises(GeneratorError):
        ring_of_cliques(2, 5)
    with pytest.raises(GeneratorError):
        ring_of_cliques(3, 1)


def test_caveman_graph():
    g, cover = caveman_graph(3, 5)
    assert g.number_of_nodes() == 15
    assert len(cover) == 3
    assert is_connected(g)


def test_caveman_validates():
    with pytest.raises(GeneratorError):
        caveman_graph(1, 5)
    with pytest.raises(GeneratorError):
        caveman_graph(3, 2)


def test_two_cliques_bridged_overlap():
    g, cover = two_cliques_bridged(6, 2)
    assert len(cover) == 2
    assert len(cover.overlapping_nodes()) == 2
    assert g.number_of_nodes() == 10


def test_two_cliques_bridged_validates():
    with pytest.raises(GeneratorError):
        two_cliques_bridged(2)
    with pytest.raises(GeneratorError):
        two_cliques_bridged(5, 5)


def test_karate_club_canonical_counts():
    g, factions = karate_club()
    assert g.number_of_nodes() == 34
    assert g.number_of_edges() == 78
    assert is_connected(g)
    assert len(factions) == 2
    assert factions.covered_nodes() == set(range(34))
    assert not factions.overlapping_nodes()
