"""Unit tests for daisy flowers and daisy trees."""

import pytest

from repro.errors import GeneratorError
from repro.generators import DaisyParams, daisy_graph, daisy_tree
from repro.graph import is_connected


class TestParams:
    def test_defaults_valid(self):
        DaisyParams()

    def test_p_validated(self):
        with pytest.raises(GeneratorError):
            DaisyParams(p=1)

    def test_n_at_least_p(self):
        with pytest.raises(GeneratorError):
            DaisyParams(p=10, n=5)

    def test_probabilities_validated(self):
        with pytest.raises(GeneratorError):
            DaisyParams(alpha=1.5)
        with pytest.raises(GeneratorError):
            DaisyParams(beta=-0.1)


class TestSingleDaisy:
    @pytest.fixture(scope="class")
    def instance(self):
        return daisy_graph(DaisyParams(), seed=5)

    def test_node_count(self, instance):
        assert instance.graph.number_of_nodes() == 60

    def test_petal_membership_definition(self, instance):
        p = 5
        for petal_id in instance.petal_ids:
            petal = instance.communities[petal_id]
            residues = {v % p for v in petal}
            assert len(residues) == 1
            assert 0 not in residues

    def test_core_membership_definition(self, instance):
        p, q = 5, 12
        core = instance.communities[instance.core_ids[0]]
        assert core == {v for v in range(60) if v % p == 0 or v % q == 0}

    def test_overlap_nodes_exist(self, instance):
        # Nodes with v != 0 mod p and v == 0 mod q sit in petal AND core.
        overlapping = instance.communities.overlapping_nodes()
        expected = {v for v in range(60) if v % 5 != 0 and v % 12 == 0}
        assert expected <= overlapping

    def test_every_petal_overlaps_core(self, instance):
        # gcd(p, q) = 1 guarantees each petal shares a node with the core.
        core = set(instance.communities[instance.core_ids[0]])
        for petal_id in instance.petal_ids:
            assert set(instance.communities[petal_id]) & core

    def test_edges_only_inside_parts(self, instance):
        parts = [set(c) for c in instance.communities]
        for u, v in instance.graph.edges():
            assert any(u in part and v in part for part in parts)

    def test_alpha_one_makes_petals_cliques(self):
        instance = daisy_graph(DaisyParams(alpha=1.0, beta=0.0), seed=1)
        for petal_id in instance.petal_ids:
            petal = list(instance.communities[petal_id])
            for i, u in enumerate(petal):
                for v in petal[i + 1 :]:
                    assert instance.graph.has_edge(u, v)

    def test_beta_zero_core_edgeless(self):
        instance = daisy_graph(DaisyParams(alpha=0.0, beta=0.0), seed=1)
        assert instance.graph.number_of_edges() == 0

    def test_deterministic(self):
        a = daisy_graph(seed=9)
        b = daisy_graph(seed=9)
        assert a.graph == b.graph


class TestDaisyTree:
    def test_flowers_counted(self):
        instance = daisy_tree(flowers=4, seed=2)
        assert instance.flowers == 4
        assert instance.graph.number_of_nodes() == 4 * 60

    def test_single_flower_tree(self):
        instance = daisy_tree(flowers=1, seed=2)
        assert instance.flowers == 1

    def test_flowers_validated(self):
        with pytest.raises(GeneratorError):
            daisy_tree(flowers=0)

    def test_gamma_validated(self):
        with pytest.raises(GeneratorError):
            daisy_tree(flowers=2, gamma=1.5)

    def test_tree_is_connected_when_parts_connected(self):
        # alpha=1, beta=1 make each flower connected; attachment bridges
        # flowers (forced edge if gamma misses).
        params = DaisyParams(alpha=1.0, beta=1.0)
        instance = daisy_tree(flowers=5, gamma=0.01, params=params, seed=3)
        assert is_connected(instance.graph)

    def test_ground_truth_covers_tree(self):
        instance = daisy_tree(flowers=3, seed=4)
        expected = 3 * (4 + 1)  # p - 1 = 4 petals + core per flower
        assert len(instance.communities) == expected

    def test_offsets_disjoint_flowers(self):
        instance = daisy_tree(flowers=3, seed=4)
        assert instance.offsets == [0, 60, 120]

    def test_petal_and_core_ids_partition_communities(self):
        instance = daisy_tree(flowers=3, seed=4)
        all_ids = sorted(instance.petal_ids + instance.core_ids)
        assert all_ids == list(range(len(instance.communities)))

    def test_deterministic(self):
        a = daisy_tree(flowers=3, seed=8)
        b = daisy_tree(flowers=3, seed=8)
        assert a.graph == b.graph
