"""Unit tests for the Wikipedia-like graph generator."""

import pytest

from repro.errors import GeneratorError
from repro.generators import WikipediaParams, wikipedia_like_graph
from repro.graph import degree_histogram, is_connected, largest_component


class TestParams:
    def test_defaults_valid(self):
        WikipediaParams()

    def test_n_validated(self):
        with pytest.raises(GeneratorError):
            WikipediaParams(n=5)

    def test_attachment_validated(self):
        with pytest.raises(GeneratorError):
            WikipediaParams(n=100, attachment=0)
        with pytest.raises(GeneratorError):
            WikipediaParams(n=100, attachment=100)

    def test_memberships_validated(self):
        with pytest.raises(GeneratorError):
            WikipediaParams(topic_memberships=0.5)


class TestInstance:
    @pytest.fixture(scope="class")
    def instance(self):
        return wikipedia_like_graph(WikipediaParams(n=2000, topics=20), seed=6)

    def test_node_count(self, instance):
        assert instance.graph.number_of_nodes() == 2000

    def test_backbone_makes_graph_connected(self, instance):
        assert len(largest_component(instance.graph)) == 2000

    def test_heavy_tail_degree_distribution(self, instance):
        histogram = degree_histogram(instance.graph)
        max_degree = max(histogram)
        mean_degree = sum(d * c for d, c in histogram.items()) / 2000
        # Scale-free signature: hub degree far above the mean.
        assert max_degree > 8 * mean_degree

    def test_topics_cover_nodes(self, instance):
        assert instance.topics.covered_nodes() == set(range(2000))

    def test_overlapping_topic_memberships(self, instance):
        # topic_memberships = 1.3 -> ~30% of articles in 2+ topics.
        overlapping = len(instance.topics.overlapping_nodes())
        assert 0.1 * 2000 < overlapping < 0.6 * 2000

    def test_deterministic(self):
        a = wikipedia_like_graph(WikipediaParams(n=500, topics=10), seed=1)
        b = wikipedia_like_graph(WikipediaParams(n=500, topics=10), seed=1)
        assert a.graph == b.graph

    def test_repr(self, instance):
        assert "WikipediaInstance" in repr(instance)
