"""Unit tests for power-law sampling."""

import pytest

from repro.errors import GeneratorError
from repro.generators import (
    min_bound_for_mean,
    powerlaw_mean,
    powerlaw_weights,
    sample_degree_sequence,
    sample_powerlaw,
    sample_sizes_to_total,
)


class TestWeights:
    def test_weights_decreasing(self):
        weights = powerlaw_weights(2.0, 1, 10)
        assert all(a > b for a, b in zip(weights, weights[1:]))

    def test_single_point_support(self):
        assert len(powerlaw_weights(2.0, 5, 5)) == 1

    def test_validates_support(self):
        with pytest.raises(GeneratorError):
            powerlaw_weights(2.0, 0, 5)
        with pytest.raises(GeneratorError):
            powerlaw_weights(2.0, 6, 5)


class TestMean:
    def test_mean_within_support(self):
        mean = powerlaw_mean(2.0, 3, 30)
        assert 3 <= mean <= 30

    def test_mean_increases_with_low(self):
        assert powerlaw_mean(2.0, 5, 50) > powerlaw_mean(2.0, 1, 50)


class TestSampling:
    def test_samples_in_range(self):
        values = sample_powerlaw(500, 2.0, 4, 40, seed=0)
        assert all(4 <= v <= 40 for v in values)

    def test_deterministic(self):
        assert sample_powerlaw(50, 2.0, 1, 20, seed=9) == sample_powerlaw(
            50, 2.0, 1, 20, seed=9
        )

    def test_zero_count(self):
        assert sample_powerlaw(0, 2.0, 1, 10) == []

    def test_negative_count_raises(self):
        with pytest.raises(GeneratorError):
            sample_powerlaw(-1, 2.0, 1, 10)

    def test_heavy_tail_present(self):
        values = sample_powerlaw(3000, 2.0, 1, 100, seed=0)
        assert max(values) > 30  # the tail is actually sampled
        assert sum(v == 1 for v in values) > len(values) / 4


class TestMinBoundForMean:
    def test_realises_target_mean(self):
        low = min_bound_for_mean(20.0, 2.0, 60)
        assert powerlaw_mean(2.0, low, 60) == pytest.approx(20.0, rel=0.25)

    def test_unreachable_mean_raises(self):
        with pytest.raises(GeneratorError):
            min_bound_for_mean(100.0, 2.0, 50)

    def test_tiny_mean_raises(self):
        with pytest.raises(GeneratorError):
            min_bound_for_mean(0.5, 2.0, 50)


class TestDegreeSequence:
    def test_even_sum(self):
        degrees = sample_degree_sequence(101, 10.0, 30, seed=1)
        assert sum(degrees) % 2 == 0

    def test_mean_near_target(self):
        degrees = sample_degree_sequence(2000, 15.0, 50, seed=1)
        mean = sum(degrees) / len(degrees)
        assert mean == pytest.approx(15.0, rel=0.2)

    def test_max_respected(self):
        degrees = sample_degree_sequence(500, 10.0, 25, seed=1)
        assert max(degrees) <= 25

    def test_max_degree_below_n(self):
        with pytest.raises(GeneratorError):
            sample_degree_sequence(10, 5.0, 10)


class TestSizesToTotal:
    def test_sum_exact(self):
        sizes = sample_sizes_to_total(1000, 1.0, 10, 50, seed=2)
        assert sum(sizes) == 1000

    def test_bounds_respected_except_clip(self):
        sizes = sample_sizes_to_total(1000, 1.0, 10, 50, seed=2)
        # Clipping may push one size above high, never below low for
        # multi-community outputs.
        assert all(s >= 10 for s in sizes)

    def test_small_total_single_community(self):
        sizes = sample_sizes_to_total(12, 1.0, 10, 50, seed=0)
        assert sum(sizes) == 12

    def test_infeasible_total_raises(self):
        with pytest.raises(GeneratorError):
            sample_sizes_to_total(5, 1.0, 10, 50)
