"""Property-based tests on generator contracts (hypothesis)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.generators import (
    DaisyParams,
    LFRParams,
    daisy_graph,
    erdos_renyi,
    lfr_graph,
    sample_powerlaw,
    sample_sizes_to_total,
)


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(min_value=60, max_value=200),
    mu=st.floats(min_value=0.05, max_value=0.9),
    seed=st.integers(0, 5),
)
def test_lfr_contract(n, mu, seed):
    params = LFRParams(
        n=n,
        mu=mu,
        average_degree=8.0,
        max_degree=min(20, n - 1),
        min_community=10,
        max_community=min(40, n),
    )
    instance = lfr_graph(params, seed=seed)
    # Exact node count, partition ground truth, degree cap.
    assert instance.graph.number_of_nodes() == n
    assert instance.communities.covered_nodes() == set(range(n))
    assert not instance.communities.overlapping_nodes()
    assert max(instance.graph.degree(v) for v in range(n)) <= params.max_degree
    assert 0.0 <= instance.realized_mu <= 1.0


@settings(max_examples=20, deadline=None)
@given(
    p=st.integers(min_value=2, max_value=6),
    reps=st.integers(min_value=1, max_value=3),
    alpha=st.floats(min_value=0.0, max_value=1.0),
    beta=st.floats(min_value=0.0, max_value=1.0),
    seed=st.integers(0, 5),
)
def test_daisy_contract(p, reps, alpha, beta, seed):
    # q coprime-ish with p via q = p + 1; n a multiple of both.
    q = p + 1
    n = p * q * reps
    params = DaisyParams(p=p, q=q, n=n, alpha=alpha, beta=beta)
    instance = daisy_graph(params, seed=seed)
    assert instance.graph.number_of_nodes() == n
    # p - 1 petals + 1 core.
    assert len(instance.communities) == p
    # Petals and core follow the modular definition.
    core = set(instance.communities[instance.core_ids[0]])
    assert core == {v for v in range(n) if v % p == 0 or v % q == 0}
    # Edges appear only inside planted parts.
    parts = [set(c) for c in instance.communities]
    for u, v in instance.graph.edges():
        assert any(u in part and v in part for part in parts)


@given(
    count=st.integers(min_value=0, max_value=300),
    exponent=st.floats(min_value=0.5, max_value=3.5),
    low=st.integers(min_value=1, max_value=10),
    span=st.integers(min_value=0, max_value=40),
    seed=st.integers(0, 5),
)
def test_powerlaw_sampling_contract(count, exponent, low, span, seed):
    high = low + span
    values = sample_powerlaw(count, exponent, low, high, seed=seed)
    assert len(values) == count
    assert all(low <= v <= high for v in values)


@given(
    total=st.integers(min_value=10, max_value=500),
    seed=st.integers(0, 5),
)
def test_sizes_always_sum_exactly(total, seed):
    sizes = sample_sizes_to_total(total, 1.0, 10, 50, seed=seed)
    assert sum(sizes) == total
    assert all(s >= 1 for s in sizes)


@settings(max_examples=15, deadline=None)
@given(
    n=st.integers(min_value=0, max_value=40),
    p=st.floats(min_value=0.0, max_value=1.0),
    seed=st.integers(0, 5),
)
def test_erdos_renyi_contract(n, p, seed):
    g = erdos_renyi(n, p, seed=seed)
    assert g.number_of_nodes() == n
    maximum = n * (n - 1) // 2
    assert 0 <= g.number_of_edges() <= maximum
