"""Unit tests for the LFR benchmark generator."""

import pytest

from repro.errors import GeneratorError
from repro.generators import LFRParams, lfr_graph


class TestParams:
    def test_defaults_valid(self):
        LFRParams()

    def test_mu_validated(self):
        with pytest.raises(GeneratorError):
            LFRParams(mu=1.5)

    def test_max_degree_below_n(self):
        with pytest.raises(GeneratorError):
            LFRParams(n=40, max_degree=40)

    def test_average_vs_max_degree(self):
        with pytest.raises(GeneratorError):
            LFRParams(average_degree=60.0, max_degree=50)

    def test_community_bounds(self):
        with pytest.raises(GeneratorError):
            LFRParams(min_community=60, max_community=50)
        with pytest.raises(GeneratorError):
            LFRParams(n=40, max_community=50)


class TestInstance:
    @pytest.fixture(scope="class")
    def instance(self):
        return lfr_graph(LFRParams(n=500, mu=0.3), seed=11)

    def test_node_count(self, instance):
        assert instance.graph.number_of_nodes() == 500

    def test_ground_truth_partitions_nodes(self, instance):
        assert instance.communities.covered_nodes() == set(range(500))
        assert not instance.communities.overlapping_nodes()

    def test_community_sizes_in_bounds(self, instance):
        sizes = instance.communities.size_distribution()
        assert min(sizes) >= instance.params.min_community
        # One community may exceed max via remainder folding; allow slack.
        assert max(sizes) <= instance.params.max_community + instance.params.min_community

    def test_realized_mixing_near_target(self, instance):
        assert instance.realized_mu == pytest.approx(0.3, abs=0.08)

    def test_realized_average_degree_near_target(self, instance):
        assert instance.realized_average_degree == pytest.approx(
            instance.params.average_degree, rel=0.25
        )

    def test_max_degree_respected(self, instance):
        max_degree = max(
            instance.graph.degree(v) for v in instance.graph.nodes()
        )
        assert max_degree <= instance.params.max_degree

    def test_few_dropped_stubs(self, instance):
        total_stubs = 2 * instance.graph.number_of_edges()
        assert instance.dropped_stubs <= 0.05 * total_stubs

    def test_deterministic(self):
        a = lfr_graph(LFRParams(n=200), seed=3)
        b = lfr_graph(LFRParams(n=200), seed=3)
        assert a.graph == b.graph
        assert a.communities == b.communities

    def test_different_seeds_differ(self):
        a = lfr_graph(LFRParams(n=200), seed=3)
        b = lfr_graph(LFRParams(n=200), seed=4)
        assert a.graph != b.graph

    def test_repr(self, instance):
        assert "LFRInstance" in repr(instance)


class TestOverlap:
    PARAMS = LFRParams(n=400, mu=0.3, on=40, om=2, min_community=20, max_community=60)

    def test_on_validated(self):
        with pytest.raises(GeneratorError):
            LFRParams(on=-1)
        with pytest.raises(GeneratorError):
            LFRParams(n=100, max_degree=50, on=101)

    def test_om_validated(self):
        with pytest.raises(GeneratorError):
            LFRParams(om=1)

    def test_om_beyond_sampled_communities(self):
        # 400 nodes in communities of >= 200 leaves at most 2 communities.
        params = LFRParams(
            n=400, on=10, om=5, min_community=200, max_community=200
        )
        with pytest.raises(GeneratorError, match="om"):
            lfr_graph(params, seed=1)

    def test_exactly_on_nodes_overlap(self):
        instance = lfr_graph(self.PARAMS, seed=7)
        memberships = {}
        for block in instance.communities:
            for node in block:
                memberships[node] = memberships.get(node, 0) + 1
        overlapping = {node for node, count in memberships.items() if count > 1}
        assert len(overlapping) == self.PARAMS.on
        assert max(memberships.values()) == self.PARAMS.om
        assert instance.overlapping_nodes == self.PARAMS.on
        assert instance.communities.overlapping_nodes() == overlapping

    def test_overlap_instance_deterministic(self):
        a = lfr_graph(self.PARAMS, seed=7)
        b = lfr_graph(self.PARAMS, seed=7)
        assert a.graph == b.graph
        assert a.communities == b.communities

    def test_overlap_mixing_near_target(self):
        instance = lfr_graph(self.PARAMS, seed=7)
        assert instance.realized_mu == pytest.approx(0.3, abs=0.1)

    def test_disjoint_default_rng_stream_unchanged(self):
        # on defaults to 0 and must not consume any rng draws, so seeded
        # disjoint instances are byte-identical to the pre-knob generator.
        classic = lfr_graph(LFRParams(n=200), seed=3)
        explicit = lfr_graph(LFRParams(n=200, on=0, om=4), seed=3)
        assert classic.graph == explicit.graph
        assert classic.communities == explicit.communities
        assert classic.overlapping_nodes == 0


class TestMixingSweep:
    @pytest.mark.parametrize("mu", [0.1, 0.5, 0.8])
    def test_realized_mu_tracks_parameter(self, mu):
        instance = lfr_graph(LFRParams(n=400, mu=mu), seed=7)
        assert instance.realized_mu == pytest.approx(mu, abs=0.1)

    def test_high_mu_blurs_structure(self):
        low = lfr_graph(LFRParams(n=400, mu=0.1), seed=7)
        high = lfr_graph(LFRParams(n=400, mu=0.8), seed=7)
        from repro.communities import internal_edges

        def internal_fraction(instance):
            total = instance.graph.number_of_edges()
            inside = sum(
                internal_edges(instance.graph, c) for c in instance.communities
            )
            return inside / total

        assert internal_fraction(low) > internal_fraction(high)
