"""The engine's headline guarantee: covers never depend on parallelism.

``oca(g, seed=S, workers=k)`` must return an identical cover for any
worker count and any backend — both at the default ``batch_size`` (1,
the exact sequential semantics) and under real speculative batching.
"""

import pytest

from repro import oca
from repro.generators import LFRParams, daisy_tree, lfr_graph, ring_of_cliques


@pytest.fixture(scope="module")
def daisy():
    return daisy_tree(flowers=5, seed=7).graph


@pytest.fixture(scope="module")
def ring():
    return ring_of_cliques(5, 6)[0]


class TestWorkerCountInvariance:
    @pytest.mark.parametrize("workers", [1, 2, 8])
    def test_daisy_same_cover_any_worker_count(self, daisy, workers):
        baseline = oca(daisy, seed=7, batch_size=16)
        result = oca(daisy, seed=7, workers=workers, batch_size=16)
        assert result.cover == baseline.cover
        assert result.raw_cover == baseline.raw_cover
        assert result.runs == baseline.runs

    @pytest.mark.parametrize("workers", [1, 2, 8])
    def test_ring_same_cover_any_worker_count(self, ring, workers):
        baseline = oca(ring, seed=11, batch_size=16)
        result = oca(ring, seed=11, workers=workers, batch_size=16)
        assert result.cover == baseline.cover

    def test_default_batch_matches_plain_sequential(self, daisy):
        assert (
            oca(daisy, seed=7, workers=8).cover == oca(daisy, seed=7).cover
        )


class TestBackendInvariance:
    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_same_cover_any_backend(self, daisy, backend):
        baseline = oca(daisy, seed=7, batch_size=16)
        result = oca(daisy, seed=7, workers=2, backend=backend, batch_size=16)
        assert result.cover == baseline.cover
        assert result.fitness_values == baseline.fitness_values

    def test_engine_stats_report_resolved_backend(self, daisy):
        auto = oca(daisy, seed=7, workers=2, batch_size=8)
        assert auto.engine_stats.backend == "process"
        assert auto.engine_stats.workers == 2
        serial = oca(daisy, seed=7)
        assert serial.engine_stats.backend == "serial"


class TestLFRInvariance:
    def test_lfr_cover_invariant_under_parallelism(self):
        graph = lfr_graph(LFRParams(n=300, mu=0.2), seed=5).graph
        baseline = oca(graph, seed=5, batch_size=32)
        parallel = oca(graph, seed=5, workers=8, backend="thread", batch_size=32)
        assert parallel.cover == baseline.cover

    def test_repeated_parallel_runs_identical(self, daisy):
        a = oca(daisy, seed=3, workers=4, backend="thread", batch_size=8)
        b = oca(daisy, seed=3, workers=4, backend="thread", batch_size=8)
        assert a.cover == b.cover
        assert a.c == pytest.approx(b.c)
