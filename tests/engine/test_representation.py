"""The CSR tentpole guarantee: representation never changes the cover.

``oca(g, seed=S)`` must return byte-identical covers under
``representation`` in {dict, csr} for every seed, worker count, and
backend — the same contract PR 1 established for parallelism, extended
to the graph representation axis.
"""

import pytest
from hypothesis import given, settings

from repro import oca
from repro.core import LFKFitness, OCAConfig
from repro.errors import ConfigurationError
from repro.generators import LFRParams, daisy_tree, lfr_graph, ring_of_cliques
from repro.graph import Graph

from ..conftest import edge_lists


@pytest.fixture(scope="module")
def daisy():
    return daisy_tree(flowers=5, seed=7).graph


@pytest.fixture(scope="module")
def ring():
    return ring_of_cliques(5, 6)[0]


@pytest.fixture(scope="module")
def lfr():
    return lfr_graph(LFRParams(n=300, mu=0.2), seed=5).graph


def assert_identical(dict_result, csr_result):
    assert csr_result.cover == dict_result.cover
    assert csr_result.raw_cover == dict_result.raw_cover
    assert csr_result.fitness_values == dict_result.fitness_values
    assert csr_result.runs == dict_result.runs
    assert csr_result.c == dict_result.c


class TestAcceptanceMatrix:
    """daisy/ring/LFR x serial/thread/process x workers {1, 2, 8}."""

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    @pytest.mark.parametrize("workers", [1, 2, 8])
    def test_daisy_identical_covers(self, daisy, backend, workers):
        dict_result = oca(
            daisy, seed=7, representation="dict",
            backend=backend, workers=workers, batch_size=16,
        )
        csr_result = oca(
            daisy, seed=7, representation="csr",
            backend=backend, workers=workers, batch_size=16,
        )
        assert_identical(dict_result, csr_result)

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    @pytest.mark.parametrize("workers", [1, 2, 8])
    def test_ring_identical_covers(self, ring, backend, workers):
        dict_result = oca(
            ring, seed=11, representation="dict",
            backend=backend, workers=workers, batch_size=16,
        )
        csr_result = oca(
            ring, seed=11, representation="csr",
            backend=backend, workers=workers, batch_size=16,
        )
        assert_identical(dict_result, csr_result)

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    @pytest.mark.parametrize("workers", [1, 2, 8])
    def test_lfr_identical_covers(self, lfr, backend, workers):
        dict_result = oca(
            lfr, seed=5, representation="dict",
            backend=backend, workers=workers, batch_size=32,
        )
        csr_result = oca(
            lfr, seed=5, representation="csr",
            backend=backend, workers=workers, batch_size=32,
        )
        assert_identical(dict_result, csr_result)


class TestRepresentationSemantics:
    def test_auto_resolves_to_csr_for_default_fitness(self, daisy):
        result = oca(daisy, seed=7)
        assert result.engine_stats.representation == "csr"

    def test_dict_is_forceable(self, daisy):
        result = oca(daisy, seed=7, representation="dict")
        assert result.engine_stats.representation == "dict"

    def test_auto_falls_back_to_dict_for_non_monotone_fitness(self, daisy):
        result = oca(daisy, seed=7, fitness=LFKFitness(alpha=1.0))
        assert result.engine_stats.representation == "dict"

    def test_forcing_csr_with_non_monotone_fitness_raises(self, daisy):
        with pytest.raises(ConfigurationError):
            oca(
                daisy, seed=7,
                representation="csr", fitness=LFKFitness(alpha=1.0),
            )

    def test_invalid_representation_rejected(self):
        with pytest.raises(ConfigurationError):
            OCAConfig(representation="sparse")

    def test_string_labelled_graph_identical(self):
        g = Graph()
        for flower in range(4):
            hub = f"hub{flower}"
            for petal in range(5):
                leaf = f"n{flower}.{petal}"
                g.add_edge(hub, leaf)
                g.add_edge(leaf, f"n{flower}.{(petal + 1) % 5}")
        for flower in range(4):
            g.add_edge(f"hub{flower}", f"hub{(flower + 1) % 4}")
        dict_result = oca(g, seed=3, representation="dict", batch_size=4)
        csr_result = oca(g, seed=3, representation="csr", batch_size=4)
        assert_identical(dict_result, csr_result)

    def test_seed_sweep_identical(self, ring):
        for seed in range(5):
            assert_identical(
                oca(ring, seed=seed, representation="dict"),
                oca(ring, seed=seed, representation="csr"),
            )


@settings(max_examples=15, deadline=None)
@given(edges=edge_lists(max_nodes=12, max_edges=36))
def test_random_graphs_identical_across_representation_and_workers(edges):
    """Covers agree under representation x workers {1, 4} on random graphs."""
    g = Graph(edges=edges)
    if g.number_of_nodes() == 0:
        return
    results = [
        oca(
            g, seed=13, representation=representation,
            workers=workers, backend="thread" if workers > 1 else "serial",
            batch_size=4,
        )
        for representation in ("dict", "csr")
        for workers in (1, 4)
    ]
    baseline = results[0]
    for other in results[1:]:
        assert other.cover == baseline.cover
        assert other.raw_cover == baseline.raw_cover
        assert other.fitness_values == baseline.fitness_values
