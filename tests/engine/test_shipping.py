"""Graph shipping to process workers: shm vs pickle, batched dispatch."""

import os

import pytest

from repro.core.config import OCAConfig
from repro.core.oca import OCA
from repro.engine import ExecutionEngine
from repro.engine.backends import SerialBackend, _chunk
from repro.errors import ConfigurationError
from repro.generators import ring_of_cliques
from repro.graph.shm import SEGMENT_PREFIX, live_segment_names, shm_available

needs_shm = pytest.mark.skipif(
    not shm_available(), reason="shared memory unavailable on this platform"
)


def _dev_shm_entries():
    try:
        return {
            name
            for name in os.listdir("/dev/shm")
            if name.startswith(SEGMENT_PREFIX)
        }
    except FileNotFoundError:  # pragma: no cover - non-Linux
        return set()


@pytest.fixture()
def graph():
    g, _ = ring_of_cliques(4, 5)
    return g


def _cover(graph, shipping, batch_size, backend="process", workers=2):
    config = OCAConfig(
        workers=workers,
        backend=backend,
        batch_size=batch_size,
        shipping=shipping,
    )
    return OCA(config).run(graph, seed=7)


class TestShippingModes:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigurationError, match="shipping"):
            ExecutionEngine(shipping="carrier-pigeon")
        with pytest.raises(ConfigurationError, match="shipping"):
            OCAConfig(shipping="carrier-pigeon")

    def test_shm_requires_a_compiled_graph(self):
        with pytest.raises(ConfigurationError, match="representation"):
            OCAConfig(shipping="shm", representation="dict")

    def test_serial_backend_ships_inline(self, graph):
        result = _cover(graph, "auto", 1, backend="serial", workers=1)
        assert result.engine_stats.shipping == "inline"
        assert "ship=inline" in result.engine_stats.summary()

    @needs_shm
    def test_pickle_and_shm_covers_are_identical(self, graph):
        for batch_size in (1, 8):
            pickled = _cover(graph, "pickle", batch_size)
            shipped = _cover(graph, "shm", batch_size)
            assert pickled.engine_stats.shipping == "pickle"
            assert shipped.engine_stats.shipping == "shm"
            assert shipped.cover == pickled.cover
            assert shipped.raw_cover == pickled.raw_cover

    @needs_shm
    def test_shm_matches_the_serial_reference(self, graph):
        serial = _cover(graph, "auto", 8, backend="serial", workers=1)
        shipped = _cover(graph, "shm", 8)
        assert shipped.cover == serial.cover

    @needs_shm
    def test_ephemeral_run_leaves_no_segments(self, graph):
        before = _dev_shm_entries()
        _cover(graph, "shm", 4)
        assert _dev_shm_entries() == before
        assert not live_segment_names()


@needs_shm
class TestPersistentEngineLifecycle:
    def test_close_releases_segments_after_joining_workers(self, graph):
        from repro.core.fitness import DirectedLaplacianFitness
        from repro.core.halting import StagnationHalting
        from repro.core.seeding import make_seeding
        from repro.graph import compile_graph

        before = _dev_shm_entries()
        engine = ExecutionEngine(
            backend="process", workers=2, batch_size=4,
            shipping="shm", persistent=True,
        )
        try:
            compiled = compile_graph(graph)
            engine.run(
                graph,
                fitness=DirectedLaplacianFitness(0.25),
                seeding=make_seeding("uncovered"),
                halting=StagnationHalting(patience=20),
                seed=7,
                compiled=compiled,
            )
            assert engine._pool_shipping == "shm"
            assert _dev_shm_entries() - before
        finally:
            engine.close()
        assert _dev_shm_entries() == before
        assert not live_segment_names()


class TestBatchedDispatch:
    def test_chunk_is_contiguous_and_complete(self):
        items = list(range(10))
        chunks = list(_chunk(items, 4))
        assert chunks == [[0, 1, 2, 3], [4, 5, 6, 7], [8, 9]]
        with pytest.raises(ConfigurationError):
            list(_chunk(items, 0))

    def test_map_ordered_batched_preserves_order(self):
        backend = SerialBackend()
        try:
            result = backend.map_ordered_batched(
                lambda chunk: [x * 2 for x in chunk], list(range(7)), 3
            )
        finally:
            backend.close()
        assert result == [0, 2, 4, 6, 8, 10, 12]

    def test_worker_calls_counted(self, graph):
        result = _cover(graph, "auto", 8, backend="serial", workers=1)
        stats = result.engine_stats
        assert stats.worker_calls >= 1
        assert stats.worker_calls <= stats.tasks_dispatched

    def test_process_backend_worker_calls_below_task_count(self, graph):
        result = _cover(graph, "pickle", 8)
        stats = result.engine_stats
        # Chunking must actually batch: strictly fewer dispatches than
        # tasks whenever a batch carries more than one task.
        assert 0 < stats.worker_calls < stats.tasks_dispatched
