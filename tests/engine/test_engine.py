"""Unit tests for the scheduler, reducer, and engine orchestration."""

import random

import pytest

from repro._rng import as_master_seed, as_random
from repro.core import (
    CoverageHalting,
    DirectedLaplacianFitness,
    MaxRunsHalting,
    StagnationHalting,
    make_seeding,
)
from repro.engine import BatchScheduler, CoverReducer, ExecutionEngine
from repro.engine.tasks import GrowthTaskResult
from repro.errors import ConfigurationError
from repro.generators import ring_of_cliques, two_cliques_bridged


def _scheduler(graph, batch_size, seed=0, seeding="uncovered"):
    return BatchScheduler(
        graph,
        make_seeding(seeding),
        rng=as_random(seed),
        master_seed=as_master_seed(seed),
        seed_fraction=0.6,
        batch_size=batch_size,
    )


def _result(index, members, seed_node=None, fitness=1.0):
    members = frozenset(members)
    if seed_node is None:
        seed_node = next(iter(members))
    return GrowthTaskResult(
        index=index,
        seed_node=seed_node,
        members=members,
        fitness_value=fitness,
        steps=1,
        converged=True,
    )


class TestBatchScheduler:
    def test_batch_size_respected(self):
        g, _ = ring_of_cliques(4, 5)
        batch = _scheduler(g, batch_size=6).next_batch(set())
        assert len(batch) == 6

    def test_indices_are_global_and_sequential(self):
        g, _ = ring_of_cliques(4, 5)
        scheduler = _scheduler(g, batch_size=5)
        first = scheduler.next_batch(set())
        second = scheduler.next_batch(set())
        assert [t.index for t in first + second] == list(range(10))
        assert scheduler.tasks_issued == 10

    def test_initial_members_contain_seed_node(self):
        g, _ = ring_of_cliques(4, 5)
        for task in _scheduler(g, batch_size=8).next_batch(set()):
            assert task.seed_node in task.initial_members

    def test_deterministic_task_stream(self):
        g, _ = ring_of_cliques(4, 5)
        a = _scheduler(g, batch_size=20).next_batch(set())
        b = _scheduler(g, batch_size=20).next_batch(set())
        assert a == b

    def test_exhaustion_on_full_coverage(self):
        g, _ = ring_of_cliques(3, 4)
        scheduler = _scheduler(g, batch_size=4)
        assert scheduler.next_batch(set(g.nodes())) == []
        assert scheduler.exhausted

    def test_rng_streams_differ_per_task(self):
        g, _ = ring_of_cliques(4, 5)
        batch = _scheduler(g, batch_size=10).next_batch(set())
        seeds = {task.rng_seed for task in batch}
        assert len(seeds) == len(batch)

    def test_invalid_batch_size(self):
        g, _ = ring_of_cliques(3, 4)
        with pytest.raises(ConfigurationError):
            _scheduler(g, batch_size=0)


class TestCoverReducer:
    def test_dedup_and_coverage(self):
        reducer = CoverReducer(10, 1, StagnationHalting(patience=5))
        reducer.fold([_result(0, {1, 2, 3}), _result(1, {1, 2, 3}), _result(2, {4, 5})])
        assert len(reducer.found) == 2
        assert reducer.duplicate_runs == 1
        assert reducer.covered == {1, 2, 3, 4, 5}
        assert reducer.stats.covered_fraction == pytest.approx(0.5)

    def test_small_communities_discarded(self):
        reducer = CoverReducer(10, 3, StagnationHalting(patience=5))
        reducer.fold([_result(0, {1, 2})])
        assert reducer.discarded_small == 1
        assert not reducer.found

    def test_fold_sorts_by_task_index(self):
        reducer = CoverReducer(10, 1, MaxRunsHalting(max_runs=1))
        # Result 1 arrives before result 0; only index 0 must be folded.
        stopped = reducer.fold([_result(1, {4, 5}), _result(0, {1, 2})])
        assert stopped
        assert list(reducer.found) == [frozenset({1, 2})]

    def test_halting_discards_remainder(self):
        reducer = CoverReducer(10, 1, MaxRunsHalting(max_runs=2))
        stopped = reducer.fold([_result(i, {i}) for i in range(6)])
        assert stopped
        assert reducer.stats.runs == 2
        assert reducer.discarded_after_halt == 4

    def test_consecutive_duplicates_reset(self):
        reducer = CoverReducer(10, 1, StagnationHalting(patience=50))
        reducer.fold([_result(0, {1, 2}), _result(1, {1, 2}), _result(2, {3, 4})])
        assert reducer.stats.consecutive_duplicates == 0

    def test_stale_seed_skipped_without_counting(self):
        reducer = CoverReducer(
            10, 1, MaxRunsHalting(max_runs=100), skip_stale_seeds=True
        )
        reducer.fold(
            [
                _result(0, {1, 2, 3}, seed_node=1),
                # Seed node 2 was covered by result 0: a sequential run
                # would never have launched this task.
                _result(1, {1, 2, 3, 4}, seed_node=2),
                _result(2, {7, 8}, seed_node=7),
            ]
        )
        assert reducer.discarded_stale == 1
        assert reducer.stats.runs == 2
        assert frozenset({1, 2, 3, 4}) not in reducer.found


class TestEngineHaltingEquivalence:
    """Batched execution honours the sequential stopping semantics."""

    def _run(self, halting, batch_size, workers=1, backend="serial", seed=3):
        g, _ = ring_of_cliques(6, 5)
        engine = ExecutionEngine(
            backend=backend, workers=workers, batch_size=batch_size
        )
        return engine.run(
            g,
            fitness=DirectedLaplacianFitness(0.25),
            seeding=make_seeding("random"),
            halting=halting,
            seed=seed,
            min_community_size=2,
        )

    def test_max_runs_never_overshoots(self):
        for batch_size in (1, 4, 16):
            outcome = self._run(MaxRunsHalting(max_runs=5), batch_size)
            assert outcome.run_stats.runs == 5

    def test_batched_matches_sequential_stats(self):
        # Random seeding consumes one RNG draw per proposal regardless of
        # coverage, so a fixed run budget yields identical folded runs,
        # covers, and statistics for every batch size.
        sequential = self._run(MaxRunsHalting(max_runs=10), batch_size=1)
        for batch_size in (2, 5, 16):
            batched = self._run(MaxRunsHalting(max_runs=10), batch_size=batch_size)
            assert batched.found == sequential.found
            assert batched.run_stats == sequential.run_stats

    def test_coverage_halting_respected(self):
        outcome = self._run(
            CoverageHalting(target_fraction=0.5, max_runs=1000), batch_size=8
        )
        assert outcome.run_stats.covered_fraction >= 0.5

    def test_speculative_results_accounted(self):
        outcome = self._run(MaxRunsHalting(max_runs=3), batch_size=16)
        stats = outcome.engine_stats
        assert stats.tasks_dispatched == stats.tasks_folded + stats.tasks_discarded
        assert stats.tasks_discarded >= 13
        assert 0.0 < stats.speculation_waste < 1.0

    def test_stagnation_halting_terminates(self):
        outcome = self._run(StagnationHalting(patience=5), batch_size=8)
        assert outcome.run_stats.runs > 0

    def test_engine_stats_summary_renders(self):
        outcome = self._run(MaxRunsHalting(max_runs=4), batch_size=4)
        summary = outcome.engine_stats.summary()
        assert "serial" in summary and "batch=4" in summary


class TestStalenessGuard:
    def test_no_merged_blob_under_speculation(self):
        """The guard keeps batched covers faithful on overlap instances:
        without it, a speculative task seeded inside an already-found
        clique can grow the two-clique union and wreck the cover."""
        from repro import oca
        from repro.communities import theta

        g, truth = two_cliques_bridged(6, 2)
        result = oca(g, seed=1, workers=2, backend="thread", batch_size=16)
        assert theta(truth, result.cover) == pytest.approx(1.0)

    def test_progress_callback_invoked(self):
        records = []
        g, _ = ring_of_cliques(4, 5)
        engine = ExecutionEngine(batch_size=4, progress=records.append)
        engine.run(
            g,
            fitness=DirectedLaplacianFitness(0.25),
            seeding=make_seeding("uncovered"),
            halting=StagnationHalting(patience=10),
            seed=0,
            min_community_size=2,
        )
        assert records
        assert sum(r.tasks for r in records) > 0


class TestCloseHooks:
    """Pool shutdown hooks: the serving layer's lifecycle signal."""

    def _run(self, engine, graph):
        return engine.run(
            graph,
            fitness=DirectedLaplacianFitness(0.25),
            seeding=make_seeding("uncovered"),
            halting=StagnationHalting(patience=10),
            seed=0,
            min_community_size=2,
        )

    def test_hook_fires_on_each_real_teardown(self):
        g, _ = ring_of_cliques(4, 5)
        closures = []
        engine = ExecutionEngine(persistent=True)
        engine.add_close_hook(lambda: closures.append("closed"))
        self._run(engine, g)
        assert engine.pool_active
        assert closures == []
        engine.close()
        assert closures == ["closed"]
        assert not engine.pool_active
        engine.close()  # nothing open: no extra firing
        assert closures == ["closed"]

    def test_hook_fires_when_incompatible_context_replaces_pool(self):
        g, _ = ring_of_cliques(4, 5)
        closures = []
        engine = ExecutionEngine(persistent=True)
        engine.add_close_hook(lambda: closures.append("closed"))
        self._run(engine, g)
        # A different fitness ships an incompatible context: the old
        # pool must be torn down (hook fires) before the new one opens.
        engine.run(
            g,
            fitness=DirectedLaplacianFitness(0.5),
            seeding=make_seeding("uncovered"),
            halting=StagnationHalting(patience=10),
            seed=0,
            min_community_size=2,
        )
        assert closures == ["closed"]
        engine.close()
        assert closures == ["closed", "closed"]

    def test_non_persistent_engine_never_holds_a_pool(self):
        g, _ = ring_of_cliques(4, 5)
        engine = ExecutionEngine()
        self._run(engine, g)
        assert not engine.pool_active
