"""Unit tests for the execution backends."""

import pytest

from repro.engine.backends import (
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    available_backends,
    make_backend,
    register_backend,
    resolve_backend_name,
)
from repro.errors import ConfigurationError


def _square(x):
    return x * x


class TestSerialBackend:
    def test_map_ordered(self):
        backend = SerialBackend()
        assert backend.map_ordered(_square, [1, 2, 3]) == [1, 4, 9]

    def test_initializer_runs(self):
        calls = []
        SerialBackend(initializer=calls.append, initargs=("ctx",))
        assert calls == ["ctx"]

    def test_empty_items(self):
        assert SerialBackend().map_ordered(_square, []) == []


class TestThreadBackend:
    def test_map_ordered_preserves_order(self):
        with ThreadBackend(4) as backend:
            assert backend.map_ordered(_square, list(range(50))) == [
                x * x for x in range(50)
            ]

    def test_close_idempotent(self):
        backend = ThreadBackend(2)
        backend.map_ordered(_square, [1])
        backend.close()
        backend.close()

    def test_rejects_zero_workers(self):
        with pytest.raises(ConfigurationError):
            ThreadBackend(0)


class TestProcessBackend:
    def test_map_ordered_preserves_order(self):
        with ProcessBackend(2) as backend:
            assert backend.map_ordered(_square, list(range(20))) == [
                x * x for x in range(20)
            ]

    def test_uses_processes_flag(self):
        assert ProcessBackend(2).uses_processes
        assert not ThreadBackend(2).uses_processes
        assert not SerialBackend().uses_processes


class TestFactory:
    def test_auto_resolution(self):
        assert resolve_backend_name("auto", 1) == "serial"
        assert resolve_backend_name("auto", 4) == "process"
        assert resolve_backend_name("thread", 1) == "thread"

    def test_make_backend_names(self):
        assert make_backend("serial").name == "serial"
        assert make_backend("thread", 2).name == "thread"
        assert make_backend("auto", 1).name == "serial"

    def test_zero_workers_means_cpu_count(self):
        backend = make_backend("thread", 0)
        assert backend.workers >= 1

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            make_backend("quantum", 2)

    def test_negative_workers_rejected(self):
        with pytest.raises(ConfigurationError):
            make_backend("serial", -1)

    def test_register_custom_backend(self):
        class EchoBackend(SerialBackend):
            name = "echo"

        register_backend("echo", EchoBackend)
        try:
            assert "echo" in available_backends()
            assert make_backend("echo").name == "echo"
        finally:
            from repro.engine import backends as backends_module

            backends_module._BACKENDS.pop("echo", None)
