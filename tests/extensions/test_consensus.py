"""Unit tests for consensus covers."""

import pytest

from repro.communities import Cover, theta
from repro.errors import CommunityError
from repro.extensions import (
    co_membership,
    consensus_cover,
    consensus_oca,
    cover_stability,
)
from repro.generators import ring_of_cliques, two_cliques_bridged


class TestCoMembership:
    def test_counts_pairs(self):
        covers = [Cover([{1, 2, 3}]), Cover([{1, 2}, {3}])]
        counts = co_membership(covers)
        assert counts[(1, 2)] == 2
        assert counts[(1, 3)] == 1
        assert counts[(2, 3)] == 1

    def test_overlapping_communities_count_once_per_cover(self):
        cover = Cover([{1, 2, 3}, {2, 3, 4}])
        counts = co_membership([cover])
        assert counts[(2, 3)] == 1  # pair in two communities, one cover

    def test_empty_input(self):
        assert co_membership([]) == {}


class TestConsensusCover:
    def test_unanimous_covers_survive(self):
        cover = Cover([{1, 2, 3}, {4, 5, 6}])
        consensus = consensus_cover([cover, cover, cover])
        assert consensus == cover

    def test_minority_pairs_dropped(self):
        majority = Cover([{1, 2, 3}])
        outlier = Cover([{1, 2}, {3, 9}])
        consensus = consensus_cover([majority, majority, outlier], threshold=0.6)
        assert {1, 2, 3} in consensus
        assert not any(9 in community for community in consensus)

    def test_threshold_validated(self):
        with pytest.raises(CommunityError):
            consensus_cover([Cover([{1}])], threshold=0.0)

    def test_empty_input_raises(self):
        with pytest.raises(CommunityError):
            consensus_cover([])

    def test_singletons_dropped(self):
        covers = [Cover([{1, 2}, {9}])] * 2
        consensus = consensus_cover(covers)
        assert {9} not in consensus
        assert {1, 2} in consensus


class TestStability:
    def test_identical_covers_fully_stable(self):
        cover = Cover([{1, 2, 3}, {4, 5}])
        assert cover_stability([cover, cover, cover]) == pytest.approx(1.0)

    def test_disagreeing_covers_less_stable(self):
        a = Cover([{1, 2, 3}, {4, 5, 6}])
        b = Cover([{1, 2}, {3, 4}, {5, 6}])
        assert cover_stability([a, b]) < 1.0

    def test_needs_two_covers(self):
        with pytest.raises(CommunityError):
            cover_stability([Cover([{1}])])


class TestConsensusOCA:
    def test_stable_instance_full_agreement(self):
        g, truth = ring_of_cliques(4, 6)
        result = consensus_oca(g, runs=3, seed=0)
        assert result.stability == pytest.approx(1.0)
        assert theta(truth, result.cover) == pytest.approx(1.0)

    def test_overlap_preserved_in_consensus(self):
        g, truth = two_cliques_bridged(7, 2)
        result = consensus_oca(g, runs=3, seed=1)
        assert theta(truth, result.cover) >= 0.9

    def test_runs_recorded(self):
        g, _ = ring_of_cliques(3, 4)
        result = consensus_oca(g, runs=4, seed=0)
        assert len(result.runs) == 4

    def test_runs_validated(self):
        g, _ = ring_of_cliques(3, 4)
        with pytest.raises(CommunityError):
            consensus_oca(g, runs=0)

    def test_repr(self):
        g, _ = ring_of_cliques(3, 4)
        assert "ConsensusResult" in repr(consensus_oca(g, runs=2, seed=0))
