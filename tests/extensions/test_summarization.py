"""Unit tests for the graph summarization extension."""

import pytest

from repro.communities import Cover
from repro.errors import CommunityError
from repro.extensions import (
    RESIDUAL,
    GraphSummaryModel,
    reconstruction_error,
    summarize_graph,
)
from repro.generators import complete_graph, ring_of_cliques, two_cliques_bridged
from repro.graph import Graph


class TestSummarizeGraph:
    def test_supernode_per_community(self):
        g, cover = ring_of_cliques(4, 5)
        model = summarize_graph(g, cover)
        assert len(model.supernodes) == 4

    def test_supernode_statistics(self):
        g, cover = ring_of_cliques(4, 5)
        model = summarize_graph(g, cover)
        for supernode in model.supernodes:
            assert supernode.size == 5
            assert supernode.internal_edges == 10
            assert supernode.internal_density == pytest.approx(1.0)

    def test_superedges_are_ring_bridges(self):
        g, cover = ring_of_cliques(4, 5)
        model = summarize_graph(g, cover)
        assert len(model.superedges) == 4
        assert all(e.cross_edges == 1 for e in model.superedges)

    def test_shared_nodes_tracked(self):
        g, cover = two_cliques_bridged(6, 2)
        model = summarize_graph(g, cover)
        assert len(model.superedges) == 1
        assert model.superedges[0].shared_nodes == 2

    def test_residual_supernode_for_orphans(self):
        g = complete_graph(4)
        g.add_edge(0, 77)
        g.add_edge(77, 78)
        model = summarize_graph(g, Cover([{0, 1, 2, 3}]))
        residual = model.supernode(RESIDUAL)
        assert residual.size == 2
        assert residual.internal_edges == 1

    def test_membership_total(self):
        g, cover = ring_of_cliques(3, 4)
        model = summarize_graph(g, cover)
        assert set(model.membership) == set(g.nodes())

    def test_compression_ratio_positive(self):
        g, cover = ring_of_cliques(5, 6)
        model = summarize_graph(g, cover)
        assert model.compression_ratio() > 5.0

    def test_supernode_lookup_missing(self):
        g, cover = ring_of_cliques(3, 4)
        model = summarize_graph(g, cover)
        with pytest.raises(KeyError):
            model.supernode(99)


class TestExpectedAdjacency:
    @pytest.fixture
    def model(self):
        g, cover = ring_of_cliques(3, 5)
        return summarize_graph(g, cover), g

    def test_intra_community_pair(self, model):
        summary, _ = model
        assert summary.expected_adjacency(0, 1) == pytest.approx(1.0)

    def test_cross_community_pair(self, model):
        summary, _ = model
        # Bridge density: 1 cross edge / 25 possible pairs.
        assert summary.expected_adjacency(0, 5) == pytest.approx(1 / 25)

    def test_self_pair_zero(self, model):
        summary, _ = model
        assert summary.expected_adjacency(0, 0) == 0.0

    def test_overlap_pair_uses_best_shared_community(self):
        g, cover = two_cliques_bridged(6, 2)
        model = summarize_graph(g, cover)
        # Two shared nodes sit in both cliques (density 1 each).
        shared = sorted(cover.overlapping_nodes())
        assert model.expected_adjacency(shared[0], shared[1]) == pytest.approx(1.0)


class TestReconstructionError:
    def test_perfect_summary_of_disjoint_cliques(self):
        g = Graph(edges=[(0, 1), (1, 2), (0, 2), (5, 6)])
        cover = Cover([{0, 1, 2}, {5, 6}])
        model = summarize_graph(g, cover)
        assert reconstruction_error(g, model) == pytest.approx(0.0)

    def test_better_cover_means_lower_error(self):
        g, truth = ring_of_cliques(4, 5)
        good = summarize_graph(g, truth)
        bad = summarize_graph(g, Cover([set(g.nodes())]))
        assert reconstruction_error(g, good) < reconstruction_error(g, bad)

    def test_small_graph_validated(self):
        g = Graph(nodes=[1])
        with pytest.raises(CommunityError):
            reconstruction_error(g, summarize_graph(g, Cover([{1}])))

    def test_error_bounds(self):
        g, truth = ring_of_cliques(3, 4)
        model = summarize_graph(g, truth)
        assert 0.0 <= reconstruction_error(g, model) <= 1.0
