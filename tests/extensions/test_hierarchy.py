"""Unit tests for the community hierarchy extension."""

import pytest

from repro.communities import Cover
from repro.errors import CommunityError
from repro.extensions import (
    community_graph,
    containment_forest,
    hierarchical_oca,
)
from repro.generators import daisy_graph, ring_of_cliques, two_cliques_bridged
from repro.graph import Graph


class TestCommunityGraph:
    def test_overlap_recorded(self):
        g, cover = two_cliques_bridged(6, 2)
        relations = community_graph(g, cover)
        assert len(relations) == 1
        relation = relations[0]
        assert relation.shared_nodes == 2

    def test_cross_edges_recorded(self):
        g, cover = ring_of_cliques(3, 5)
        relations = community_graph(g, cover)
        # Ring: each adjacent clique pair joined by one bridge edge.
        assert len(relations) == 3
        assert all(r.cross_edges == 1 and r.shared_nodes == 0 for r in relations)

    def test_unrelated_communities_omitted(self):
        g = Graph(edges=[(0, 1), (10, 11)])
        cover = Cover([{0, 1}, {10, 11}])
        assert community_graph(g, cover) == []

    def test_daisy_relations_star_shaped(self):
        instance = daisy_graph(seed=3)
        relations = community_graph(instance.graph, instance.communities)
        core_id = instance.core_ids[0]
        petal_core = [
            r for r in relations if core_id in (r.a, r.b) and r.shared_nodes > 0
        ]
        # Every petal overlaps the core in exactly one node.
        assert len(petal_core) == len(instance.petal_ids)
        assert all(r.shared_nodes == 1 for r in petal_core)


class TestContainmentForest:
    def test_nested_communities(self):
        cover = Cover([{1, 2, 3, 4, 5, 6}, {1, 2, 3}, {4, 5}])
        parents = containment_forest(cover)
        assert parents[1] == 0
        assert parents[2] == 0
        assert parents[0] is None

    def test_smallest_container_wins(self):
        cover = Cover([set(range(10)), set(range(6)), {0, 1}])
        parents = containment_forest(cover)
        assert parents[2] == 1  # the 6-set, not the 10-set

    def test_partial_overlap_not_containment(self):
        cover = Cover([{1, 2, 3, 4}, {3, 4, 5, 6, 7}])
        parents = containment_forest(cover, containment=0.9)
        assert parents == {0: None, 1: None}

    def test_containment_threshold(self):
        cover = Cover([{1, 2, 3, 4, 5}, {1, 2, 3, 9}])
        # 3 of 4 members contained = 0.75.
        assert containment_forest(cover, containment=0.7)[1] == 0
        assert containment_forest(cover, containment=0.9)[1] is None

    def test_threshold_validated(self):
        with pytest.raises(CommunityError):
            containment_forest(Cover([{1}]), containment=0.0)


class TestHierarchicalOCA:
    def test_finest_level_finds_cliques(self):
        g, truth = ring_of_cliques(4, 5)
        hierarchy = hierarchical_oca(g, levels=2, seed=0)
        from repro.communities import theta

        assert theta(truth, hierarchy[0].cover) == pytest.approx(1.0)

    def test_levels_coarsen_monotonically(self):
        g, _ = ring_of_cliques(6, 5)
        hierarchy = hierarchical_oca(g, levels=3, seed=0)
        counts = [len(level.cover) for level in hierarchy]
        assert all(a > b for a, b in zip(counts, counts[1:]))

    def test_daisy_tree_agglomerates_toward_flowers(self):
        from repro.generators import daisy_tree

        instance = daisy_tree(flowers=4, seed=11)
        hierarchy = hierarchical_oca(instance.graph, levels=2, seed=11)
        assert len(hierarchy) == 2
        # Level 1 groups petals+cores into far fewer super-communities.
        assert len(hierarchy[1].cover) < len(hierarchy[0].cover) / 2

    def test_coarser_levels_cover_no_fewer_nodes(self):
        g, _ = ring_of_cliques(5, 5)
        hierarchy = hierarchical_oca(g, levels=3, seed=0)
        covered = [len(level.cover.covered_nodes()) for level in hierarchy]
        assert all(a <= b for a, b in zip(covered, covered[1:]))

    def test_single_community_stops_recursion(self):
        from repro.generators import complete_graph

        hierarchy = hierarchical_oca(complete_graph(6), levels=4, seed=0)
        assert len(hierarchy) == 1

    def test_levels_validated(self):
        g, _ = ring_of_cliques(3, 4)
        with pytest.raises(CommunityError):
            hierarchical_oca(g, levels=0)

    def test_level_indices_sequential(self):
        g, _ = ring_of_cliques(6, 5)
        hierarchy = hierarchical_oca(g, levels=3, seed=0)
        assert [level.level for level in hierarchy] == list(range(len(hierarchy)))

    def test_repr(self):
        g, _ = ring_of_cliques(3, 4)
        level = hierarchical_oca(g, levels=1, seed=0)[0]
        assert "HierarchyLevel" in repr(level)
