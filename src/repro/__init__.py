"""repro — reproduction of *Overlapping Community Search for Social
Networks* (Padrol-Sureda, Perarnau-Llobet, Pfeifle, Muntés-Mulero;
ICDE 2010).

The package implements:

* **OCA**, the paper's overlapping community search algorithm
  (:mod:`repro.core`), including the virtual vector representation, the
  spectral computation of ``c = -1/lambda_min`` via the power method, and
  the directed-Laplacian fitness;
* the **baselines** it compares against — LFK local fitness optimisation
  and CFinder k-clique percolation (:mod:`repro.baselines`);
* a **unified detector API** (:mod:`repro.detectors`): every algorithm
  registers under a string key and speaks one
  :class:`~repro.detection.DetectionRequest` /
  :class:`~repro.detection.DetectionResult` contract —
  ``get_detector("oca" | "lfk" | "cfinder" | "cpm")`` — while
  :class:`~repro.detectors.GraphSession` binds one graph and amortises
  its expensive artifacts (compiled CSR form, spectral ``c``, warm
  worker pool) across repeated detections;
* a **multi-graph serving layer** (:mod:`repro.serving`):
  :class:`~repro.serving.SessionManager` keeps a bounded LRU of warm
  sessions keyed by content fingerprint,
  :class:`~repro.serving.ServingQueue` adds bounded asynchronous
  admission with backpressure and deadline-aware request shedding, and
  ``repro-oca serve`` exposes both as a JSONL request/response
  front-end — batch (stdin/files) or TCP
  (:class:`~repro.serving.ServingServer`, ``--listen HOST:PORT``, with
  round-robin per-client fairness);
* **warm-start persistence** (:mod:`repro.store`):
  :class:`~repro.store.GraphStore` saves compiled graphs (CSR arrays,
  labels, spectral cache) to disk keyed by fingerprint — atomically
  written, checksum-verified, mmap-loaded — and
  :class:`~repro.store.StoreWarmer` pre-warms a restarted server's
  most-recently-used graphs (``repro-oca serve --store-dir``);
* the **benchmarks** of its evaluation — the LFR generator, the daisy /
  daisy-tree overlapping benchmark, and a Wikipedia-scale synthetic graph
  (:mod:`repro.generators`);
* the **quality measures** ``rho`` (Eq. V.1) and ``Theta`` (Eq. V.2)
  plus standard metrics (:mod:`repro.communities`);
* a self-contained **graph substrate** (:mod:`repro.graph`) — a mutable
  label-keyed :class:`~repro.graph.Graph` plus an immutable compiled CSR
  form (:func:`~repro.graph.compile_graph`) on which the greedy hot path
  runs in vectorised integer-id space — and the **experiment harness**
  regenerating every table and figure (:mod:`repro.experiments`);
* a pluggable **execution engine** (:mod:`repro.engine`) that fans the
  repeated local searches out over serial/thread/process worker pools
  with deterministic per-task RNG streams; covers are identical for any
  worker count and backend (``batch_size > 1`` opts into the
  speculative batching that makes the workers useful; the default of 1
  is exactly sequential).

Quickstart::

    from repro import DetectionRequest, GraphSession, get_detector
    from repro.generators import daisy_tree

    instance = daisy_tree(flowers=5, seed=7)

    # one-shot detection through the registry
    result = get_detector("oca").detect(
        DetectionRequest(graph=instance.graph, seed=7)
    )
    for community in result.cover:
        print(sorted(community))

    # repeated detection: graph setup paid exactly once
    with GraphSession(instance.graph) as session:
        covers = [session.detect("oca", seed=s).cover for s in range(10)]

The original entry points ``oca()`` / ``lfk()`` / ``cfinder()`` remain
as compatibility wrappers with unchanged outputs.
"""

from .errors import (
    ReproError,
    GraphError,
    NodeNotFoundError,
    EdgeNotFoundError,
    GraphFormatError,
    CommunityError,
    EmptyCommunityError,
    GeneratorError,
    AlgorithmError,
    ConvergenceError,
    ConfigurationError,
    ServingError,
    SessionClosedError,
    QueueFull,
    DeadlineExceeded,
)
from .graph import CompiledGraph, Graph, compile_graph
from .communities import Community, Cover, Partition, rho, theta
from .detection import DetectionRequest, DetectionResult
from .core import OCA, OCAConfig, OCAResult, oca, admissible_c
from .engine import EngineStats, ExecutionEngine, make_backend
from .baselines import cfinder, lfk, clique_percolation
from .detectors import (
    CommunityDetector,
    GraphSession,
    SessionStats,
    available_detectors,
    get_detector,
    register_detector,
)
from .serving import (
    ManagerStats,
    ServeRequest,
    ServingQueue,
    ServingServer,
    ServingService,
    SessionManager,
    graph_fingerprint,
)
from .store import GraphStore, StoreStats, StoreWarmer

__version__ = "1.6.0"

__all__ = [
    "__version__",
    "ReproError",
    "GraphError",
    "NodeNotFoundError",
    "EdgeNotFoundError",
    "GraphFormatError",
    "CommunityError",
    "EmptyCommunityError",
    "GeneratorError",
    "AlgorithmError",
    "ConvergenceError",
    "ConfigurationError",
    "Graph",
    "CompiledGraph",
    "compile_graph",
    "Community",
    "Cover",
    "Partition",
    "rho",
    "theta",
    "DetectionRequest",
    "DetectionResult",
    "CommunityDetector",
    "register_detector",
    "get_detector",
    "available_detectors",
    "GraphSession",
    "SessionStats",
    "ServingError",
    "SessionClosedError",
    "QueueFull",
    "DeadlineExceeded",
    "graph_fingerprint",
    "SessionManager",
    "ManagerStats",
    "ServingQueue",
    "ServeRequest",
    "ServingServer",
    "ServingService",
    "GraphStore",
    "StoreStats",
    "StoreWarmer",
    "OCA",
    "OCAConfig",
    "OCAResult",
    "oca",
    "admissible_c",
    "ExecutionEngine",
    "EngineStats",
    "make_backend",
    "cfinder",
    "lfk",
    "clique_percolation",
]
