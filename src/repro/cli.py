"""Command-line interface: ``repro-oca`` / ``python -m repro``.

Subcommands:

``detect``
    Run any registered detector (``oca`` by default; also ``lfk``,
    ``cfinder``, ``cpm``) on an edge-list file and write the cover (one
    community per line) to stdout or a file.  Dispatch goes through the
    detector registry, so downstream algorithms registered with
    :func:`repro.detectors.register_detector` are equally reachable from
    the experiment harness.
``serve``
    The multi-graph serving front-end: read JSONL detection requests
    (stdin or a batch file), dispatch them through a
    :class:`~repro.serving.SessionManager` + bounded
    :class:`~repro.serving.ServingQueue`, and emit one JSON result per
    request with latency and queue-depth annotations (see
    :mod:`repro.serving.service` for both schemas).  With
    ``--listen HOST:PORT`` the same stack is served over TCP instead
    (:mod:`repro.serving.server`): one JSONL stream per connection,
    round-robin admission across clients, per-client in-flight caps,
    and ``deadline_seconds`` request shedding.  With
    ``--http HOST:PORT`` (alone or alongside ``--listen``) the stack
    also serves HTTP/1.1 (:mod:`repro.serving.http`): ``GET /health``
    readiness, ``GET /metrics`` Prometheus scrapes, and
    ``POST /detect`` for the same JSONL schema; ``--stats-interval``
    prints a periodic one-line stats summary to stderr.
``experiment``
    Regenerate one paper artefact (table1, figure2 .. figure6,
    wikipedia) and print its data table.
``info``
    Summarise a graph file (the Table-I statistics).
``generate``
    Emit a benchmark instance (lfr / daisy / wikipedia) as an edge-list
    file, optionally with its planted ground-truth cover.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import __version__
from .communities import write_cover
from .experiments import (
    run_figure2,
    run_figure3,
    run_figure4,
    run_figure5,
    run_figure6,
    run_table1,
    run_wikipedia,
    run_algorithm,
)
from .graph import read_edge_list, summarize

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro-oca",
        description=(
            "Overlapping Community Search (ICDE 2010) reproduction: run OCA "
            "and baselines, regenerate the paper's tables and figures."
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    detect = subparsers.add_parser(
        "detect", help="find overlapping communities in an edge-list file"
    )
    detect.add_argument("graph", help="path to an edge-list file (u v per line)")
    detect.add_argument(
        "--algorithm",
        type=str.lower,
        choices=["oca", "lfk", "cfinder", "cpm", "modularity_greedy"],
        default="oca",
        help=(
            "which registered detector to run (default: oca); "
            "case-insensitive, so the paper's labels OCA/LFK/CFinder "
            "work too"
        ),
    )
    detect.add_argument("--seed", type=int, default=None, help="random seed")
    detect.add_argument(
        "--output", default=None, help="write the cover here instead of stdout"
    )
    detect.add_argument(
        "--raw",
        action="store_true",
        help="skip post-processing (merging and orphan assignment)",
    )
    detect.add_argument(
        "--workers",
        type=int,
        default=1,
        help=(
            "worker-pool size for the execution engine (0 = one per CPU; "
            "the cover is identical for any value; pair with --batch-size "
            "to actually keep the workers busy)"
        ),
    )
    detect.add_argument(
        "--backend",
        choices=["auto", "serial", "thread", "process"],
        default="auto",
        help="execution backend (auto = serial for 1 worker, processes otherwise)",
    )
    detect.add_argument(
        "--batch-size",
        type=int,
        default=None,
        help=(
            "local searches dispatched per batch; 1 (default) is exactly "
            "the sequential algorithm, a few times --workers enables "
            "speculative parallelism"
        ),
    )
    detect.add_argument(
        "--representation",
        choices=["auto", "dict", "csr"],
        default="auto",
        help=(
            "graph representation for the greedy hot path: csr (compiled "
            "int32 arrays, the fast integer-id kernel), dict (the "
            "label-keyed adjacency map), or auto (csr whenever the fitness "
            "allows it); the cover is identical either way"
        ),
    )
    detect.add_argument(
        "--shipping",
        choices=["auto", "shm", "pickle"],
        default="auto",
        help=(
            "how compiled graphs reach process workers: shm (zero-copy "
            "shared-memory attach), pickle (serialised per worker), or "
            "auto (shm whenever the process backend would otherwise "
            "pickle); the cover is identical either way"
        ),
    )
    detect.add_argument(
        "--spectral-solver",
        choices=["power", "lanczos"],
        default="power",
        help=(
            "how the admissible c is resolved on a spectral-cache miss: "
            "the paper's power method (default) or scipy's Lanczos "
            "(eigsh) — several times faster cold, identical within the "
            "spectral tolerance"
        ),
    )

    serve = subparsers.add_parser(
        "serve",
        help=(
            "serve JSONL detection requests over many graphs through a "
            "session manager and a bounded request queue"
        ),
    )
    serve.add_argument(
        "--listen",
        default=None,
        metavar="HOST:PORT",
        help=(
            "serve over TCP instead of stdin/stdout: bind here (port 0 "
            "picks a free port), speak the same JSONL request/response "
            "schema per connection, round-robin admission across "
            "clients; stop with Ctrl-C"
        ),
    )
    serve.add_argument(
        "--http",
        default=None,
        metavar="HOST:PORT",
        help=(
            "also (or instead) serve HTTP/1.1 here (port 0 picks a free "
            "port): GET /health readiness, GET /metrics Prometheus "
            "scrape, POST /detect with a JSONL body — same schema, "
            "byte-identical covers; runnable alongside --listen on one "
            "shared session stack"
        ),
    )
    serve.add_argument(
        "--stats-interval",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "socket/HTTP modes: print a one-line serving-stats summary "
            "to stderr every SECONDS while running"
        ),
    )
    serve.add_argument(
        "--client-inflight",
        type=int,
        default=8,
        help=(
            "socket mode: per-client cap on outstanding requests; lines "
            "beyond it are answered ok:false \"queue full\" immediately"
        ),
    )
    serve.add_argument(
        "--requests",
        default=None,
        help="JSONL request file (default: read stdin until EOF)",
    )
    serve.add_argument(
        "--output",
        default=None,
        help="write JSON responses here, one per line (default: stdout)",
    )
    serve.add_argument(
        "--max-sessions",
        type=int,
        default=4,
        help="bounded LRU size: warm graph sessions kept resident",
    )
    serve.add_argument(
        "--max-memory-mb",
        type=float,
        default=None,
        help=(
            "additional memory budget for resident sessions' compiled "
            "arrays and label tables (LRU eviction while over)"
        ),
    )
    serve.add_argument(
        "--queue-workers",
        type=int,
        default=2,
        help="dispatch threads draining the request queue",
    )
    serve.add_argument(
        "--max-depth",
        type=int,
        default=64,
        help="bounded queue depth; submissions beyond it see backpressure",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=1,
        help="execution-engine workers per session",
    )
    serve.add_argument(
        "--backend",
        choices=["auto", "serial", "thread", "process"],
        default="auto",
        help="execution backend for every session's engine",
    )
    serve.add_argument(
        "--batch-size",
        type=int,
        default=None,
        help="engine batch size for every session (part of cover identity)",
    )
    serve.add_argument(
        "--shipping",
        choices=["auto", "shm", "pickle"],
        default="auto",
        help=(
            "how compiled graphs reach process workers: shm (zero-copy "
            "shared-memory segments), pickle (serialise per pool), or "
            "auto (shm when available and beneficial); covers are "
            "identical either way"
        ),
    )
    serve.add_argument(
        "--coalesce",
        type=int,
        default=8,
        help=(
            "max queued same-fingerprint requests one queue worker "
            "serves per dispatch group (1 disables coalescing; purely "
            "a scheduling knob, covers are unchanged)"
        ),
    )
    serve.add_argument(
        "--store-dir",
        default=None,
        metavar="PATH",
        help=(
            "warm-start persistence: directory where compiled graphs "
            "(CSR arrays, labels, spectral cache) are saved keyed by "
            "fingerprint and loaded back — mmap'd, checksum-verified — "
            "instead of recompiling; a restarted server pre-warms its "
            "most-recently-used graphs from here"
        ),
    )
    serve.add_argument(
        "--store-limit-bytes",
        type=int,
        default=None,
        help=(
            "size budget for --store-dir: after each save the store "
            "prunes least-recently-used entries until it fits"
        ),
    )
    serve.add_argument(
        "--store-warm",
        type=int,
        default=None,
        metavar="N",
        help=(
            "pre-warm the N most-recently-used stored graphs at "
            "startup (default: up to --max-sessions; 0 disables)"
        ),
    )
    serve.add_argument(
        "--access-log",
        default=None,
        metavar="PATH",
        help=(
            "append one JSON line per structured event (every request, "
            "shed, rejection, eviction, store fallback, server "
            "start/stop) to this file — the durable flight recorder; "
            "events also stay in the in-memory ring GET /debug/events "
            "serves"
        ),
    )
    serve.add_argument(
        "--access-log-max-bytes",
        type=int,
        default=None,
        metavar="N",
        help=(
            "rotate the access log when it would exceed N bytes (the "
            "previous file becomes PATH.1); default: never rotate"
        ),
    )
    serve.add_argument(
        "--event-capacity",
        type=int,
        default=1024,
        metavar="N",
        help=(
            "in-memory event ring size (drop-oldest beyond it, with a "
            "dropped counter); 0 disables the event pipeline entirely"
        ),
    )
    serve.add_argument(
        "--slo",
        default=None,
        metavar="SPEC",
        help=(
            "service-level objectives, comma-separated: latency clauses "
            "'pNN:<seconds>[s]' (streaming P-squared quantile vs target) "
            "and 'availability:<percent>' (sliding-window error budget) "
            "— e.g. 'p99:0.5s,availability:99.9'; exported as "
            "repro_slo_* gauges on /metrics and summarised by "
            "--stats-interval"
        ),
    )
    serve.add_argument(
        "--slow-threshold-seconds",
        type=float,
        default=None,
        metavar="S",
        help=(
            "capture any request at or above S seconds — full trace "
            "spans, engine stats, queue context — in the bounded "
            "worst-N table GET /debug/slow serves (0 captures "
            "everything; default: capture nothing)"
        ),
    )
    serve.add_argument(
        "--slow-capacity",
        type=int,
        default=32,
        metavar="N",
        help="how many slowest requests the /debug/slow table retains",
    )
    serve.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the end-of-batch summary line on stderr",
    )

    experiment = subparsers.add_parser(
        "experiment", help="regenerate a paper table or figure"
    )
    experiment.add_argument(
        "artefact",
        choices=[
            "table1",
            "figure2",
            "figure3",
            "figure4",
            "figure5",
            "figure6",
            "wikipedia",
        ],
    )
    experiment.add_argument("--seed", type=int, default=0, help="random seed")

    info = subparsers.add_parser("info", help="summarise a graph file")
    info.add_argument("graph", help="path to an edge-list file")

    generate = subparsers.add_parser(
        "generate", help="emit a benchmark instance as an edge-list file"
    )
    generate.add_argument("family", choices=["lfr", "daisy", "wikipedia"])
    generate.add_argument("--out", required=True, help="edge-list output path")
    generate.add_argument(
        "--truth", default=None, help="also write the planted cover here"
    )
    generate.add_argument("--seed", type=int, default=0, help="random seed")
    generate.add_argument("--n", type=int, default=None, help="graph size")
    generate.add_argument(
        "--mu", type=float, default=0.3, help="LFR mixing parameter"
    )
    generate.add_argument(
        "--flowers", type=int, default=5, help="daisy-tree flower count"
    )

    return parser


def _command_detect(args: argparse.Namespace) -> int:
    graph = read_edge_list(args.graph)
    run = run_algorithm(
        args.algorithm,
        graph,
        seed=args.seed,
        quality_mode=not args.raw,
        assign_orphans=False,
        workers=args.workers,
        backend=args.backend,
        batch_size=args.batch_size,
        representation=args.representation,
        shipping=args.shipping,
        spectral_solver=args.spectral_solver,
    )
    if args.output:
        write_cover(run.cover, args.output)
        print(
            f"{args.algorithm}: {len(run.cover)} communities in "
            f"{run.elapsed_seconds:.2f}s -> {args.output}"
        )
    else:
        write_cover(run.cover, sys.stdout)
    return 0


def _parse_listen(value: str, flag: str = "--listen"):
    host, _, port_text = value.rpartition(":")
    if not host or not port_text.isdigit():
        raise SystemExit(
            f"{flag} expects HOST:PORT, got {value!r}"
        )
    return host, int(port_text)


def _stats_line(service) -> str:
    """One stderr line of live serving stats (the --stats-interval tick)."""
    queue_stats = service.queue.stats
    manager_stats = service.manager.stats
    line = (
        f"stats: queue depth={service.queue.depth} "
        f"submitted={queue_stats.submitted} "
        f"completed={queue_stats.completed} failed={queue_stats.failed} "
        f"rejected={queue_stats.rejected} expired={queue_stats.expired} "
        f"coalesced={queue_stats.coalesced} "
        f"(admission={queue_stats.expired_admission} "
        f"queue={queue_stats.expired_queue}) | "
        f"sessions resident={len(service.manager)} "
        f"hits={manager_stats.hits} misses={manager_stats.misses} "
        f"evictions={manager_stats.evictions} "
        f"hit_rate={manager_stats.hit_rate:.2f} "
        f"memory={service.manager.memory_bytes()}B"
    )
    store = getattr(service, "store", None)
    if store is not None:
        store_stats = store.stats
        line += (
            f" | store hits={store_stats.hits} "
            f"misses={store_stats.misses} saves={store_stats.saves} "
            f"bytes={store.total_bytes()}B"
        )
    slo = getattr(service, "slo", None)
    if slo is not None:
        line += " | " + slo.summary()
    return line


def _command_serve_net(args: argparse.Namespace, max_memory_bytes) -> int:
    """Network serving: a TCP (--listen) and/or HTTP (--http) front-end.

    Both front-ends share one :class:`~repro.serving.ServingService` —
    one session manager, one bounded queue, one metrics registry — so a
    mixed deployment (JSONL streams for clients, HTTP for operators and
    scrapers) still amortises warm sessions across all traffic.
    """
    import asyncio

    from .serving import HttpServer, ServingServer, ServingService

    service = ServingService(
        max_sessions=args.max_sessions,
        max_memory_bytes=max_memory_bytes,
        queue_workers=args.queue_workers,
        max_depth=args.max_depth,
        coalesce=args.coalesce,
        workers=args.workers,
        backend=args.backend,
        batch_size=args.batch_size,
        shipping=args.shipping,
        store_dir=args.store_dir,
        store_limit_bytes=args.store_limit_bytes,
        store_warm=args.store_warm,
        event_capacity=args.event_capacity,
        access_log_path=args.access_log,
        access_log_max_bytes=args.access_log_max_bytes,
        slo=args.slo,
        slow_threshold_seconds=args.slow_threshold_seconds,
        slow_capacity=args.slow_capacity,
    )
    servers = []
    if args.listen is not None:
        host, port = _parse_listen(args.listen, "--listen")
        servers.append(
            (
                "listening on",
                ServingServer(
                    service=service,
                    host=host,
                    port=port,
                    max_inflight_per_client=args.client_inflight,
                ),
            )
        )
    if args.http is not None:
        host, port = _parse_listen(args.http, "--http")
        servers.append(
            ("http listening on", HttpServer(service=service, host=host, port=port))
        )

    async def _stats_loop() -> None:
        while True:
            await asyncio.sleep(args.stats_interval)
            print(_stats_line(service), file=sys.stderr, flush=True)

    async def _main() -> None:
        for banner, server in servers:
            await server.start()
            print(
                f"{banner} {server.host}:{server.port}",
                file=sys.stderr,
                flush=True,
            )
        stats_task = (
            asyncio.ensure_future(_stats_loop())
            if args.stats_interval is not None and args.stats_interval > 0
            else None
        )
        try:
            await asyncio.gather(
                *(server.wait_stopped() for _, server in servers)
            )
        finally:
            if stats_task is not None:
                stats_task.cancel()
            for _, server in servers:
                await server.stop()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        pass
    finally:
        service.close()
    if not args.quiet:
        for banner, server in servers:
            if not isinstance(server, ServingServer):
                continue
            stats = server.stats
            print(
                f"served {stats.responses} response(s) to "
                f"{stats.clients_total} "
                f"client(s): {stats.ok} ok, {stats.failed} failed "
                f"({stats.queue_full_rejections} queue-full, "
                f"{stats.deadline_expired} past deadline)",
                file=sys.stderr,
            )
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    from .serving import serve_stream

    max_memory_bytes = (
        None
        if args.max_memory_mb is None
        else int(args.max_memory_mb * 1024 * 1024)
    )

    if args.listen is not None or args.http is not None:
        return _command_serve_net(args, max_memory_bytes)

    def run(input_stream, output_stream):
        return serve_stream(
            input_stream,
            output_stream,
            max_sessions=args.max_sessions,
            max_memory_bytes=max_memory_bytes,
            queue_workers=args.queue_workers,
            max_depth=args.max_depth,
            coalesce=args.coalesce,
            workers=args.workers,
            backend=args.backend,
            batch_size=args.batch_size,
            shipping=args.shipping,
            store_dir=args.store_dir,
            store_limit_bytes=args.store_limit_bytes,
            store_warm=args.store_warm,
            event_capacity=args.event_capacity,
            access_log_path=args.access_log,
            access_log_max_bytes=args.access_log_max_bytes,
            slo=args.slo,
            slow_threshold_seconds=args.slow_threshold_seconds,
            slow_capacity=args.slow_capacity,
        )

    if args.requests is not None:
        with open(args.requests, "r", encoding="utf-8") as input_stream:
            if args.output is not None:
                with open(args.output, "w", encoding="utf-8") as output_stream:
                    summary = run(input_stream, output_stream)
            else:
                summary = run(input_stream, sys.stdout)
    else:
        if args.output is not None:
            with open(args.output, "w", encoding="utf-8") as output_stream:
                summary = run(sys.stdin, output_stream)
        else:
            summary = run(sys.stdin, sys.stdout)
    if not args.quiet:
        line = (
            "served {requests} request(s): {ok} ok, {failed} failed | "
            "sessions {sessions_resident} resident, {session_hits} hits / "
            "{session_misses} misses / {evictions} evictions | "
            "latency mean {mean_latency_seconds:.3f}s max "
            "{max_latency_seconds:.3f}s | peak queue depth "
            "{peak_queue_depth} | {wall_seconds:.3f}s wall".format(**summary)
        )
        if "store_hits" in summary:
            line += (
                " | store {store_hits} hits / {store_misses} misses / "
                "{store_saves} saves, {store_bytes}B".format(**summary)
            )
        print(line, file=sys.stderr)
    return 0 if summary["failed"] == 0 else 1


def _command_experiment(args: argparse.Namespace) -> int:
    runners = {
        "table1": lambda: run_table1(seed=args.seed).render(),
        "figure2": lambda: run_figure2(seed=args.seed).render(),
        "figure3": lambda: run_figure3(seed=args.seed).render(),
        "figure4": lambda: run_figure4(seed=args.seed).render(),
        "figure5": lambda: run_figure5(seed=args.seed).render(),
        "figure6": lambda: run_figure6(seed=args.seed).render(),
        "wikipedia": lambda: run_wikipedia(n=5000, seed=args.seed).render(),
    }
    print(runners[args.artefact]())
    return 0


def _command_info(args: argparse.Namespace) -> int:
    graph = read_edge_list(args.graph)
    for key, value in summarize(graph).as_row().items():
        print(f"{key}: {value}")
    return 0


def _command_generate(args: argparse.Namespace) -> int:
    from .generators import (
        DaisyParams,
        LFRParams,
        WikipediaParams,
        daisy_tree,
        lfr_graph,
        wikipedia_like_graph,
    )
    from .graph import write_edge_list

    if args.family == "lfr":
        params = LFRParams(n=args.n or 1000, mu=args.mu)
        instance = lfr_graph(params, seed=args.seed)
        graph, truth = instance.graph, instance.communities
    elif args.family == "daisy":
        instance = daisy_tree(flowers=args.flowers, seed=args.seed)
        graph, truth = instance.graph, instance.communities
    else:
        params = WikipediaParams(n=args.n or 20000)
        instance = wikipedia_like_graph(params, seed=args.seed)
        graph, truth = instance.graph, instance.topics
    write_edge_list(graph, args.out)
    message = (
        f"{args.family}: {graph.number_of_nodes()} nodes, "
        f"{graph.number_of_edges()} edges -> {args.out}"
    )
    if args.truth:
        write_cover(truth, args.truth)
        message += f" (truth: {len(truth)} communities -> {args.truth})"
    print(message)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "detect": _command_detect,
        "serve": _command_serve,
        "experiment": _command_experiment,
        "info": _command_info,
        "generate": _command_generate,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
