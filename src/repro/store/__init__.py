"""Warm-start persistence: compiled graphs that survive the process.

The serving stack's expensive per-graph artifacts — the compiled CSR
arrays, the label table, and the cached spectral ``c`` — used to live
only in process memory: every restart, and every newly spawned shard,
paid the full compile-plus-solve cold start (~9 s at n = 20k) for every
graph again.  This package is the persistence layer that closes the
gap:

* :mod:`~repro.store.store` — :class:`GraphStore`, a fingerprint-keyed
  on-disk store of compiled graphs: atomically committed manifests,
  per-file SHA-256 validation before any entry is served, read-only
  mmap loads, a persisted access log, and a size-budgeted LRU GC
  (:meth:`GraphStore.prune`);
* :mod:`~repro.store.warmer` — :class:`StoreWarmer`, which pre-warms
  the top-N most-recently-used fingerprints into a
  :class:`~repro.serving.SessionManager` at startup, so a restarted
  server answers its first popular-graph request warm.

Quickstart::

    from repro.serving import SessionManager
    from repro.store import GraphStore, StoreWarmer

    store = GraphStore("var/graph-store", max_bytes=512 * 1024 * 1024)
    with SessionManager(max_sessions=4, store=store) as manager:
        StoreWarmer(store, manager).warm()        # restart -> warm
        result = manager.detect(graph, "oca", seed=7)
        result.stats["session_source"]            # "warm" | "store" | "compiled"

The store is a **pure cache**: covers served from store-loaded graphs
are byte-identical to freshly compiled ones (pinned by the acceptance
matrix in ``tests/store/``), and deleting the store directory costs
only warm-start time.
"""

from .store import STORE_FORMAT_VERSION, GraphStore, StoreStats
from .warmer import StoreWarmer

__all__ = [
    "GraphStore",
    "StoreStats",
    "StoreWarmer",
    "STORE_FORMAT_VERSION",
]
