"""GraphStore: fingerprint-keyed persistence for compiled graphs.

Cold start is the serving stack's remaining big constant: compiling the
CSR arrays, solving the spectral ``c``, and spawning the worker pool
cost ~9 s at n = 20k (BENCH_session.json) while a warm detect takes a
fraction of a second — and a restarted process pays all of it again for
every graph it has ever seen.  This module closes that gap by making
the expensive per-graph artifacts *survive the process*: a
:class:`GraphStore` saves a :class:`~repro.graph.CompiledGraph` (the
int32 ``indptr``/``indices``/``degrees`` arrays, the label table, and
the spectral cache) under its content fingerprint, and loads it back
with the arrays **memory-mapped read-only** — so a freshly started
process reaches warm-session throughput after one mmap instead of one
compile-plus-solve.

Disk layout (one entry per fingerprint, sharded by prefix)::

    store_root/
      access.json                   # {fingerprint: last-access unix time}
      tmp/                          # manifest staging (same filesystem)
      ab/                           # fingerprint[:2] shard
        ab…64 hex….json             # manifest — the atomic commit point
        ab…64 hex…-<nonce>/         # payload directory the manifest names
          indptr.npy
          indices.npy
          degrees.npy
          labels.json               # only for non-identity label tables

Write protocol — last-writer-wins, readers never see partial entries:

1. the payload directory is written first under a fresh nonce;
2. the manifest (format version, payload name, per-file SHA-256
   digests, combined checksum, spectral cache, sizes) is staged in
   ``tmp/`` and committed with :func:`os.replace` — the *only* step a
   reader can observe.  Two processes saving the same fingerprint each
   write their own payload directory and race only on the manifest
   rename, which POSIX makes atomic; the loser's payload becomes an
   orphan that :meth:`GraphStore.prune` sweeps later.

Read protocol — never serve a wrong graph:

* the manifest's format version and fingerprint must match;
* every array is mmap-loaded, then its dtype, shape, and SHA-256 are
  verified against the manifest *before* the graph is handed out; the
  combined payload checksum is re-derived and compared too.  Any
  mismatch (truncated file, flipped byte, version bump, hand-edited
  manifest) raises nothing: the entry is discarded with a single
  :func:`warnings.warn` and ``load`` returns ``None`` so the caller
  falls back to a plain recompile — the next ``save`` overwrites the
  bad entry.

The store is a **pure cache**: deleting its directory loses no data,
only warm-start time.  ``prune(max_bytes)`` is the size-budgeted GC —
least-recently-*accessed* entries (per the persisted ``access.json``
log, which also drives :class:`~repro.store.StoreWarmer`) are removed
first.  Entries mmap'd into live sessions stay valid after pruning:
POSIX keeps unlinked pages mapped until the arrays are collected.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import threading
import time
import uuid
import warnings
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..graph.csr import CompiledGraph, compile_graph
from ..observability import NULL_EVENT_LOG, MetricsRegistry
from ..serving.fingerprint import graph_fingerprint

__all__ = ["GraphStore", "StoreStats", "STORE_FORMAT_VERSION"]

#: Bump whenever the on-disk layout or manifest schema changes: entries
#: written under any other version are treated as cache misses (with a
#: warning), never reinterpreted.
STORE_FORMAT_VERSION = 1

#: The three CSR arrays every entry persists, in manifest order.
_ARRAY_NAMES = ("indptr", "indices", "degrees")

#: Label types the JSON label table can round-trip exactly.  Anything
#: else (tuples, frozensets, …) makes the graph unpersistable — ``save``
#: declines rather than risking a lossy re-encoding.
_LABEL_TYPES = {"int": int, "str": str}

#: Unreferenced payload directories younger than this are left alone by
#: the orphan sweep: they may belong to a concurrent writer that has
#: staged its arrays but not yet committed its manifest.
_ORPHAN_GRACE_SECONDS = 300.0


def _digest_array(array: np.ndarray) -> str:
    """SHA-256 over an array's raw bytes (dtype/shape checked separately)."""
    return hashlib.sha256(np.ascontiguousarray(array).data).hexdigest()


def _digest_bytes(payload: bytes) -> str:
    return hashlib.sha256(payload).hexdigest()


def _combined_checksum(parts: Dict[str, str]) -> str:
    """One payload checksum derived from the per-file digests."""
    joined = "|".join(f"{name}:{parts[name]}" for name in sorted(parts))
    return hashlib.sha256(joined.encode()).hexdigest()


def _encode_labels(labels: List[Any]) -> Optional[List[List[Any]]]:
    """The JSON label table, or ``None`` when a label can't round-trip."""
    encoded: List[List[Any]] = []
    for label in labels:
        name = type(label).__name__
        if name not in _LABEL_TYPES:
            return None
        encoded.append([name, label])
    return encoded


def _decode_labels(encoded: List[List[Any]]) -> List[Any]:
    return [_LABEL_TYPES[name](value) for name, value in encoded]


class _CorruptEntry(Exception):
    """Internal: an entry failed validation (reason in ``args[0]``)."""


class _StoreMetrics:
    """The store's registry instruments, created once per store."""

    def __init__(self, store: "GraphStore", registry: MetricsRegistry) -> None:
        self.registry = registry
        requests = registry.counter(
            "repro_store_requests_total",
            "Store load outcomes per request",
            labelnames=("outcome",),
        )
        self.hits = requests.labels(outcome="hit")
        self.misses = requests.labels(outcome="miss")
        self.corrupt = requests.labels(outcome="corrupt")
        self.saves = registry.counter(
            "repro_store_saves_total", "Compiled graphs persisted"
        )
        self.saves_skipped = registry.counter(
            "repro_store_saves_skipped_total",
            "Saves declined (unpersistable label table) or failed on IO",
        )
        self.load_bytes = registry.counter(
            "repro_store_load_bytes_total",
            "Payload bytes mmap-loaded from the store",
        )
        self.save_bytes = registry.counter(
            "repro_store_save_bytes_total",
            "Payload bytes written to the store",
        )
        self.pruned = registry.counter(
            "repro_store_pruned_total",
            "Entries removed by the size-budgeted GC",
        )
        self.pruned_bytes = registry.counter(
            "repro_store_pruned_bytes_total",
            "Payload bytes reclaimed by the size-budgeted GC",
        )
        self.load_seconds = registry.histogram(
            "repro_store_load_seconds",
            "Wall-clock of successful store loads (mmap + verify)",
        )
        self.save_seconds = registry.histogram(
            "repro_store_save_seconds",
            "Wall-clock of store saves (arrays + manifest commit)",
        )
        self.entries_gauge = registry.gauge(
            "repro_store_entries", "Entries currently committed in the store"
        )
        self.entries_gauge.set_function(lambda: len(store.fingerprints()))
        self.bytes_gauge = registry.gauge(
            "repro_store_bytes", "Summed payload bytes of committed entries"
        )
        self.bytes_gauge.set_function(store.total_bytes)


class StoreStats:
    """Read-only view over one store's registry instruments.

    ``hits`` / ``misses`` are clean load outcomes; ``corrupt`` counts
    loads that found an entry but discarded it (checksum, truncation,
    format version); ``saves`` / ``saves_skipped`` split persisted
    graphs from declined ones.  Same numbers ``GET /metrics`` scrapes.
    """

    __slots__ = ("_metrics",)

    def __init__(self, metrics: _StoreMetrics) -> None:
        self._metrics = metrics

    @property
    def hits(self) -> int:
        return int(self._metrics.hits.value)

    @property
    def misses(self) -> int:
        return int(self._metrics.misses.value)

    @property
    def corrupt(self) -> int:
        return int(self._metrics.corrupt.value)

    @property
    def saves(self) -> int:
        return int(self._metrics.saves.value)

    @property
    def saves_skipped(self) -> int:
        return int(self._metrics.saves_skipped.value)

    @property
    def load_bytes(self) -> int:
        return int(self._metrics.load_bytes.value)

    @property
    def pruned(self) -> int:
        return int(self._metrics.pruned.value)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses + self.corrupt
        return self.hits / total if total else 0.0

    def __repr__(self) -> str:
        return (
            f"StoreStats(hits={self.hits}, misses={self.misses}, "
            f"corrupt={self.corrupt}, saves={self.saves}, "
            f"pruned={self.pruned})"
        )


class GraphStore:
    """Persist compiled graphs under their fingerprints; load them mmap'd.

    Parameters
    ----------
    root:
        Store directory (created if absent).  Safe to share between
        processes — writes are atomic-rename committed — and safe to
        delete wholesale: the store is a cache, never the only copy.
    max_bytes:
        Optional size budget.  After every save the store prunes
        least-recently-accessed entries until the summed payload bytes
        fit; ``None`` means unbounded (prune manually via
        :meth:`prune`).
    registry:
        The :class:`~repro.observability.MetricsRegistry` the store
        publishes hit/miss/save/byte counters and load/save-seconds
        histograms into; ``None`` creates a private one.
    events:
        The :class:`~repro.observability.EventLog` receiving a
        ``store_corrupt`` event whenever a persisted entry fails
        validation and is discarded (the caller recompiles); defaults
        to the inert :data:`~repro.observability.NULL_EVENT_LOG`.
    """

    def __init__(
        self,
        root,
        max_bytes: Optional[int] = None,
        registry: Optional[MetricsRegistry] = None,
        events: Optional[Any] = None,
    ) -> None:
        if max_bytes is not None and max_bytes <= 0:
            raise ConfigurationError(
                f"max_bytes must be positive, got {max_bytes}"
            )
        self.root = Path(root)
        self.max_bytes = max_bytes
        self.root.mkdir(parents=True, exist_ok=True)
        self._tmp = self.root / "tmp"
        self._tmp.mkdir(exist_ok=True)
        self._access_path = self.root / "access.json"
        self._access_lock = threading.Lock()
        self.registry = registry if registry is not None else MetricsRegistry()
        self.events = events if events is not None else NULL_EVENT_LOG
        self._metrics = _StoreMetrics(self, self.registry)
        self.stats = StoreStats(self._metrics)

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    def _shard(self, fingerprint: str) -> Path:
        return self.root / fingerprint[:2]

    def _manifest_path(self, fingerprint: str) -> Path:
        return self._shard(fingerprint) / f"{fingerprint}.json"

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def manifest(self, fingerprint: str) -> Optional[Dict[str, Any]]:
        """The committed manifest for a fingerprint, or ``None``."""
        try:
            return json.loads(self._manifest_path(fingerprint).read_text())
        except (OSError, ValueError):
            return None

    def fingerprints(self) -> List[str]:
        """Every committed fingerprint (fresh directory scan)."""
        found: List[str] = []
        try:
            shards = list(self.root.iterdir())
        except OSError:
            return found
        for shard in shards:
            if not shard.is_dir() or shard.name == "tmp":
                continue
            for manifest in shard.glob("*.json"):
                found.append(manifest.stem)
        return sorted(found)

    def __contains__(self, fingerprint: object) -> bool:
        return (
            isinstance(fingerprint, str)
            and self._manifest_path(fingerprint).is_file()
        )

    def entry_bytes(self, fingerprint: str) -> Optional[int]:
        """The payload bytes a committed entry occupies, or ``None``."""
        manifest = self.manifest(fingerprint)
        return None if manifest is None else int(manifest.get("nbytes", 0))

    def total_bytes(self) -> int:
        """Summed payload bytes of every committed entry."""
        return sum(
            self.entry_bytes(fingerprint) or 0
            for fingerprint in self.fingerprints()
        )

    def __len__(self) -> int:
        return len(self.fingerprints())

    # ------------------------------------------------------------------
    # Access log (drives LRU pruning and the startup warmer)
    # ------------------------------------------------------------------
    def _read_access(self) -> Dict[str, float]:
        try:
            log = json.loads(self._access_path.read_text())
        except (OSError, ValueError):
            return {}
        if not isinstance(log, dict):
            return {}
        return {
            key: float(value)
            for key, value in log.items()
            if isinstance(key, str) and isinstance(value, (int, float))
        }

    def _touch(self, fingerprint: str) -> None:
        """Record an access; best-effort (a lost update only skews LRU)."""
        with self._access_lock:
            log = self._read_access()
            log[fingerprint] = time.time()
            try:
                staged = self._tmp / f"access-{uuid.uuid4().hex[:8]}.json"
                staged.write_text(json.dumps(log, sort_keys=True))
                os.replace(staged, self._access_path)
            except OSError:
                pass

    def _forget(self, fingerprint: str) -> None:
        with self._access_lock:
            log = self._read_access()
            if log.pop(fingerprint, None) is None:
                return
            try:
                staged = self._tmp / f"access-{uuid.uuid4().hex[:8]}.json"
                staged.write_text(json.dumps(log, sort_keys=True))
                os.replace(staged, self._access_path)
            except OSError:
                pass

    def recent(self, limit: Optional[int] = None) -> List[str]:
        """Committed fingerprints, most recently accessed first.

        Entries never seen in the access log (written by another
        process, or the log was lost) sort by their manifest's creation
        time instead, so a fresh process can still pre-warm a store it
        did not write.
        """
        log = self._read_access()

        def key(fingerprint: str) -> float:
            recorded = log.get(fingerprint)
            if recorded is not None:
                return recorded
            manifest = self.manifest(fingerprint)
            return float(manifest.get("created_unix", 0)) if manifest else 0.0

        ordered = sorted(self.fingerprints(), key=key, reverse=True)
        return ordered if limit is None else ordered[:limit]

    # ------------------------------------------------------------------
    # Save
    # ------------------------------------------------------------------
    def save(self, graph: Any, fingerprint: Optional[str] = None) -> bool:
        """Persist a graph's compiled form; returns whether it was stored.

        Accepts a :class:`~repro.graph.CompiledGraph` or anything
        :func:`~repro.graph.compile_graph` accepts.  The spectral cache
        travels with the arrays, so a later :meth:`load` skips both the
        compile *and* the solve.  Declines (``False``, counted in
        ``saves_skipped``) when the label table cannot round-trip
        through JSON or the write fails on IO — a cache must never turn
        a serving request into an error.
        """
        started = time.perf_counter()
        compiled = compile_graph(graph)
        key = fingerprint if fingerprint is not None else graph_fingerprint(compiled)
        labels_encoded: Optional[List[List[Any]]] = None
        if not compiled.identity_labels:
            labels_encoded = _encode_labels(compiled.labels)
            if labels_encoded is None:
                self._metrics.saves_skipped.inc()
                return False
        try:
            nbytes = self._write_entry(compiled, key, labels_encoded)
        except OSError as error:
            warnings.warn(
                f"repro graph store: save of {key[:12]}… failed ({error}); "
                "serving continues without persistence",
                RuntimeWarning,
            )
            self._metrics.saves_skipped.inc()
            return False
        self._metrics.saves.inc()
        self._metrics.save_bytes.inc(nbytes)
        self._metrics.save_seconds.observe(time.perf_counter() - started)
        self._touch(key)
        if self.max_bytes is not None:
            self.prune(self.max_bytes)
        return True

    def _write_entry(
        self,
        compiled: CompiledGraph,
        fingerprint: str,
        labels_encoded: Optional[List[List[Any]]],
    ) -> int:
        shard = self._shard(fingerprint)
        shard.mkdir(exist_ok=True)
        nonce = uuid.uuid4().hex[:12]
        payload_dir = shard / f"{fingerprint}-{nonce}"
        payload_dir.mkdir()

        digests: Dict[str, str] = {}
        arrays_meta: Dict[str, Dict[str, Any]] = {}
        nbytes = 0
        for name in _ARRAY_NAMES:
            array = getattr(compiled, name)
            # A store-loaded (memmap) array re-persists byte-identically;
            # ascontiguousarray is a no-op for the arrays we build.
            np.save(payload_dir / f"{name}.npy", np.ascontiguousarray(array))
            digests[name] = _digest_array(array)
            arrays_meta[name] = {
                "dtype": str(array.dtype),
                "shape": list(array.shape),
                "sha256": digests[name],
            }
            nbytes += int(array.nbytes)

        labels_meta: Optional[Dict[str, Any]] = None
        if labels_encoded is not None:
            blob = json.dumps(labels_encoded).encode()
            (payload_dir / "labels.json").write_bytes(blob)
            digests["labels"] = _digest_bytes(blob)
            labels_meta = {
                "file": "labels.json",
                "sha256": digests["labels"],
                "count": len(labels_encoded),
            }
            nbytes += len(blob)

        # Only the shared_admissible_c key shape is persisted; any future
        # cache entry under a different key silently stays process-local
        # rather than corrupting the manifest schema.
        persistable = [
            (key, c)
            for key, c in compiled.spectral_cache.items()
            if isinstance(key, tuple)
            and len(key) == 3
            and key[0] == "admissible_c"
        ]
        spectral = [
            [float(key[1]), int(key[2]), float(c)]
            for key, c in sorted(persistable)
        ]
        manifest = {
            "format_version": STORE_FORMAT_VERSION,
            "fingerprint": fingerprint,
            "payload": payload_dir.name,
            "nodes": compiled.number_of_nodes(),
            "edges": compiled.number_of_edges(),
            "arrays": arrays_meta,
            "labels": labels_meta,
            "spectral": spectral,
            "checksum": _combined_checksum(digests),
            "nbytes": nbytes,
            "created_unix": time.time(),
        }
        # The manifest rename is the commit point: stage it on the same
        # filesystem, fsync, then os.replace — a reader either sees the
        # previous complete entry or this one, never a mixture.  (The
        # array files themselves are not fsynced: a torn payload after a
        # crash fails its checksum at load and falls back to recompile.)
        staged = self._tmp / f"manifest-{fingerprint[:16]}-{nonce}.json"
        with open(staged, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, sort_keys=True)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(staged, self._manifest_path(fingerprint))
        return nbytes

    # ------------------------------------------------------------------
    # Load
    # ------------------------------------------------------------------
    def load(self, fingerprint: str) -> Optional[CompiledGraph]:
        """The stored compiled graph for a fingerprint, or ``None``.

        On a hit the returned graph's CSR arrays are read-only memory
        maps over the store files, its spectral cache is pre-populated,
        and its fingerprint is pinned — binding it into a
        :class:`~repro.detectors.GraphSession` runs neither the CSR
        build nor any spectral solver.  A missing entry is a clean
        miss; a failed validation discards the entry with one warning
        and also returns ``None`` (the caller recompiles).
        """
        started = time.perf_counter()
        manifest_path = self._manifest_path(fingerprint)
        try:
            text = manifest_path.read_text()
        except OSError:
            self._metrics.misses.inc()
            return None
        try:
            compiled, nbytes = self._validate_and_map(fingerprint, text)
        except Exception as error:
            reason = (
                error.args[0]
                if isinstance(error, _CorruptEntry)
                else f"{type(error).__name__}: {error}"
            )
            warnings.warn(
                f"repro graph store: discarding corrupt entry "
                f"{fingerprint[:12]}… ({reason}); recompiling",
                RuntimeWarning,
            )
            self._metrics.corrupt.inc()
            self.events.emit(
                "store_corrupt",
                fingerprint=fingerprint,
                reason=str(reason),
                fallback="recompile",
            )
            try:
                manifest_path.unlink()
            except OSError:
                pass
            return None
        self._metrics.hits.inc()
        self._metrics.load_bytes.inc(nbytes)
        self._metrics.load_seconds.observe(time.perf_counter() - started)
        self._touch(fingerprint)
        return compiled

    def _validate_and_map(
        self, fingerprint: str, manifest_text: str
    ) -> Tuple[CompiledGraph, int]:
        manifest = json.loads(manifest_text)
        version = manifest.get("format_version")
        if version != STORE_FORMAT_VERSION:
            raise _CorruptEntry(
                f"format version {version!r} != {STORE_FORMAT_VERSION}"
            )
        if manifest.get("fingerprint") != fingerprint:
            raise _CorruptEntry("manifest fingerprint mismatch")
        payload_dir = self._shard(fingerprint) / str(manifest["payload"])

        digests: Dict[str, str] = {}
        loaded: Dict[str, np.ndarray] = {}
        for name in _ARRAY_NAMES:
            spec = manifest["arrays"][name]
            array = np.load(payload_dir / f"{name}.npy", mmap_mode="r")
            if str(array.dtype) != spec["dtype"] or list(array.shape) != list(
                spec["shape"]
            ):
                raise _CorruptEntry(f"{name} dtype/shape mismatch")
            digests[name] = _digest_array(array)
            if digests[name] != spec["sha256"]:
                raise _CorruptEntry(f"{name} checksum mismatch")
            loaded[name] = array

        labels: Optional[List[Any]] = None
        labels_meta = manifest.get("labels")
        if labels_meta is not None:
            blob = (payload_dir / str(labels_meta["file"])).read_bytes()
            digests["labels"] = _digest_bytes(blob)
            if digests["labels"] != labels_meta["sha256"]:
                raise _CorruptEntry("label table checksum mismatch")
            labels = _decode_labels(json.loads(blob))
            if len(labels) != len(loaded["degrees"]):
                raise _CorruptEntry("label table length mismatch")

        if _combined_checksum(digests) != manifest.get("checksum"):
            raise _CorruptEntry("payload checksum mismatch")

        spectral = {
            ("admissible_c", float(tol), int(max_iterations)): float(c)
            for tol, max_iterations, c in manifest.get("spectral", [])
        }
        compiled = CompiledGraph.from_shared(
            indptr=loaded["indptr"],
            indices=loaded["indices"],
            degrees=loaded["degrees"],
            labels=labels,
            spectral=spectral,
        )
        compiled._fingerprint = fingerprint
        return compiled, int(manifest.get("nbytes", 0))

    # ------------------------------------------------------------------
    # GC
    # ------------------------------------------------------------------
    def remove(self, fingerprint: str) -> bool:
        """Delete one entry (manifest first, then payload); idempotent."""
        manifest = self.manifest(fingerprint)
        try:
            self._manifest_path(fingerprint).unlink()
        except OSError:
            return False
        if manifest is not None:
            payload_dir = self._shard(fingerprint) / str(
                manifest.get("payload", "")
            )
            shutil.rmtree(payload_dir, ignore_errors=True)
        self._forget(fingerprint)
        return True

    def prune(self, max_bytes: Optional[int] = None) -> int:
        """Evict least-recently-accessed entries until the budget holds.

        Returns the payload bytes reclaimed.  Also sweeps orphaned
        payload directories (losers of concurrent-writer races, and
        payloads of removed entries) once they are old enough that no
        in-flight writer can still be about to commit them.  With no
        budget (``None`` here and at construction) only the orphan
        sweep runs.
        """
        budget = self.max_bytes if max_bytes is None else max_bytes
        if budget is not None and budget < 0:
            raise ConfigurationError(f"max_bytes must be >= 0, got {budget}")
        reclaimed = 0
        if budget is not None:
            log = self._read_access()
            entries: List[Tuple[float, str, int]] = []
            for fingerprint in self.fingerprints():
                manifest = self.manifest(fingerprint)
                if manifest is None:
                    continue
                accessed = log.get(
                    fingerprint, float(manifest.get("created_unix", 0))
                )
                entries.append(
                    (accessed, fingerprint, int(manifest.get("nbytes", 0)))
                )
            total = sum(nbytes for _, _, nbytes in entries)
            for accessed, fingerprint, nbytes in sorted(entries):
                if total <= budget:
                    break
                if self.remove(fingerprint):
                    total -= nbytes
                    reclaimed += nbytes
                    self._metrics.pruned.inc()
                    self._metrics.pruned_bytes.inc(nbytes)
        self._sweep_orphans()
        return reclaimed

    def _sweep_orphans(self) -> None:
        """Delete payload directories no committed manifest references."""
        now = time.time()
        try:
            shards = list(self.root.iterdir())
        except OSError:
            return
        for shard in shards:
            if not shard.is_dir() or shard.name == "tmp":
                continue
            referenced = set()
            for manifest_path in shard.glob("*.json"):
                manifest = self.manifest(manifest_path.stem)
                if manifest is not None:
                    referenced.add(str(manifest.get("payload", "")))
            for entry in shard.iterdir():
                if not entry.is_dir() or entry.name in referenced:
                    continue
                try:
                    age = now - entry.stat().st_mtime
                except OSError:
                    continue
                if age >= _ORPHAN_GRACE_SECONDS:
                    shutil.rmtree(entry, ignore_errors=True)

    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return (
            f"GraphStore(root={str(self.root)!r}, "
            f"entries={len(self.fingerprints())}, "
            f"bytes={self.total_bytes()}, max_bytes={self.max_bytes})"
        )
