"""StoreWarmer: bind the store's hottest graphs before traffic arrives.

Persistence (:class:`~repro.store.GraphStore`) makes a restarted
process *able* to skip compile-and-solve; the warmer makes it skip the
store round-trip too, for the graphs that matter: at startup it reads
the store's persisted access log, picks the top-N most-recently-used
fingerprints, and binds each into the
:class:`~repro.serving.SessionManager` via
:meth:`~repro.serving.SessionManager.warm` — so the first request for a
popular graph after a restart finds its session already resident and is
answered at warm-session latency with ``session_source: "store"``.

Warming proceeds **oldest-of-the-top-N first**: each bind refreshes the
manager's LRU, so after warming, the manager's eviction order mirrors
the store's recency order — if the manager holds fewer sessions than
were warmed, it is the *most* recently used graphs that survive.
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import ServingError

__all__ = ["StoreWarmer"]


class StoreWarmer:
    """Pre-warm a session manager from a graph store's access log.

    Parameters
    ----------
    store:
        The :class:`~repro.store.GraphStore` to read; its persisted
        access log (``access.json``) defines recency.
    manager:
        The :class:`~repro.serving.SessionManager` to warm.  It must
        have been constructed with this store (``store=``) — warming a
        store-less manager is a configuration error, not a silent
        no-op.
    limit:
        Default number of fingerprints to warm; ``None`` falls back to
        the manager's ``max_sessions`` (warming more than fit resident
        would only churn the LRU).
    """

    def __init__(self, store, manager, limit: Optional[int] = None) -> None:
        if getattr(manager, "store", None) is not store:
            raise ServingError(
                "StoreWarmer needs a SessionManager constructed with this "
                "store (SessionManager(store=...))"
            )
        self.store = store
        self.manager = manager
        self.limit = limit

    def warm(self, limit: Optional[int] = None) -> List[str]:
        """Bind the top-N most-recently-used fingerprints; return them.

        Returns the fingerprints actually warmed, most recently used
        last (the manager's MRU end).  Entries that fail to load —
        pruned meanwhile, corrupt, or the store emptied — are skipped;
        warming never raises on cache contents.
        """
        count = limit if limit is not None else self.limit
        if count is None:
            count = self.manager.max_sessions
        if count <= 0:
            return []
        warmed: List[str] = []
        for fingerprint in reversed(self.store.recent(count)):
            if self.manager.warm(fingerprint):
                warmed.append(fingerprint)
        return warmed
