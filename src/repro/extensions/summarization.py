"""Graph summarization over overlapping communities — the paper's second
future-work item.

"This work enables us to pioneer neighboring areas, such as graph
summarization for graphs containing overlapped communities" (Section VI).

The summary representation implemented here keeps one *supernode* per
community plus the overlap information a partition-based summary loses:

* supernodes carry their member count and internal edge count (enough to
  reconstruct expected internal density);
* superedges between communities carry cross-edge counts;
* overlap nodes (members of several communities) are recorded per pair,
  since they are precisely what distinguishes an overlapping summary
  from a partition quotient graph;
* nodes outside every community are aggregated into a single residual
  supernode, so the summary is always total.

:func:`summarize_graph` builds the summary, :meth:`GraphSummaryModel.
expected_adjacency` reconstructs an expected-edge-probability model, and
:func:`reconstruction_error` measures summary quality as the L1 gap
between the model and the true adjacency — the standard figure of merit
in the summarization literature.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, List, Optional, Set, Tuple

from ..communities import Cover
from ..errors import CommunityError
from ..graph import Graph

__all__ = [
    "Supernode",
    "Superedge",
    "GraphSummaryModel",
    "summarize_graph",
    "reconstruction_error",
]

Node = Hashable

#: Index used for the residual supernode holding uncovered nodes.
RESIDUAL = -1


@dataclass(frozen=True)
class Supernode:
    """One community collapsed to a summary node."""

    index: int
    size: int
    internal_edges: int

    @property
    def internal_density(self) -> float:
        """Fraction of possible internal edges present."""
        if self.size < 2:
            return 0.0
        return 2.0 * self.internal_edges / (self.size * (self.size - 1))


@dataclass(frozen=True)
class Superedge:
    """Aggregated cross edges between two supernodes."""

    a: int
    b: int
    cross_edges: int
    shared_nodes: int

    def density(self, size_a: int, size_b: int) -> float:
        """Cross-edge density between the two exclusive regions."""
        possible = size_a * size_b
        if possible == 0:
            return 0.0
        return self.cross_edges / possible


@dataclass
class GraphSummaryModel:
    """A lossy summary of a graph over an overlapping cover."""

    supernodes: List[Supernode]
    superedges: List[Superedge]
    membership: Dict[Node, List[int]]
    total_nodes: int
    total_edges: int

    def supernode(self, index: int) -> Supernode:
        """The supernode with ``index`` (KeyError if absent)."""
        for supernode in self.supernodes:
            if supernode.index == index:
                return supernode
        raise KeyError(index)

    def compression_ratio(self) -> float:
        """Original size over summary size (higher = more compression).

        Sizes are counted as nodes + edges of each representation.
        """
        original = self.total_nodes + self.total_edges
        summary = len(self.supernodes) + len(self.superedges)
        if summary == 0:
            return float("inf")
        return original / summary

    def expected_adjacency(self, u: Node, v: Node) -> float:
        """The model's edge probability for the pair ``(u, v)``.

        Pairs sharing a community get that community's internal density
        (the max over shared communities); pairs in different communities
        get the corresponding superedge density; pairs with no summary
        relation get 0.
        """
        if u == v:
            return 0.0
        communities_u = set(self.membership.get(u, ()))
        communities_v = set(self.membership.get(v, ()))
        shared = communities_u & communities_v
        if shared:
            return max(self.supernode(i).internal_density for i in shared)
        best = 0.0
        sizes = {s.index: s.size for s in self.supernodes}
        for edge in self.superedges:
            if (edge.a in communities_u and edge.b in communities_v) or (
                edge.a in communities_v and edge.b in communities_u
            ):
                best = max(best, edge.density(sizes[edge.a], sizes[edge.b]))
        return best


def summarize_graph(graph: Graph, cover: Cover) -> GraphSummaryModel:
    """Build the overlapping-community summary of ``graph``.

    Nodes outside every community form a residual supernode (index
    ``RESIDUAL``), so every graph node appears in the summary.
    """
    communities: List[Set[Node]] = [set(c) for c in cover]
    residual = set(graph.nodes()) - cover.covered_nodes()
    indexed: List[Tuple[int, Set[Node]]] = list(enumerate(communities))
    if residual:
        indexed.append((RESIDUAL, residual))

    membership: Dict[Node, List[int]] = {}
    for index, members in indexed:
        for node in members:
            membership.setdefault(node, []).append(index)

    supernodes = [
        Supernode(
            index=index,
            size=len(members),
            internal_edges=graph.edges_inside(members),
        )
        for index, members in indexed
    ]

    superedges: List[Superedge] = []
    for position, (index_a, a) in enumerate(indexed):
        for index_b, b in indexed[position + 1 :]:
            shared = len(a & b)
            only_a = a - b
            only_b = b - a
            cross = 0
            smaller, larger = (
                (only_a, only_b) if len(only_a) <= len(only_b) else (only_b, only_a)
            )
            for node in smaller:
                if graph.has_node(node):
                    cross += sum(1 for v in graph.neighbors(node) if v in larger)
            if cross or shared:
                superedges.append(
                    Superedge(
                        a=index_a, b=index_b, cross_edges=cross, shared_nodes=shared
                    )
                )

    return GraphSummaryModel(
        supernodes=supernodes,
        superedges=superedges,
        membership=membership,
        total_nodes=graph.number_of_nodes(),
        total_edges=graph.number_of_edges(),
    )


def reconstruction_error(graph: Graph, model: GraphSummaryModel) -> float:
    """Mean L1 error of the model against the true adjacency.

    Averages ``|model(u, v) - adjacency(u, v)|`` over all node pairs;
    0 means a perfect (lossless) summary, 1 maximal distortion.  O(n^2)
    — intended for evaluation on small and medium graphs.
    """
    nodes = list(graph.nodes())
    n = len(nodes)
    if n < 2:
        raise CommunityError("reconstruction error needs at least two nodes")
    total = 0.0
    pairs = 0
    for i, u in enumerate(nodes):
        neighbours = graph.neighbors(u)
        for v in nodes[i + 1 :]:
            actual = 1.0 if v in neighbours else 0.0
            total += abs(model.expected_adjacency(u, v) - actual)
            pairs += 1
    return total / pairs
