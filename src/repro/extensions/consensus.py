"""Consensus covers: stabilising OCA's randomised output.

OCA is a randomised algorithm — different seeds can produce different
local optima.  For applications that need a *stable* answer, the standard
remedy is consensus clustering: run several times, record how often each
node pair lands in a common community, and keep what the runs agree on.

:func:`co_membership` computes pairwise agreement counts (a diagnostic);
:func:`consensus_cover` builds the consensus at the *community* level —
communities from different runs are grouped by ``rho`` similarity, groups
recurring in enough runs survive, and each surviving group is reduced to
the nodes a majority of its instances contain.  Community-level (rather
than the classic pairwise/connected-components) consensus is essential
here: overlap nodes co-occur with *both* of their communities in every
run, so a co-membership graph fuses overlapping communities into one
blob, destroying exactly the structure this library exists to find.
:func:`cover_stability` summarises run-to-run agreement as a single
number (mean pairwise ``Theta``), useful as a confidence diagnostic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, List, Optional, Tuple

from .._rng import SeedLike, as_random, spawn_seed
from ..communities import Cover, theta
from ..core import OCAConfig
from ..detectors import GraphSession
from ..errors import CommunityError
from ..graph import Graph

__all__ = [
    "co_membership",
    "consensus_cover",
    "cover_stability",
    "ConsensusResult",
    "consensus_oca",
]

Node = Hashable
Pair = Tuple[Node, Node]


def _canonical_pair(u: Node, v: Node) -> Pair:
    """An order-independent key for the pair ``{u, v}``."""
    return (u, v) if repr(u) <= repr(v) else (v, u)


def co_membership(covers: List[Cover]) -> Dict[Pair, int]:
    """How many covers put each node pair in a common community.

    Only pairs with at least one co-occurrence appear.
    """
    counts: Dict[Pair, int] = {}
    for cover in covers:
        seen: set = set()
        for community in cover:
            members = sorted(community, key=repr)
            for i, u in enumerate(members):
                for v in members[i + 1 :]:
                    key = (u, v)
                    if key in seen:
                        continue  # overlapping communities: count once per cover
                    seen.add(key)
                    counts[key] = counts.get(key, 0) + 1
    return counts


def consensus_cover(
    covers: List[Cover],
    threshold: float = 0.5,
    match_threshold: float = 0.5,
) -> Cover:
    """The consensus of several covers, overlap-preserving.

    Communities from all covers are greedily grouped: a community joins
    the first group whose representative it matches with
    ``rho >= match_threshold``, else founds a new group (the
    representative is the group's first member).  Groups recurring in at
    least ``threshold`` fraction of the covers survive; each surviving
    group is reduced to the nodes present in a strict majority of its
    instances.  Consensus communities smaller than 2 nodes are dropped.
    """
    if not covers:
        raise CommunityError("consensus needs at least one cover")
    if not 0.0 < threshold <= 1.0:
        raise CommunityError(f"threshold must lie in (0, 1], got {threshold}")
    if not 0.0 < match_threshold <= 1.0:
        raise CommunityError(
            f"match_threshold must lie in (0, 1], got {match_threshold}"
        )

    # group -> (representative, per-run instances, runs seen)
    representatives: List[FrozenSet[Node]] = []
    instances: List[List[FrozenSet[Node]]] = []
    runs_seen: List[set] = []
    from ..communities import rho

    for run_index, cover in enumerate(covers):
        for community in cover:
            best_group = -1
            best_value = match_threshold
            for group, representative in enumerate(representatives):
                value = rho(representative, community)
                if value >= best_value:
                    best_value = value
                    best_group = group
            if best_group == -1:
                representatives.append(frozenset(community))
                instances.append([frozenset(community)])
                runs_seen.append({run_index})
            else:
                instances[best_group].append(frozenset(community))
                runs_seen[best_group].add(run_index)

    needed_runs = threshold * len(covers)
    consensus: List[set] = []
    for group, members in enumerate(instances):
        if len(runs_seen[group]) < needed_runs:
            continue
        votes: Dict[Node, int] = {}
        for instance in members:
            for node in instance:
                votes[node] = votes.get(node, 0) + 1
        majority = {node for node, count in votes.items() if 2 * count > len(members)}
        if len(majority) >= 2:
            consensus.append(majority)
    return Cover(consensus)


def cover_stability(covers: List[Cover]) -> float:
    """Mean pairwise ``Theta`` across the covers, in ``[0, 1]``.

    1.0 means every run produced the same structure.  Needs >= 2 covers.
    """
    if len(covers) < 2:
        raise CommunityError("stability needs at least two covers")
    total = 0.0
    pairs = 0
    for i in range(len(covers)):
        for j in range(i + 1, len(covers)):
            if len(covers[i]) == 0 or len(covers[j]) == 0:
                continue
            # Symmetrise: Theta is not symmetric in its arguments.
            total += (theta(covers[i], covers[j]) + theta(covers[j], covers[i])) / 2
            pairs += 1
    return total / pairs if pairs else 0.0


@dataclass
class ConsensusResult:
    """Outcome of :func:`consensus_oca`."""

    cover: Cover
    runs: List[Cover]
    stability: float

    def __repr__(self) -> str:
        return (
            f"ConsensusResult(communities={len(self.cover)}, "
            f"runs={len(self.runs)}, stability={self.stability:.3f})"
        )


def consensus_oca(
    graph: Graph,
    runs: int = 5,
    threshold: float = 0.5,
    seed: SeedLike = None,
    config: Optional[OCAConfig] = None,
) -> ConsensusResult:
    """Run OCA ``runs`` times and return the consensus structure.

    Each run gets an independent seed derived from ``seed``; the
    consensus keeps node pairs co-assigned in at least ``threshold`` of
    the runs.  The per-run covers and the stability diagnostic ride
    along in the result.

    The runs share one :class:`~repro.detectors.GraphSession`, so graph
    compilation and the spectral ``c`` are paid once for all of them —
    consensus is exactly the repeated-detection workload the session
    layer exists for.
    """
    if runs < 1:
        raise CommunityError(f"runs must be >= 1, got {runs}")
    rng = as_random(seed)
    with GraphSession(graph) as session:
        covers = [
            session.detect("oca", seed=spawn_seed(rng), config=config).cover
            for _ in range(runs)
        ]
    stability = cover_stability(covers) if runs >= 2 else 1.0
    return ConsensusResult(
        cover=consensus_cover(covers, threshold=threshold),
        runs=covers,
        stability=stability,
    )
