"""Community hierarchy and relations — the paper's first future-work item.

"Now that the communities are identified, we will explore the hierarchies
and relations among them" (Section VI).  This module implements that
exploration:

* :func:`community_graph` — the *relation graph*: one node per community,
  weighted edges recording how strongly two communities interact, both by
  shared members and by cross edges in the underlying graph.
* :func:`containment_forest` — the *hierarchy*: a parent pointer for each
  community pointing at the smallest community that (approximately)
  contains it, yielding the nesting structure multi-resolution runs of
  OCA produce.
* :func:`hierarchical_oca` — recursive agglomeration: level 0 is OCA's
  cover of the input graph; each further level runs OCA *on the relation
  graph of the previous level's communities*, so related communities
  (overlapping petals and cores, attached flowers) merge into
  super-communities.  On a daisy tree this recovers flowers at level 1 —
  exactly the hierarchy the paper anticipates exploring.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from .._rng import SeedLike, as_random, spawn_seed
from ..communities import Cover
from ..core import OCAConfig
from ..detection import DetectionRequest
from ..detectors import get_detector
from ..errors import CommunityError
from ..graph import Graph

__all__ = [
    "CommunityRelation",
    "community_graph",
    "containment_forest",
    "HierarchyLevel",
    "hierarchical_oca",
]


@dataclass(frozen=True)
class CommunityRelation:
    """One weighted edge of the community relation graph.

    Attributes
    ----------
    a / b:
        Indices (into the cover) of the related communities.
    shared_nodes:
        ``|A ∩ B|`` — overlap strength.
    cross_edges:
        Graph edges with one endpoint in ``A \\ B`` and one in ``B \\ A``
        — interaction strength beyond the shared membership.
    """

    a: int
    b: int
    shared_nodes: int
    cross_edges: int


def community_graph(graph: Graph, cover: Cover) -> List[CommunityRelation]:
    """All non-trivial relations between pairs of communities in ``cover``.

    A pair is related when it shares members or is joined by at least one
    cross edge.  O(k^2 * size) — covers are small relative to graphs.
    """
    communities = [set(c) for c in cover]
    relations: List[CommunityRelation] = []
    for i in range(len(communities)):
        for j in range(i + 1, len(communities)):
            a, b = communities[i], communities[j]
            shared = len(a & b)
            only_a = a - b
            only_b = b - a
            cross = 0
            smaller, larger = (only_a, only_b) if len(only_a) <= len(only_b) else (only_b, only_a)
            for node in smaller:
                if graph.has_node(node):
                    cross += sum(1 for v in graph.neighbors(node) if v in larger)
            if shared or cross:
                relations.append(
                    CommunityRelation(a=i, b=j, shared_nodes=shared, cross_edges=cross)
                )
    return relations


def containment_forest(
    cover: Cover, containment: float = 0.9
) -> Dict[int, Optional[int]]:
    """Parent pointers of the (approximate) containment hierarchy.

    Community ``i``'s parent is the smallest community ``j`` with
    ``|C_i ∩ C_j| >= containment * |C_i|`` and ``|C_j| > |C_i|``; roots
    map to ``None``.  ``containment`` in ``(0, 1]`` controls how strict
    "contained" is.
    """
    if not 0.0 < containment <= 1.0:
        raise CommunityError(f"containment must lie in (0, 1], got {containment}")
    communities = [set(c) for c in cover]
    parents: Dict[int, Optional[int]] = {}
    for i, child in enumerate(communities):
        best: Optional[int] = None
        for j, candidate in enumerate(communities):
            if i == j or len(candidate) <= len(child):
                continue
            if len(child & candidate) >= containment * len(child):
                if best is None or len(candidate) < len(communities[best]):
                    best = j
        parents[i] = best
    return parents


@dataclass
class HierarchyLevel:
    """One level of the hierarchical decomposition (0 = finest)."""

    level: int
    cover: Cover

    def __repr__(self) -> str:
        return f"HierarchyLevel(level={self.level}, communities={len(self.cover)})"


def _relation_graph(graph: Graph, cover: Cover) -> Graph:
    """One node per community; an edge whenever two communities relate."""
    meta = Graph(nodes=range(len(cover)))
    for relation in community_graph(graph, cover):
        meta.add_edge(relation.a, relation.b)
    return meta


def hierarchical_oca(
    graph: Graph,
    levels: int = 2,
    seed: SeedLike = None,
    config: Optional[OCAConfig] = None,
) -> List[HierarchyLevel]:
    """Recursive OCA agglomeration into a community hierarchy.

    Level 0 is OCA's cover of ``graph``.  Level ``k + 1`` runs OCA on the
    *relation graph* of level ``k`` (one meta-node per community, edges
    between overlapping or cross-linked communities) and replaces each
    meta-community by the union of its member communities.  Recursion
    stops early when a level yields a single community or the relation
    graph has no edges left to agglomerate.

    Returns the levels finest-first; ``config`` applies to the level-0
    run (the small meta graphs use defaults with orphan assignment, so
    every community lands in some super-community).
    """
    if levels < 1:
        raise CommunityError(f"levels must be >= 1, got {levels}")
    rng = as_random(seed)
    oca_detector = get_detector("oca")
    base = oca_detector.detect(
        DetectionRequest(
            graph=graph, seed=spawn_seed(rng), params={"config": config}
        )
    )
    hierarchy: List[HierarchyLevel] = [HierarchyLevel(level=0, cover=base.cover)]
    current = base.cover
    for level in range(1, levels):
        if len(current) <= 1:
            break
        meta = _relation_graph(graph, current)
        if meta.number_of_edges() == 0:
            break
        meta_config = OCAConfig(min_community_size=1, assign_orphans=True)
        meta_result = oca_detector.detect(
            DetectionRequest(
                graph=meta, seed=spawn_seed(rng), params={"config": meta_config}
            )
        )
        merged: List[set] = []
        for meta_community in meta_result.cover:
            union: set = set()
            for index in meta_community:
                union |= current[index]
            merged.append(union)
        coarser = Cover(merged)
        if len(coarser) >= len(current):
            break  # no real agglomeration happened; stop cleanly
        hierarchy.append(HierarchyLevel(level=level, cover=coarser))
        current = coarser
    return hierarchy
