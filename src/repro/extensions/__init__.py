"""Future-work extensions sketched in the paper's Section VI.

* :mod:`~repro.extensions.hierarchy` — "explore the hierarchies and
  relations among [the communities]": the community relation graph,
  containment forests, and multi-resolution OCA over a ``c`` ladder.
* :mod:`~repro.extensions.summarization` — "graph summarization for
  graphs containing overlapped communities": overlap-aware supernode
  summaries with an expected-adjacency model and reconstruction error.

These go beyond the published evaluation; EXPERIMENTS.md marks their
benches as extensions rather than reproductions.
"""

from .hierarchy import (
    CommunityRelation,
    community_graph,
    containment_forest,
    HierarchyLevel,
    hierarchical_oca,
)
from .summarization import (
    RESIDUAL,
    Supernode,
    Superedge,
    GraphSummaryModel,
    summarize_graph,
    reconstruction_error,
)
from .consensus import (
    co_membership,
    consensus_cover,
    cover_stability,
    ConsensusResult,
    consensus_oca,
)

__all__ = [
    "CommunityRelation",
    "community_graph",
    "containment_forest",
    "HierarchyLevel",
    "hierarchical_oca",
    "RESIDUAL",
    "Supernode",
    "Superedge",
    "GraphSummaryModel",
    "summarize_graph",
    "reconstruction_error",
    "co_membership",
    "consensus_cover",
    "cover_stability",
    "ConsensusResult",
    "consensus_oca",
]
