"""The unified detector API: registry, built-in detectors, sessions.

Two abstractions replace the four incompatible per-algorithm call
shapes the library grew up with:

* the **registry** (:func:`get_detector`, :func:`register_detector`)
  maps string keys to :class:`CommunityDetector` implementations that
  all speak :class:`~repro.detection.DetectionRequest` /
  :class:`~repro.detection.DetectionResult`;
* the **session** (:class:`GraphSession`) binds one graph and amortises
  its expensive artifacts — compiled CSR form, spectral ``c``, warm
  worker pool — across repeated detect calls.

Quickstart::

    from repro import DetectionRequest, GraphSession, get_detector

    # one-shot
    result = get_detector("oca").detect(DetectionRequest(graph=g, seed=7))

    # serving loop: graph setup paid exactly once
    with GraphSession(g, workers=4, batch_size=32) as session:
        covers = [session.detect("oca", seed=s).cover for s in range(20)]
        print(session.stats)

Importing this package registers the five built-in detectors (``oca``,
``lfk``, ``cfinder``, ``cpm``, ``modularity_greedy``).
"""

from .registry import (
    CommunityDetector,
    available_detectors,
    get_detector,
    register_detector,
)
from .builtin import (
    CFinderDetector,
    CPMDetector,
    DetectorBase,
    LFKDetector,
    ModularityGreedyDetector,
    OCADetector,
)
from .session import GraphSession, SessionStats

__all__ = [
    "CommunityDetector",
    "register_detector",
    "get_detector",
    "available_detectors",
    "DetectorBase",
    "OCADetector",
    "LFKDetector",
    "CFinderDetector",
    "CPMDetector",
    "ModularityGreedyDetector",
    "GraphSession",
    "SessionStats",
]
