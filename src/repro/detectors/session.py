"""GraphSession: the serving layer for repeat detection traffic.

The ROADMAP's north star is serving heavy repeat traffic over shared
graphs.  The expensive per-graph artifacts — the compiled CSR form, the
spectral ``c`` (the power method dominates cold runs: ~3.3 s vs ~0.23 s
engine loop at n = 6000, see BENCH_csr.json), and a warm worker pool —
must therefore live in a reusable object rather than being rebuilt
inside every top-level call.  That object is :class:`GraphSession`::

    with GraphSession(graph, workers=4, batch_size=32) as session:
        for seed in range(100):
            result = session.detect("oca", seed=seed)

The first call pays graph compilation, the power method, and pool
startup; calls 2..N reuse all three (asserted by the session tests and
measured by ``benchmarks/bench_session.py``).  Covers are byte-identical
to one-shot registry calls and to the legacy entry points for the same
seeds — the session changes wall-clock time, never results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from .._rng import SeedLike
from ..detection import DetectionRequest, DetectionResult
from ..engine.engine import ExecutionEngine
from ..errors import AlgorithmError
from ..graph import Graph
from ..graph.csr import CompiledGraph, compile_graph
from .registry import get_detector

__all__ = ["SessionStats", "GraphSession"]


@dataclass
class SessionStats:
    """Aggregate accounting of one session's serving behaviour.

    Attributes
    ----------
    nodes / edges:
        Size of the bound graph.
    detect_calls:
        Total :meth:`GraphSession.detect` invocations.
    by_algorithm:
        Call counts per registry key.
    power_method_runs / spectral_cache_hits:
        How often the spectral ``c`` was computed vs served from the
        compiled graph's cache (``config``-supplied values count as
        neither).
    pool_reuses:
        Detect calls that ran on the already-warm persistent worker
        pool instead of starting one.
    detect_seconds:
        Wall-clock summed over all detect calls.
    """

    nodes: int = 0
    edges: int = 0
    detect_calls: int = 0
    by_algorithm: Dict[str, int] = field(default_factory=dict)
    power_method_runs: int = 0
    spectral_cache_hits: int = 0
    pool_reuses: int = 0
    detect_seconds: float = 0.0

    def record(self, result: DetectionResult) -> None:
        """Fold one detect result into the aggregate."""
        self.detect_calls += 1
        self.by_algorithm[result.algorithm] = (
            self.by_algorithm.get(result.algorithm, 0) + 1
        )
        self.detect_seconds += result.elapsed_seconds
        c_source = result.stats.get("c_source")
        if c_source == "power_method":
            self.power_method_runs += 1
        elif c_source == "cache":
            self.spectral_cache_hits += 1
        if result.stats.get("engine_pool") == "reused":
            self.pool_reuses += 1


class GraphSession:
    """One graph, bound once, served many times.

    Parameters
    ----------
    graph:
        The graph to serve — a :class:`~repro.graph.Graph` (compiled
        here, once) or an already-compiled
        :class:`~repro.graph.CompiledGraph`.
    workers / backend / batch_size / representation:
        Default execution configuration for every :meth:`detect` call;
        individual calls may override algorithm parameters but share the
        session's worker pool.

    The session is a context manager; :meth:`close` releases the
    persistent worker pool.  Detection through a closed session raises.

    Notes
    -----
    The bound graph must not be mutated while the session is open: the
    compiled form, the cached spectrum, and the shipped worker contexts
    all describe the graph as it was at binding time.  (Mutation drops
    the graph's own compiled cache, so subsequent sessions see the new
    structure — but an open session would keep serving the old one.)
    """

    def __init__(
        self,
        graph,
        workers: int = 1,
        backend: str = "auto",
        batch_size: Optional[int] = None,
        representation: str = "auto",
    ) -> None:
        if not isinstance(graph, (Graph, CompiledGraph)):
            raise AlgorithmError(
                "GraphSession binds a Graph or CompiledGraph, "
                f"got {type(graph).__name__}"
            )
        self._graph = graph
        # Compile exactly once, up front: every CSR-representation
        # detect, every spectral resolution, and every worker payload
        # reuses this object.
        self._compiled = compile_graph(graph)
        self.workers = workers
        self.backend = backend
        self.batch_size = batch_size
        self.representation = representation
        self._engine = ExecutionEngine(
            backend=backend,
            workers=workers,
            batch_size=batch_size,
            persistent=True,
        )
        self._stats = SessionStats(
            nodes=self._compiled.number_of_nodes(),
            edges=self._compiled.number_of_edges(),
        )
        self._closed = False

    # ------------------------------------------------------------------
    @property
    def graph(self):
        """The bound graph, exactly as passed in."""
        return self._graph

    @property
    def compiled(self) -> CompiledGraph:
        """The session's shared compiled form."""
        return self._compiled

    @property
    def stats(self) -> SessionStats:
        """Serving statistics accumulated so far."""
        return self._stats

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._closed

    # ------------------------------------------------------------------
    def detect(
        self,
        algorithm: str = "oca",
        seed: SeedLike = None,
        **params: Any,
    ) -> DetectionResult:
        """Run ``algorithm`` on the bound graph.

        ``params`` are forwarded to the detector (see
        :mod:`repro.detectors.builtin` for each algorithm's surface).
        Returns the detector's :class:`~repro.detection.DetectionResult`
        and folds its accounting into :attr:`stats`.
        """
        if self._closed:
            raise AlgorithmError("cannot detect through a closed GraphSession")
        detector = get_detector(algorithm)
        request = DetectionRequest(
            graph=self._graph,
            seed=seed,
            params=params,
            workers=self.workers,
            backend=self.backend,
            batch_size=self.batch_size,
            representation=self.representation,
            engine=self._engine,
        )
        result = detector.detect(request)
        self._stats.record(result)
        return result

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the persistent worker pool; idempotent."""
        if not self._closed:
            self._engine.close()
            self._closed = True

    def __enter__(self) -> "GraphSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return (
            f"GraphSession(n={self._stats.nodes}, m={self._stats.edges}, "
            f"calls={self._stats.detect_calls}, {state})"
        )
