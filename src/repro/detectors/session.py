"""GraphSession: the serving layer for repeat detection traffic.

The ROADMAP's north star is serving heavy repeat traffic over shared
graphs.  The expensive per-graph artifacts — the compiled CSR form, the
spectral ``c`` (the power method dominates cold runs: ~3.3 s vs ~0.23 s
engine loop at n = 6000, see BENCH_csr.json), and a warm worker pool —
must therefore live in a reusable object rather than being rebuilt
inside every top-level call.  That object is :class:`GraphSession`::

    with GraphSession(graph, workers=4, batch_size=32) as session:
        for seed in range(100):
            result = session.detect("oca", seed=seed)

The first call pays graph compilation, the power method, and pool
startup; calls 2..N reuse all three (asserted by the session tests and
measured by ``benchmarks/bench_session.py``).  Covers are byte-identical
to one-shot registry calls and to the legacy entry points for the same
seeds — the session changes wall-clock time, never results.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from .._rng import SeedLike
from ..detection import DetectionRequest, DetectionResult
from ..engine.engine import ExecutionEngine
from ..errors import AlgorithmError, SessionClosedError
from ..graph import Graph
from ..graph.csr import CompiledGraph, compile_graph
from ..observability import MetricsRegistry
from .registry import get_detector

__all__ = ["SessionStats", "GraphSession"]


@dataclass
class SessionStats:
    """Aggregate accounting of one session's serving behaviour.

    Attributes
    ----------
    nodes / edges:
        Size of the bound graph.
    detect_calls:
        Total :meth:`GraphSession.detect` invocations.
    by_algorithm:
        Call counts per registry key.
    power_method_runs / spectral_cache_hits:
        How often a spectral solver actually ran (the power method or
        Lanczos — any solve that resolved ``c`` from scratch) vs the
        value being served from the compiled graph's cache
        (``config``-supplied values count as neither).
    pool_reuses:
        Detect calls that ran on the already-warm persistent worker
        pool instead of starting one.
    pools_closed:
        How many times the session's persistent worker pool was actually
        torn down (close, reopen-after-close, incompatible-context
        replacement) — reported through the engine's close hooks.
    memory_bytes:
        Resident footprint of the session's per-graph artifacts (the
        compiled CSR arrays plus the label table); what the
        :class:`~repro.serving.SessionManager` charges against its
        memory budget.
    detect_seconds:
        Wall-clock summed over all detect calls.
    """

    nodes: int = 0
    edges: int = 0
    detect_calls: int = 0
    by_algorithm: Dict[str, int] = field(default_factory=dict)
    power_method_runs: int = 0
    spectral_cache_hits: int = 0
    pool_reuses: int = 0
    pools_closed: int = 0
    memory_bytes: int = 0
    detect_seconds: float = 0.0

    def record(self, result: DetectionResult) -> None:
        """Fold one detect result into the aggregate."""
        self.detect_calls += 1
        self.by_algorithm[result.algorithm] = (
            self.by_algorithm.get(result.algorithm, 0) + 1
        )
        self.detect_seconds += result.elapsed_seconds
        c_source = result.stats.get("c_source")
        if c_source in ("power_method", "lanczos"):
            self.power_method_runs += 1
        elif c_source == "cache":
            self.spectral_cache_hits += 1
        if result.stats.get("engine_pool") == "reused":
            self.pool_reuses += 1


class _SessionMetrics:
    """Registry instruments shared by every session on one registry.

    Unlike the queue/manager stats, :class:`SessionStats` stays a plain
    per-session record (a stack serves many sessions, and per-session
    accounting must not merge) — the session *additionally* publishes
    each event here, so the stack registry carries the aggregate the
    ``/metrics`` scrape wants: detect latency per algorithm, spectral
    solve sources, pool lifecycle, compile time, and the engine's
    dispatch/reduce split.
    """

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        self.detect_total = registry.counter(
            "repro_session_detect_total",
            "Detect calls served by warm sessions, per algorithm",
            labelnames=("algorithm",),
        )
        self.detect_seconds = registry.histogram(
            "repro_session_detect_seconds",
            "Detect wall-clock per algorithm",
            labelnames=("algorithm",),
        )
        self.compile_seconds = registry.counter(
            "repro_session_compile_seconds_total",
            "Wall-clock spent compiling graphs at session bind",
        )
        self.binds = registry.counter(
            "repro_session_binds_total", "Sessions bound (graphs compiled)"
        )
        self.spectral = registry.counter(
            "repro_session_spectral_total",
            "How detects resolved the admissible c, by source",
            labelnames=("source",),
        )
        self.pool_reuses = registry.counter(
            "repro_session_pool_reuses_total",
            "Detects served on an already-warm persistent worker pool",
        )
        self.pools_closed = registry.counter(
            "repro_session_pools_closed_total",
            "Persistent worker pools actually torn down",
        )
        self.engine_batches = registry.counter(
            "repro_engine_batches_total", "Engine batches dispatched"
        )
        tasks = registry.counter(
            "repro_engine_tasks_total",
            "Engine growth tasks, by what the reducer did with them",
            labelnames=("outcome",),
        )
        self.tasks_folded = tasks.labels(outcome="folded")
        self.tasks_discarded = tasks.labels(outcome="discarded")
        self.engine_dispatch_seconds = registry.counter(
            "repro_engine_dispatch_seconds_total",
            "Wall-clock spent waiting on engine workers",
        )
        self.engine_reduce_seconds = registry.counter(
            "repro_engine_reduce_seconds_total",
            "Wall-clock spent folding engine results",
        )
        self.engine_shipping = registry.counter(
            "repro_engine_shipping_total",
            "Detects by how the worker context crossed the process "
            "boundary (shm / pickle / inline)",
            labelnames=("mode",),
        )
        self.engine_worker_calls = registry.counter(
            "repro_engine_worker_calls_total",
            "Executor dispatches made (chunked worker calls, not tasks)",
        )
        self.engine_chunk_tasks = registry.histogram(
            "repro_engine_chunk_tasks",
            "Growth tasks per grouped worker call",
            buckets=(1, 2, 4, 8, 16, 32, 64, 128),
        )

    def record(self, result: DetectionResult) -> None:
        """Publish one detect result's events into the registry."""
        algorithm = result.algorithm
        self.detect_total.labels(algorithm).inc()
        self.detect_seconds.labels(algorithm).observe(result.elapsed_seconds)
        c_source = result.stats.get("c_source")
        if c_source:
            self.spectral.labels(str(c_source)).inc()
        if result.stats.get("engine_pool") == "reused":
            self.pool_reuses.inc()
        engine_stats = getattr(result, "engine_stats", None)
        if engine_stats is not None:
            self.engine_batches.inc(engine_stats.batches)
            self.tasks_folded.inc(engine_stats.tasks_folded)
            self.tasks_discarded.inc(engine_stats.tasks_discarded)
            self.engine_dispatch_seconds.inc(engine_stats.dispatch_seconds)
            self.engine_reduce_seconds.inc(engine_stats.reduce_seconds)
            self.engine_shipping.labels(engine_stats.shipping).inc()
            if engine_stats.worker_calls:
                self.engine_worker_calls.inc(engine_stats.worker_calls)
                self.engine_chunk_tasks.observe(
                    engine_stats.tasks_dispatched
                    / max(1, engine_stats.worker_calls)
                )


class GraphSession:
    """One graph, bound once, served many times.

    Parameters
    ----------
    graph:
        The graph to serve — a :class:`~repro.graph.Graph` (compiled
        here, once) or an already-compiled
        :class:`~repro.graph.CompiledGraph`.
    workers / backend / batch_size / representation / shipping:
        Default execution configuration for every :meth:`detect` call;
        individual calls may override algorithm parameters but share the
        session's worker pool.  ``shipping`` picks how the compiled
        graph reaches process workers (``auto`` / ``shm`` / ``pickle``);
        any shared-memory segments the engine exports are owned by the
        session's persistent pool and released by :meth:`close` (after
        the workers are joined) — eviction from a
        :class:`~repro.serving.SessionManager` goes through the same
        path, so no ``/dev/shm`` entry outlives its session.

    The session is a context manager; :meth:`close` releases the
    persistent worker pool.  Detection through a closed session — and a
    second explicit ``close()`` — raises
    :class:`~repro.errors.SessionClosedError`; :meth:`reopen` brings a
    closed session back (the compiled graph and spectral cache survive
    the close, so a reopened session is still warm except for the pool).

    Notes
    -----
    The bound graph must not be mutated while the session is open: the
    compiled form, the cached spectrum, and the shipped worker contexts
    all describe the graph as it was at binding time.  (Mutation drops
    the graph's own compiled cache, so subsequent sessions see the new
    structure — but an open session would keep serving the old one.)
    """

    def __init__(
        self,
        graph,
        workers: int = 1,
        backend: str = "auto",
        batch_size: Optional[int] = None,
        representation: str = "auto",
        shipping: str = "auto",
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if not isinstance(graph, (Graph, CompiledGraph)):
            raise AlgorithmError(
                "GraphSession binds a Graph or CompiledGraph, "
                f"got {type(graph).__name__}"
            )
        self._graph = graph
        self.registry = registry if registry is not None else MetricsRegistry()
        self._metrics = _SessionMetrics(self.registry)
        # Compile exactly once, up front: every CSR-representation
        # detect, every spectral resolution, and every worker payload
        # reuses this object.  (The measured time is near-zero when the
        # graph arrives with a warm compile cache — that, too, is worth
        # seeing on a dashboard.)
        compile_started = time.perf_counter()
        self._compiled = compile_graph(graph)
        self._metrics.compile_seconds.inc(
            time.perf_counter() - compile_started
        )
        self._metrics.binds.inc()
        self.workers = workers
        self.backend = backend
        self.batch_size = batch_size
        self.representation = representation
        self.shipping = shipping
        self._stats = SessionStats(
            nodes=self._compiled.number_of_nodes(),
            edges=self._compiled.number_of_edges(),
            memory_bytes=self._measure_memory(),
        )
        self._closed = False
        self._engine = self._build_engine()

    def _build_engine(self) -> ExecutionEngine:
        engine = ExecutionEngine(
            backend=self.backend,
            workers=self.workers,
            batch_size=self.batch_size,
            persistent=True,
            shipping=self.shipping,
        )
        engine.add_close_hook(self._on_pool_closed)
        return engine

    def _on_pool_closed(self) -> None:
        self._stats.pools_closed += 1
        self._metrics.pools_closed.inc()

    def _measure_memory(self) -> int:
        """Footprint of the per-graph artifacts this session pins.

        The CSR arrays dominate; for non-identity labels the label table
        (list slots + the label objects themselves) is charged too, so a
        string-labelled graph costs visibly more than its integer twin.
        """
        total = self._compiled.nbytes()
        if not self._compiled.identity_labels:
            labels = self._compiled.labels
            total += sys.getsizeof(labels)
            total += sum(sys.getsizeof(label) for label in labels)
        return total

    # ------------------------------------------------------------------
    @property
    def graph(self):
        """The bound graph, exactly as passed in."""
        return self._graph

    @property
    def compiled(self) -> CompiledGraph:
        """The session's shared compiled form."""
        return self._compiled

    @property
    def stats(self) -> SessionStats:
        """Serving statistics accumulated so far."""
        return self._stats

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._closed

    @property
    def fingerprint(self) -> str:
        """The content fingerprint of the bound graph.

        The key the :class:`~repro.serving.SessionManager` files this
        session under; see :func:`repro.serving.graph_fingerprint`.
        Cached on the compiled form, so repeated reads are free.
        """
        # Imported lazily: repro.serving imports this module.
        from ..serving.fingerprint import graph_fingerprint

        return graph_fingerprint(self._compiled)

    def memory_bytes(self) -> int:
        """Resident footprint of the session's per-graph artifacts."""
        return self._stats.memory_bytes

    # ------------------------------------------------------------------
    def detect(
        self,
        algorithm: str = "oca",
        seed: SeedLike = None,
        **params: Any,
    ) -> DetectionResult:
        """Run ``algorithm`` on the bound graph.

        ``params`` are forwarded to the detector (see
        :mod:`repro.detectors.builtin` for each algorithm's surface).
        Returns the detector's :class:`~repro.detection.DetectionResult`
        and folds its accounting into :attr:`stats`.
        """
        if self._closed:
            raise SessionClosedError(
                "cannot detect through a closed GraphSession "
                "(call reopen() to bring it back)"
            )
        detector = get_detector(algorithm)
        request = DetectionRequest(
            graph=self._graph,
            seed=seed,
            params=params,
            workers=self.workers,
            backend=self.backend,
            batch_size=self.batch_size,
            representation=self.representation,
            shipping=self.shipping,
            engine=self._engine,
        )
        result = detector.detect(request)
        self._stats.record(result)
        self._metrics.record(result)
        return result

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the persistent worker pool (and any shm segments).

        The engine joins its workers before unlinking exported
        shared-memory segments, so a racing attach can never find a
        vanished segment.  A second explicit ``close()`` raises
        :class:`~repro.errors.SessionClosedError` — a clear lifecycle
        error at the call site rather than an obscure failure inside the
        pool teardown path.  (Context-manager exit stays tolerant: a
        session closed inside its ``with`` block exits cleanly.)  The
        closed flag is set *before* the pool teardown so the session is
        unusable even if teardown itself fails.
        """
        if self._closed:
            raise SessionClosedError(
                "GraphSession.close() called on an already-closed session"
            )
        self._closed = True
        self._engine.close()

    def reopen(self) -> "GraphSession":
        """Bring a closed session back into service; returns ``self``.

        The expensive per-graph artifacts — the compiled CSR form and
        the spectral cache living on it — survived the close, so a
        reopened session only pays worker-pool startup again.  This is
        what lets the serving layer's LRU park and revive sessions
        cheaply.  No-op on an open session.
        """
        if self._closed:
            self._engine = self._build_engine()
            self._closed = False
        return self

    def __enter__(self) -> "GraphSession":
        return self

    def __exit__(self, *exc_info) -> None:
        if not self._closed:
            self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return (
            f"GraphSession(n={self._stats.nodes}, m={self._stats.edges}, "
            f"calls={self._stats.detect_calls}, {state})"
        )
