"""The detector registry: algorithm names to uniform implementations.

Every community-detection algorithm in the library registers here under
a short string key (``oca``, ``lfk``, ``cfinder``, ``cpm``) and is
reachable through one call shape::

    detector = get_detector("lfk")
    result = detector.detect(DetectionRequest(graph=g, seed=7))

The registry is open: downstream code adds algorithms with
:func:`register_detector` and they immediately become available to the
experiment runner, the CLI, and :class:`~repro.detectors.GraphSession`
— no adapter wiring required.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Protocol, Type, runtime_checkable

from ..detection import DetectionRequest, DetectionResult
from ..errors import AlgorithmError

__all__ = [
    "CommunityDetector",
    "register_detector",
    "get_detector",
    "available_detectors",
]


@runtime_checkable
class CommunityDetector(Protocol):
    """What the registry hands out: a named, uniform detect callable.

    Attributes
    ----------
    name:
        The registry key the detector answers to (lower-case).

    Implementations must be cheap to instantiate and stateless across
    :meth:`detect` calls — all per-call state travels in the request,
    all per-graph state lives on the graph (compiled form, spectral
    cache) or in the session that owns the request.
    """

    name: str

    def detect(self, request: DetectionRequest) -> DetectionResult:
        """Run the algorithm described by ``request``."""
        ...


#: Registered detector classes, keyed by lower-case name.
_DETECTORS: Dict[str, Type] = {}


def register_detector(*names: str) -> Callable[[Type], Type]:
    """Class decorator registering a detector under one or more names.

    The first name is canonical (it becomes the instance's ``name``
    attribute if the class does not set one); the rest are aliases.  Keys
    are case-insensitive.  Re-registering a name overwrites it, which is
    deliberate: tests and downstream code may shadow a built-in with an
    instrumented variant.
    """
    if not names:
        raise AlgorithmError("register_detector needs at least one name")

    def decorate(cls: Type) -> Type:
        for name in names:
            _DETECTORS[name.lower()] = cls
        return cls

    return decorate


def get_detector(name: str) -> CommunityDetector:
    """Instantiate the detector registered under ``name``.

    Lookup is case-insensitive (``"OCA"``, ``"oca"`` and ``"CFinder"``
    all resolve), so the experiment figures' display labels double as
    registry keys.  Unknown names raise :class:`AlgorithmError` listing
    what is available.
    """
    try:
        cls = _DETECTORS[name.lower()]
    except KeyError:
        valid = ", ".join(available_detectors())
        raise AlgorithmError(
            f"unknown algorithm {name!r}; expected one of {valid}"
        ) from None
    return cls()


def available_detectors() -> List[str]:
    """Sorted registry keys (including aliases)."""
    return sorted(_DETECTORS)
