"""The five built-in detectors: OCA and the paper's baselines.

Each class adapts one algorithm to the uniform
:class:`~repro.detection.DetectionRequest` /
:class:`~repro.detection.DetectionResult` contract:

* ``oca`` — the paper's algorithm, on the parallel execution engine;
* ``lfk`` — local fitness optimisation (ref. [8]);
* ``cfinder`` — k-clique percolation with the paper's parameterisation
  (``k = 3``, faithful quadratic clique-overlap discovery);
* ``cpm`` — the same percolation with the full parameter surface
  (``k``, ``faithful_overlap``) exposed;
* ``modularity_greedy`` — Newman's CNM agglomeration, the disjoint
  reference point.

All five accept either graph form — covers from compiled input are
translated back to original labels and are byte-identical to what the
legacy entry points return for the same seed — and every one honours the
request's ``representation`` knob (``auto`` / ``dict`` / ``csr``):
``csr`` runs the algorithm's dense-id kernels on the compiled CSR
arrays (compiling the graph if the request carried the dict form),
``dict`` forces the label-keyed path, and ``auto`` picks the detector's
preferred representation.  Covers are byte-identical across
representations for every detector; the resolved choice is reported in
``stats["representation"]``.  The shared plumbing (normalisation,
translation, echo, timing) lives in :class:`DetectorBase`; new
algorithms subclass it, implement ``_detect`` and register with
:func:`~repro.detectors.register_detector`.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Any, Dict, Tuple

from ..baselines.cpm import _percolate_ids, clique_percolation
from ..baselines.lfk import _lfk, _lfk_compiled
from ..baselines.modularity_greedy import greedy_modularity
from ..communities import Cover, Partition
from ..core.config import OCAConfig
from ..core.oca import OCA
from ..detection import (
    DetectionRequest,
    DetectionResult,
    normalized_graph,
    translate_cover,
)
from ..errors import AlgorithmError, ConfigurationError
from ..graph.csr import CompiledGraph, compile_graph
from .registry import register_detector

__all__ = [
    "DetectorBase",
    "OCADetector",
    "LFKDetector",
    "CFinderDetector",
    "CPMDetector",
    "ModularityGreedyDetector",
]


def _take(params: Dict[str, Any], name: str, default: Any) -> Any:
    """Pop ``name`` from a params copy, falling back to ``default``."""
    return params.pop(name) if name in params else default


class DetectorBase:
    """Shared request/response plumbing for registered detectors.

    Subclasses implement :meth:`_detect` against a normalised graph
    (always label-keyed from the algorithm's point of view — compiled
    input arrives as its identity-labelled view) and return any
    :class:`DetectionResult`; this base translates covers back to the
    caller's label space, stamps the algorithm name, echoes the request
    parameters, and times the whole call.
    """

    name: str = ""

    #: Representations the algorithm supports, preferred first;
    #: ``request.representation == "auto"`` resolves to the head.  Every
    #: built-in supports both — ``csr`` is the hot path the serving
    #: layer's warm/store-loaded sessions run on.
    representations: Tuple[str, ...] = ("csr", "dict")

    def detect(self, request: DetectionRequest) -> DetectionResult:
        start = time.perf_counter()
        run_graph, source = normalized_graph(request.graph)
        result = self._detect(run_graph, request)
        if source is not None:
            result.cover = translate_cover(result.cover, source)
            self._translate_extras(result, source)
        result.algorithm = self.name
        result.params = dict(request.params)
        result.elapsed_seconds = time.perf_counter() - start
        return result

    # -- hooks ---------------------------------------------------------
    def _detect(self, graph, request: DetectionRequest) -> DetectionResult:
        raise NotImplementedError

    def _translate_extras(self, result: DetectionResult, source) -> None:
        """Translate algorithm-specific id-space fields (default: none)."""

    def _reject_unknown(self, params: Dict[str, Any]) -> None:
        if params:
            unknown = ", ".join(sorted(params))
            raise AlgorithmError(
                f"unknown parameter(s) for {self.name!r}: {unknown}"
            )

    # -- representation dispatch ---------------------------------------
    def _resolve_representation(self, request: DetectionRequest) -> str:
        """The concrete representation this call runs on.

        Mirrors ``OCAConfig.representation`` semantics: ``auto`` picks
        the detector's preferred form, anything else must be a supported
        explicit choice.
        """
        representation = request.representation
        if representation == "auto":
            return self.representations[0]
        if representation not in self.representations:
            supported = ", ".join(("auto",) + self.representations)
            raise ConfigurationError(
                f"unknown representation {representation!r} for "
                f"{self.name!r} (choose one of: {supported})"
            )
        return representation

    @staticmethod
    def _cover_from_ids(compiled: CompiledGraph, communities) -> Cover:
        """A dense-id community list as a cover in ``compiled``'s label
        space (identity-labelled graphs pass straight through)."""
        if compiled.identity_labels:
            return Cover(communities)
        return Cover(
            compiled.labels_of(community) for community in communities
        )


@register_detector("oca")
class OCADetector(DetectorBase):
    """The paper's algorithm behind the uniform contract.

    ``params`` accepts any :class:`~repro.core.config.OCAConfig` field,
    or a complete config object under the key ``config``.  The request's
    engine knobs (``workers`` / ``backend`` / ``batch_size`` /
    ``representation`` / ``shipping``) seed the config defaults; a supplied
    ``request.engine`` (the session's persistent pool) is used only when
    it matches the resolved config's engine knobs — a mismatch (e.g. a
    per-call ``batch_size`` override) falls back to an ephemeral engine
    so the config, which determines the cover, always wins.

    Representation resolution is delegated to the config (the CSR greedy
    kernel is exact only for fitness functions monotone in ``E_in``, so
    ``auto`` is per-fitness there).
    """

    name = "oca"

    def _detect(self, graph, request: DetectionRequest) -> DetectionResult:
        params = dict(request.params)
        config = params.pop("config", None)
        if config is not None:
            if params:
                raise AlgorithmError(
                    "pass either a config object or individual OCA "
                    "parameters, not both"
                )
        else:
            valid = {field.name for field in dataclasses.fields(OCAConfig)}
            unknown = {name: value for name, value in params.items() if name not in valid}
            if unknown:
                self._reject_unknown(unknown)
            merged: Dict[str, Any] = {
                "workers": request.workers,
                "backend": request.backend,
                "batch_size": request.batch_size,
                "representation": request.representation,
                "shipping": request.shipping,
            }
            merged.update(params)
            config = OCAConfig(**merged)
        return OCA(config).run(graph, seed=request.seed, engine=request.engine)

    def _translate_extras(self, result, source) -> None:
        result.raw_cover = translate_cover(result.raw_cover, source)


@register_detector("lfk")
class LFKDetector(DetectorBase):
    """LFK local fitness optimisation (inherently sequential).

    ``params``: ``alpha`` (resolution, default 1.0) and
    ``max_steps_per_community``.  ``representation`` selects the scan
    implementation — ``csr`` (the ``auto`` default) runs the vectorised
    dense-id kernels of :mod:`repro.baselines.lfk`, ``dict`` the
    label-keyed original; covers are byte-identical either way.  The
    remaining engine knobs are ignored.
    """

    name = "lfk"

    def _detect(self, graph, request: DetectionRequest) -> DetectionResult:
        params = dict(request.params)
        alpha = _take(params, "alpha", 1.0)
        max_steps = _take(params, "max_steps_per_community", None)
        self._reject_unknown(params)
        representation = self._resolve_representation(request)
        if representation == "csr":
            compiled = compile_graph(graph)
            communities, computed = _lfk_compiled(
                compiled,
                alpha=alpha,
                seed=request.seed,
                max_steps_per_community=max_steps,
            )
            return DetectionResult(
                cover=self._cover_from_ids(compiled, communities),
                stats={
                    "alpha": alpha,
                    "natural_communities": computed,
                    "representation": representation,
                },
            )
        outcome = _lfk(
            graph,
            alpha=alpha,
            seed=request.seed,
            max_steps_per_community=max_steps,
        )
        return DetectionResult(
            cover=outcome.cover,
            stats={
                "alpha": outcome.alpha,
                "natural_communities": outcome.natural_communities,
                "representation": representation,
            },
        )


@register_detector("cpm")
class CPMDetector(DetectorBase):
    """k-clique percolation with the full parameter surface.

    ``params``: ``k`` (default 3) and ``faithful_overlap`` (default
    ``True``, the published quadratic clique-overlap scan).  The seed is
    ignored — percolation is deterministic.  ``representation`` selects
    the percolation substrate: ``csr`` (the ``auto`` default) feeds
    Bron–Kerbosch from the compiled rows and resolves clique adjacency
    with the vectorised subset-grouping kernel, ``dict`` runs the
    Python-set original (where ``faithful_overlap`` picks the published
    quadratic scan); covers are identical either way.
    """

    name = "cpm"

    def _detect(self, graph, request: DetectionRequest) -> DetectionResult:
        params = dict(request.params)
        k = _take(params, "k", 3)
        faithful = _take(params, "faithful_overlap", True)
        self._reject_unknown(params)
        representation = self._resolve_representation(request)
        if representation == "csr":
            compiled = compile_graph(graph)
            communities, clique_count = _percolate_ids(
                compiled, k=k, faithful_overlap=faithful
            )
            return DetectionResult(
                cover=self._cover_from_ids(compiled, communities),
                stats={
                    "k": k,
                    "maximal_cliques": clique_count,
                    "representation": representation,
                },
            )
        outcome = clique_percolation(graph, k=k, faithful_overlap=faithful)
        return DetectionResult(
            cover=outcome.cover,
            stats={
                "k": outcome.k,
                "maximal_cliques": outcome.maximal_cliques,
                "representation": representation,
            },
        )


@register_detector("cfinder")
class CFinderDetector(CPMDetector):
    """CFinder as the paper ran it: CPM at ``k = 3``.

    Identical implementation to :class:`CPMDetector`; registered
    separately so experiment code can name the baseline the way the
    figures label it while parameter sweeps use ``cpm``.
    """

    name = "cfinder"


@register_detector("modularity_greedy")
class ModularityGreedyDetector(DetectorBase):
    """Newman's CNM greedy agglomeration — the disjoint reference point.

    ``params``: none.  The seed is ignored — the agglomeration is
    deterministic (canonical rank-space tie-breaking).  Both
    representations run the same rank-space merge loop, ``csr`` merely
    feeding it the compiled rows, so the partition is identical either
    way.  The cover is a :class:`~repro.communities.Partition`: a node
    belongs to exactly one block, which is the structural limitation the
    paper's overlapping algorithms move beyond.
    """

    name = "modularity_greedy"

    def _detect(self, graph, request: DetectionRequest) -> DetectionResult:
        self._reject_unknown(dict(request.params))
        representation = self._resolve_representation(request)
        run_graph = compile_graph(graph) if representation == "csr" else graph
        outcome = greedy_modularity(run_graph)
        cover = outcome.partition
        if (
            isinstance(run_graph, CompiledGraph)
            and not run_graph.identity_labels
        ):
            cover = Partition(
                run_graph.labels_of(block) for block in cover
            )
        return DetectionResult(
            cover=cover,
            stats={
                "modularity": outcome.modularity,
                "merges": outcome.merges,
                "representation": representation,
            },
        )
