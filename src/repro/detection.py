"""The uniform detection contract: one request shape, one result shape.

The paper's evaluation runs four algorithms — OCA, LFK, and CFinder's
k-clique percolation (CPM) — over the same graphs many times.  Before
this module each exposed its own call shape (``oca`` returned an
``OCAResult``, the baselines returned bare covers or their own result
types, and the experiment harness hand-wired adapters).  The detector
API normalises all of them behind two small value types:

:class:`DetectionRequest`
    What to run on: a graph (mutable :class:`~repro.graph.Graph` or
    immutable :class:`~repro.graph.CompiledGraph`), a seed, a free-form
    ``params`` mapping forwarded to the algorithm, and the execution
    knobs (``workers`` / ``backend`` / ``batch_size`` /
    ``representation``) for algorithms that support them.

:class:`DetectionResult`
    What every algorithm hands back: the cover, a ``stats`` mapping of
    algorithm-specific diagnostics (including the cache hit/miss
    accounting the serving layer relies on), wall-clock timing, and an
    echo of the algorithm name and parameters that produced it.
    :class:`~repro.core.oca.OCAResult` is a subtype, so OCA callers keep
    their richer fields while generic callers treat every algorithm
    uniformly.

The registry that maps names to algorithms and the session layer that
amortises per-graph work live in :mod:`repro.detectors`; this module is
deliberately dependency-light (graph + communities only) so the core
algorithm modules can import it without cycles.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from ._rng import SeedLike
from .communities import Cover
from .graph.csr import CompiledGraph

__all__ = [
    "DetectionRequest",
    "DetectionResult",
    "normalized_graph",
    "translate_cover",
]


@dataclass
class DetectionRequest:
    """One community-detection invocation, algorithm-agnostic.

    Attributes
    ----------
    graph:
        A :class:`~repro.graph.Graph` or a
        :class:`~repro.graph.CompiledGraph`.  Compiled input runs in
        dense-id space and the resulting cover is translated back to the
        original labels, so the two forms are interchangeable — covers
        are byte-identical either way.
    seed:
        The usual :data:`~repro._rng.SeedLike`; ``None`` means fresh
        entropy.
    params:
        Algorithm-specific keyword parameters (e.g. ``alpha`` for LFK,
        ``k`` for CPM, any :class:`~repro.core.config.OCAConfig` field —
        or a full ``config`` object — for OCA).  Echoed back on the
        result.
    workers / backend / batch_size / representation / shipping:
        Execution knobs.  ``representation`` (``auto`` / ``dict`` /
        ``csr``) is honoured by **every** built-in detector — ``csr``
        runs the algorithm's vectorised dense-id kernels on the compiled
        CSR arrays, and never changes the cover.  The engine knobs
        proper (``workers`` / ``backend`` / ``batch_size`` /
        ``shipping``) apply to algorithms on the parallel execution
        engine (currently OCA) and are ignored by the inherently
        sequential baselines.  ``shipping`` picks how the compiled graph
        reaches process workers (``auto`` / ``shm`` / ``pickle``); like
        ``workers`` it never changes the cover.
    engine:
        Optional pre-built :class:`~repro.engine.ExecutionEngine` that
        the algorithm should run on instead of constructing its own —
        the hook :class:`~repro.detectors.GraphSession` uses to keep one
        warm worker pool alive across calls.  Advisory: an engine whose
        settings conflict with the resolved algorithm configuration is
        ignored in favour of one that honours the config (the config
        determines the cover).  Typed loosely to keep this module
        import-light.
    """

    graph: Any
    seed: SeedLike = None
    params: Dict[str, Any] = field(default_factory=dict)
    workers: int = 1
    backend: str = "auto"
    batch_size: Optional[int] = None
    representation: str = "auto"
    shipping: str = "auto"
    engine: Optional[Any] = None


@dataclass
class DetectionResult:
    """What any registered detector returns.

    Attributes
    ----------
    cover:
        The community structure found, in the label space of the request
        graph (dense ids are translated back for compiled input).
    algorithm:
        Registry name of the detector that produced this result.
    params:
        Echo of the request parameters, for provenance.
    stats:
        Algorithm-specific diagnostics plus the shared serving-layer
        accounting: ``c_source`` (``cache`` / ``power_method`` /
        ``config`` for OCA), ``compiled_reused``, ``engine_pool``.
    elapsed_seconds:
        Wall-clock duration of the detect call.
    """

    cover: Cover = field(default_factory=Cover)
    algorithm: str = ""
    params: Dict[str, Any] = field(default_factory=dict)
    stats: Dict[str, Any] = field(default_factory=dict)
    elapsed_seconds: float = 0.0

    def __repr__(self) -> str:
        return (
            f"DetectionResult(algorithm={self.algorithm!r}, "
            f"communities={len(self.cover)}, "
            f"elapsed={self.elapsed_seconds:.3f}s)"
        )


# ----------------------------------------------------------------------
# Graph-form normalisation
# ----------------------------------------------------------------------
def normalized_graph(graph: Any) -> Tuple[Any, Optional[CompiledGraph]]:
    """Resolve a request graph to the form the algorithms run on.

    Returns ``(run_graph, source)`` where ``source`` is the compiled
    graph whose label table translates covers back to the caller's
    space, or ``None`` when no translation is needed:

    * a :class:`Graph` runs as-is (algorithms are label-keyed);
    * a :class:`CompiledGraph` with identity labels runs as-is (ids are
      the labels);
    * a :class:`CompiledGraph` with original labels runs through its
      identity-labelled view — the algorithms see dense ids, and the
      returned ``source`` maps them back.
    """
    if isinstance(graph, CompiledGraph) and not graph.identity_labels:
        return graph.as_identity(), graph
    return graph, None


def translate_cover(cover: Cover, source: Optional[CompiledGraph]) -> Cover:
    """Map a dense-id cover back to original labels (no-op for ``None``)."""
    if source is None:
        return cover
    return Cover(source.labels_of(community) for community in cover)


def _warn_legacy(name: str, replacement: str) -> None:
    """Emit the compat-wrapper deprecation, attributed to the caller.

    ``stacklevel=3`` skips this helper and the wrapper itself, so the
    warning lands on the module that called the wrapper.  The tier-1
    pytest configuration escalates DeprecationWarnings originating from
    ``repro.*`` into errors, which is what keeps internal code off the
    legacy entry points; external callers see a default-ignored
    DeprecationWarning.
    """
    warnings.warn(
        f"{name} is a legacy compatibility wrapper; use {replacement} "
        "(see the Detector API section of the README)",
        DeprecationWarning,
        stacklevel=3,
    )
