"""Discrete power-law sampling utilities.

The LFR benchmark draws both node degrees and community sizes from
truncated discrete power laws; this module centralises that sampling plus
the small root-finding needed to hit a target mean degree.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from .._rng import SeedLike, as_numpy_rng
from ..errors import GeneratorError

__all__ = [
    "powerlaw_weights",
    "powerlaw_mean",
    "sample_powerlaw",
    "min_bound_for_mean",
    "sample_degree_sequence",
    "sample_sizes_to_total",
]


def powerlaw_weights(exponent: float, low: int, high: int) -> np.ndarray:
    """Unnormalised weights ``k^-exponent`` for ``k`` in ``[low, high]``."""
    if low < 1:
        raise GeneratorError(f"power-law support must start at >= 1, got {low}")
    if high < low:
        raise GeneratorError(f"empty support: low={low} > high={high}")
    support = np.arange(low, high + 1, dtype=np.float64)
    return support ** (-exponent)


def powerlaw_mean(exponent: float, low: int, high: int) -> float:
    """The mean of the truncated discrete power law on ``[low, high]``."""
    weights = powerlaw_weights(exponent, low, high)
    support = np.arange(low, high + 1, dtype=np.float64)
    return float(np.dot(support, weights) / weights.sum())


def sample_powerlaw(
    count: int,
    exponent: float,
    low: int,
    high: int,
    seed: SeedLike = None,
) -> List[int]:
    """Draw ``count`` integers from the truncated power law."""
    if count < 0:
        raise GeneratorError(f"count must be non-negative, got {count}")
    if count == 0:
        return []
    rng = as_numpy_rng(seed)
    weights = powerlaw_weights(exponent, low, high)
    probabilities = weights / weights.sum()
    values = rng.choice(np.arange(low, high + 1), size=count, p=probabilities)
    return [int(v) for v in values]


def min_bound_for_mean(
    target_mean: float, exponent: float, high: int
) -> int:
    """The ``low`` bound whose truncated power law best matches a mean.

    Scans ``low`` upward (the mean is increasing in ``low``) and returns
    the value minimising the absolute error to ``target_mean``.  Raises
    when the target is unreachable (above the mean at ``low = high``).
    """
    if target_mean < 1.0:
        raise GeneratorError(f"target mean degree must be >= 1, got {target_mean}")
    if powerlaw_mean(exponent, high, high) < target_mean - 1e-9:
        raise GeneratorError(
            f"target mean {target_mean} exceeds max degree {high}"
        )
    best_low = 1
    best_error = abs(powerlaw_mean(exponent, 1, high) - target_mean)
    for low in range(2, high + 1):
        error = abs(powerlaw_mean(exponent, low, high) - target_mean)
        if error < best_error:
            best_error = error
            best_low = low
        mean = powerlaw_mean(exponent, low, high)
        if mean > target_mean and error > best_error:
            break
    return best_low


def sample_degree_sequence(
    n: int,
    average_degree: float,
    max_degree: int,
    exponent: float = 2.0,
    seed: SeedLike = None,
) -> List[int]:
    """A degree sequence of length ``n`` with roughly the requested mean.

    Degrees follow a truncated power law with the given exponent; the
    lower truncation point is solved from the mean constraint, and the
    total is patched to even parity (a configuration-model requirement)
    by bumping one node.
    """
    if n <= 0:
        raise GeneratorError(f"n must be positive, got {n}")
    if max_degree >= n:
        raise GeneratorError(
            f"max_degree {max_degree} must be below n {n} for a simple graph"
        )
    low = min_bound_for_mean(average_degree, exponent, max_degree)
    degrees = sample_powerlaw(n, exponent, low, max_degree, seed=seed)
    if sum(degrees) % 2 == 1:
        # Flip the parity on some node that has headroom.
        for index, degree in enumerate(degrees):
            if degree < max_degree:
                degrees[index] += 1
                break
        else:
            degrees[0] -= 1
    return degrees


def sample_sizes_to_total(
    total: int,
    exponent: float,
    low: int,
    high: int,
    seed: SeedLike = None,
) -> List[int]:
    """Community sizes summing to *at least* ``total``, last one clipped.

    Draws sizes until the running sum reaches ``total``; the final size is
    clipped so the sum is exact, and if the clipped remainder falls below
    ``low`` it is folded into the previous community.  This mirrors the
    LFR reference implementation's behaviour.
    """
    if total < low:
        raise GeneratorError(
            f"cannot split {total} nodes into communities of size >= {low}"
        )
    rng = as_numpy_rng(seed)
    sizes: List[int] = []
    remaining = total
    while remaining > 0:
        draw = sample_powerlaw(1, exponent, low, high, seed=rng)[0]
        if draw >= remaining:
            if remaining >= low:
                sizes.append(remaining)
            elif sizes:
                sizes[-1] += remaining
            else:
                sizes.append(remaining)
            remaining = 0
        else:
            sizes.append(draw)
            remaining -= draw
    return sizes
