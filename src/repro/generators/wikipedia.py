"""A Wikipedia-like large graph — the substitution for the paper's dataset.

The paper's final experiment runs OCA on the 2010 Wikipedia link graph
(16,986,429 nodes, 176,454,501 edges) to demonstrate that the algorithm
completes on a real, heavy-tailed, web-scale network.  That snapshot is
not redistributable and would not fit this environment, so — per the
documented substitution policy — we generate a synthetic graph with the
structural properties the experiment actually exercises:

* a heavy-tailed degree distribution (preferential-attachment backbone,
  the classic Barabási–Albert process);
* planted *overlapping* topic clusters (articles belong to one or more
  topics; intra-topic links are denser), so community search has genuine
  structure to find;
* arbitrary scale via ``n`` (the benchmark defaults to laptop-friendly
  sizes and EXPERIMENTS.md reports how the runtime extrapolates).

The returned instance carries the planted topic cover, allowing quality
spot-checks on top of the pure timing experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set

from .._rng import SeedLike, as_random
from ..communities import Cover
from ..errors import GeneratorError
from ..graph import Graph

__all__ = ["WikipediaParams", "WikipediaInstance", "wikipedia_like_graph"]


@dataclass(frozen=True)
class WikipediaParams:
    """Parameters of the synthetic Wikipedia-like graph.

    Attributes
    ----------
    n:
        Number of articles (nodes).
    attachment:
        Edges each new node brings in the preferential-attachment
        backbone (the BA ``m`` parameter).
    topics:
        Number of planted topic clusters; ``None`` (default) derives
        ``max(4, n // 200)`` so the *size* of a topic stays constant as
        ``n`` grows — the property that makes the scaling experiment
        meaningful (otherwise larger instances have structurally
        different, ever-larger topics).
    topic_memberships:
        Mean topics per article (>= 1; fractional values mean a random
        mixture of 1- and 2-topic articles, etc.).
    intra_topic_degree:
        Extra intra-topic edges contributed per article on average.
    """

    n: int = 20000
    attachment: int = 4
    topics: Optional[int] = None
    topic_memberships: float = 1.3
    intra_topic_degree: float = 3.0

    def __post_init__(self) -> None:
        if self.n < 10:
            raise GeneratorError(f"n must be >= 10, got {self.n}")
        if not 1 <= self.attachment < self.n:
            raise GeneratorError(
                f"attachment must be in [1, n), got {self.attachment}"
            )
        if self.topics is None:
            object.__setattr__(self, "topics", max(4, self.n // 200))
        if self.topics < 1:
            raise GeneratorError(f"topics must be >= 1, got {self.topics}")
        if self.topic_memberships < 1.0:
            raise GeneratorError(
                f"topic_memberships must be >= 1, got {self.topic_memberships}"
            )
        if self.intra_topic_degree < 0.0:
            raise GeneratorError(
                f"intra_topic_degree must be >= 0, got {self.intra_topic_degree}"
            )


@dataclass
class WikipediaInstance:
    """The generated graph plus its planted topic cover."""

    graph: Graph
    topics: Cover
    params: WikipediaParams

    def __repr__(self) -> str:
        return (
            f"WikipediaInstance(n={self.graph.number_of_nodes()}, "
            f"m={self.graph.number_of_edges()}, topics={len(self.topics)})"
        )


def wikipedia_like_graph(
    params: WikipediaParams = WikipediaParams(), seed: SeedLike = None
) -> WikipediaInstance:
    """Generate the Wikipedia-like graph.

    Deterministic given ``seed``; node labels are ``0..n-1``.

    The preferential-attachment backbone uses the standard repeated-nodes
    trick: a target list containing every edge endpoint so far, sampled
    uniformly, realises attachment probability proportional to degree in
    O(1) per draw.
    """
    rng = as_random(seed)
    n, m0 = params.n, params.attachment

    graph = Graph(nodes=range(n))
    # Backbone: BA process seeded with a small clique.
    repeated: List[int] = []
    seed_size = m0 + 1
    for u in range(seed_size):
        for v in range(u + 1, seed_size):
            graph.add_edge(u, v)
            repeated.append(u)
            repeated.append(v)
    for node in range(seed_size, n):
        targets: Set[int] = set()
        while len(targets) < m0:
            targets.add(rng.choice(repeated))
        for target in targets:
            graph.add_edge(node, target)
            repeated.append(node)
            repeated.append(target)

    # Planted overlapping topics.
    memberships: List[List[int]] = [[] for _ in range(params.topics)]
    for node in range(n):
        count = 1
        extra = params.topic_memberships - 1.0
        while extra > 0.0:
            if rng.random() < min(extra, 1.0):
                count += 1
            extra -= 1.0
        for topic in rng.sample(range(params.topics), min(count, params.topics)):
            memberships[topic].append(node)

    # Densify topics: each article contributes ~intra_topic_degree random
    # intra-topic links.
    for topic_nodes in memberships:
        if len(topic_nodes) < 2:
            continue
        for u in topic_nodes:
            links = int(params.intra_topic_degree)
            if rng.random() < params.intra_topic_degree - links:
                links += 1
            for _ in range(links):
                v = rng.choice(topic_nodes)
                if v != u:
                    graph.add_edge(u, v)

    cover = Cover(nodes for nodes in memberships if nodes)
    return WikipediaInstance(graph=graph, topics=cover, params=params)
