"""Daisy flowers and daisy trees — the paper's overlapping benchmark.

"We propose these overlapped graphs because, to our knowledge, there
exists no benchmark allowing overlapping in the literature" (Section V).

A **daisy** with parameters ``p, q, n`` and probabilities ``alpha, beta``
has vertices ``0 .. n-1``:

* the ``i``-th petal (``1 <= i <= p-1``) holds the vertices with index
  ``v ≡ i (mod p)``;
* the core holds ``{v : v ≡ 0 (mod p)} ∪ {v : v ≡ 0 (mod q)}``.

A vertex with ``v ≢ 0 (mod p)`` and ``v ≡ 0 (mod q)`` lies in *both* its
petal and the core — the planted overlap.  Each potential edge inside a
petal appears with probability ``alpha``; inside the core with
probability ``beta``.

A **daisy tree** with parameters ``k`` and ``gamma`` grows from one
initial daisy by ``k`` times generating a new daisy and attaching it to a
uniformly random daisy already in the tree: one petal is chosen on each
side and every cross pair between the two petals becomes an edge with
probability ``gamma``.

The ground-truth cover contains every petal and every core of every
flower in the tree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple

from .._rng import SeedLike, as_random
from ..communities import Cover
from ..errors import GeneratorError
from ..graph import Graph

__all__ = ["DaisyParams", "DaisyInstance", "daisy_graph", "daisy_tree"]


@dataclass(frozen=True)
class DaisyParams:
    """Parameters of a single daisy flower.

    Defaults give 4 petals of 12 nodes plus a 16-node core at ``n = 60``,
    with each petal sharing exactly one node with the core.  The paper
    does not state its parameter values; these were calibrated to realise
    the flower geometry its Figures 3/4 rely on:

    * ``gcd(p, q) = 1`` so that (by CRT) *every* petal overlaps the core
      — otherwise some petals are disconnected satellites, not petals;
    * ``lcm(p, q) = n`` so each petal/core overlap is a *single* node —
      a lone shared node lets the planted parts stay distinct k-clique
      communities (CPM cannot percolate through one node), matching the
      Figure-4 claim that CFinder separates petal and core;
    * ``alpha (s_petal - 1) ~ beta (s_core - 1)`` so petals and core have
      comparable average internal degree — each planted part must be a
      distinct local optimum of a density-driven fitness, else all
      overlap-petal searches fall into a dominant core.
    """

    p: int = 5
    q: int = 12
    n: int = 60
    alpha: float = 0.9
    beta: float = 0.6

    def __post_init__(self) -> None:
        if self.p < 2:
            raise GeneratorError(f"p must be >= 2, got {self.p}")
        if self.q < 2:
            raise GeneratorError(f"q must be >= 2, got {self.q}")
        if self.n < self.p:
            raise GeneratorError(
                f"n must be >= p so every petal is non-empty, got n={self.n}, p={self.p}"
            )
        for name, value in (("alpha", self.alpha), ("beta", self.beta)):
            if not 0.0 <= value <= 1.0:
                raise GeneratorError(f"{name} must lie in [0, 1], got {value}")


@dataclass
class DaisyInstance:
    """A daisy (or daisy tree) with its planted overlapping ground truth.

    Attributes
    ----------
    graph:
        The generated graph; labels are ``(flower_index, vertex_index)``
        flattened to consecutive ints (see ``offsets``).
    communities:
        Planted cover: all petals and cores.
    flowers:
        Number of daisies in the tree (1 for a single daisy).
    offsets:
        ``offsets[f]`` is the first node id of flower ``f``.
    petal_ids / core_ids:
        Community indices (into ``communities``) of petals / cores.
    """

    graph: Graph
    communities: Cover
    flowers: int
    offsets: List[int]
    petal_ids: List[int]
    core_ids: List[int]

    def __repr__(self) -> str:
        return (
            f"DaisyInstance(flowers={self.flowers}, "
            f"n={self.graph.number_of_nodes()}, m={self.graph.number_of_edges()}, "
            f"communities={len(self.communities)})"
        )


def _daisy_parts(params: DaisyParams, offset: int) -> Tuple[List[Set[int]], Set[int]]:
    """Petal node sets and the core node set, labels shifted by ``offset``."""
    petals: List[Set[int]] = []
    for i in range(1, params.p):
        petal = {offset + v for v in range(params.n) if v % params.p == i}
        if petal:
            petals.append(petal)
    core = {
        offset + v
        for v in range(params.n)
        if v % params.p == 0 or v % params.q == 0
    }
    return petals, core


def _wire_group(graph: Graph, nodes: Sequence[int], probability: float, rng) -> None:
    """Add each potential edge inside ``nodes`` with the given probability."""
    ordered = sorted(nodes)
    for i, u in enumerate(ordered):
        for v in ordered[i + 1 :]:
            if rng.random() < probability:
                graph.add_edge(u, v)


def daisy_graph(
    params: DaisyParams = DaisyParams(), seed: SeedLike = None
) -> DaisyInstance:
    """Generate a single daisy flower."""
    rng = as_random(seed)
    graph = Graph(nodes=range(params.n))
    petals, core = _daisy_parts(params, offset=0)
    for petal in petals:
        _wire_group(graph, sorted(petal), params.alpha, rng)
    _wire_group(graph, sorted(core), params.beta, rng)
    communities = list(petals) + [core]
    cover = Cover(communities)
    return DaisyInstance(
        graph=graph,
        communities=cover,
        flowers=1,
        offsets=[0],
        petal_ids=list(range(len(petals))),
        core_ids=[len(petals)],
    )


def daisy_tree(
    flowers: int = 5,
    gamma: float = 0.05,
    params: DaisyParams = DaisyParams(),
    seed: SeedLike = None,
) -> DaisyInstance:
    """Generate a daisy tree with ``flowers`` daisies.

    ``flowers = k + 1`` in the paper's notation (the initial daisy plus
    ``k`` grown ones).  Attachment joins one random petal of the new daisy
    to one random petal of a uniformly random existing daisy; each cross
    pair becomes an edge with probability ``gamma``.
    """
    if flowers < 1:
        raise GeneratorError(f"flowers must be >= 1, got {flowers}")
    if not 0.0 <= gamma <= 1.0:
        raise GeneratorError(f"gamma must lie in [0, 1], got {gamma}")
    rng = as_random(seed)
    graph = Graph()
    communities: List[Set[int]] = []
    petal_ids: List[int] = []
    core_ids: List[int] = []
    offsets: List[int] = []
    #: per-flower list of its petal node sets, for attachment sampling
    flower_petals: List[List[Set[int]]] = []

    for flower in range(flowers):
        offset = flower * params.n
        offsets.append(offset)
        graph.add_nodes(range(offset, offset + params.n))
        petals, core = _daisy_parts(params, offset)
        for petal in petals:
            _wire_group(graph, sorted(petal), params.alpha, rng)
        _wire_group(graph, sorted(core), params.beta, rng)
        for petal in petals:
            petal_ids.append(len(communities))
            communities.append(petal)
        core_ids.append(len(communities))
        communities.append(core)
        flower_petals.append(petals)

        if flower > 0:
            # Attach to a uniformly random earlier daisy.
            target = rng.randrange(flower)
            own_petal = rng.choice(flower_petals[flower])
            other_petal = rng.choice(flower_petals[target])
            added = 0
            for u in sorted(own_petal):
                for v in sorted(other_petal):
                    if rng.random() < gamma:
                        graph.add_edge(u, v)
                        added += 1
            if added == 0:
                # Guarantee tree connectivity: force one bridge edge.
                graph.add_edge(min(own_petal), min(other_petal))

    return DaisyInstance(
        graph=graph,
        communities=Cover(communities),
        flowers=flowers,
        offsets=offsets,
        petal_ids=petal_ids,
        core_ids=core_ids,
    )
