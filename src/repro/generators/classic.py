"""Classic deterministic and random graphs.

Small, well-understood instances used throughout the test-suite and the
examples: their spectra, clique structure, and community structure are
known in closed form, which makes them ideal oracles for the OCA
machinery (e.g. ``lambda_min(K_n) = -1``, so ``c`` clamps just below 1).
"""

from __future__ import annotations

from typing import List, Set

from .._rng import SeedLike, as_random
from ..communities import Cover
from ..errors import GeneratorError
from ..graph import Graph

__all__ = [
    "complete_graph",
    "path_graph",
    "cycle_graph",
    "star_graph",
    "erdos_renyi",
    "ring_of_cliques",
    "caveman_graph",
    "two_cliques_bridged",
    "karate_club",
]


def complete_graph(n: int) -> Graph:
    """The complete graph ``K_n``."""
    if n < 0:
        raise GeneratorError(f"n must be non-negative, got {n}")
    graph = Graph(nodes=range(n))
    for u in range(n):
        for v in range(u + 1, n):
            graph.add_edge(u, v)
    return graph


def path_graph(n: int) -> Graph:
    """The path on ``n`` nodes (``n - 1`` edges)."""
    if n < 0:
        raise GeneratorError(f"n must be non-negative, got {n}")
    graph = Graph(nodes=range(n))
    for u in range(n - 1):
        graph.add_edge(u, u + 1)
    return graph


def cycle_graph(n: int) -> Graph:
    """The cycle on ``n >= 3`` nodes."""
    if n < 3:
        raise GeneratorError(f"a cycle needs n >= 3, got {n}")
    graph = path_graph(n)
    graph.add_edge(n - 1, 0)
    return graph


def star_graph(leaves: int) -> Graph:
    """A star: node 0 joined to ``leaves`` leaf nodes."""
    if leaves < 0:
        raise GeneratorError(f"leaves must be non-negative, got {leaves}")
    graph = Graph(nodes=range(leaves + 1))
    for leaf in range(1, leaves + 1):
        graph.add_edge(0, leaf)
    return graph


def erdos_renyi(n: int, probability: float, seed: SeedLike = None) -> Graph:
    """The ``G(n, p)`` random graph."""
    if n < 0:
        raise GeneratorError(f"n must be non-negative, got {n}")
    if not 0.0 <= probability <= 1.0:
        raise GeneratorError(f"probability must lie in [0, 1], got {probability}")
    rng = as_random(seed)
    graph = Graph(nodes=range(n))
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < probability:
                graph.add_edge(u, v)
    return graph


def ring_of_cliques(cliques: int, clique_size: int) -> tuple[Graph, Cover]:
    """``cliques`` cliques of ``clique_size`` joined in a ring by single
    edges; returns the graph and the planted (clique) cover.

    A classic community-detection oracle: each clique is unambiguously
    one community.
    """
    if cliques < 3:
        raise GeneratorError(f"need >= 3 cliques for a ring, got {cliques}")
    if clique_size < 2:
        raise GeneratorError(f"clique_size must be >= 2, got {clique_size}")
    graph = Graph(nodes=range(cliques * clique_size))
    communities: List[Set[int]] = []
    for c in range(cliques):
        base = c * clique_size
        members = set(range(base, base + clique_size))
        communities.append(members)
        for u in range(base, base + clique_size):
            for v in range(u + 1, base + clique_size):
                graph.add_edge(u, v)
    for c in range(cliques):
        # Bridge: last node of clique c to first node of clique c+1.
        u = c * clique_size + clique_size - 1
        v = ((c + 1) % cliques) * clique_size
        graph.add_edge(u, v)
    return graph, Cover(communities)


def caveman_graph(caves: int, cave_size: int) -> tuple[Graph, Cover]:
    """The connected caveman graph: cliques with one edge rewired to the
    next clique; returns graph and planted cover."""
    if caves < 2:
        raise GeneratorError(f"need >= 2 caves, got {caves}")
    if cave_size < 3:
        raise GeneratorError(f"cave_size must be >= 3, got {cave_size}")
    graph = Graph(nodes=range(caves * cave_size))
    communities: List[Set[int]] = []
    for c in range(caves):
        base = c * cave_size
        members = set(range(base, base + cave_size))
        communities.append(members)
        for u in range(base, base + cave_size):
            for v in range(u + 1, base + cave_size):
                graph.add_edge(u, v)
        # Rewire one internal edge to the next cave.
        graph.remove_edge(base, base + 1)
        graph.add_edge(base, ((c + 1) % caves) * cave_size + 1)
    return graph, Cover(communities)


def two_cliques_bridged(clique_size: int, bridge_nodes: int = 1) -> tuple[Graph, Cover]:
    """Two cliques sharing ``bridge_nodes`` common nodes — the smallest
    honest overlapping-community instance.

    Returns the graph and the two overlapping ground-truth communities.
    """
    if clique_size < 3:
        raise GeneratorError(f"clique_size must be >= 3, got {clique_size}")
    if not 1 <= bridge_nodes < clique_size:
        raise GeneratorError(
            f"bridge_nodes must be in [1, clique_size), got {bridge_nodes}"
        )
    left = set(range(clique_size))
    shared = set(range(clique_size - bridge_nodes, clique_size))
    right = shared | set(range(clique_size, 2 * clique_size - bridge_nodes))
    graph = Graph()
    for group in (left, right):
        members = sorted(group)
        for i, u in enumerate(members):
            for v in members[i + 1 :]:
                graph.add_edge(u, v)
    return graph, Cover([left, right])


#: Zachary's karate club (1977): the canonical small social network.
#: 34 members, 78 edges; the club famously split into two factions.
_KARATE_EDGES = [
    (0, 1), (0, 2), (0, 3), (0, 4), (0, 5), (0, 6), (0, 7), (0, 8), (0, 10),
    (0, 11), (0, 12), (0, 13), (0, 17), (0, 19), (0, 21), (0, 31),
    (1, 2), (1, 3), (1, 7), (1, 13), (1, 17), (1, 19), (1, 21), (1, 30),
    (2, 3), (2, 7), (2, 8), (2, 9), (2, 13), (2, 27), (2, 28), (2, 32),
    (3, 7), (3, 12), (3, 13),
    (4, 6), (4, 10),
    (5, 6), (5, 10), (5, 16),
    (6, 16),
    (8, 30), (8, 32), (8, 33),
    (9, 33),
    (13, 33),
    (14, 32), (14, 33),
    (15, 32), (15, 33),
    (18, 32), (18, 33),
    (19, 33),
    (20, 32), (20, 33),
    (22, 32), (22, 33),
    (23, 25), (23, 27), (23, 29), (23, 32), (23, 33),
    (24, 25), (24, 27), (24, 31),
    (25, 31),
    (26, 29), (26, 33),
    (27, 33),
    (28, 31), (28, 33),
    (29, 32), (29, 33),
    (30, 32), (30, 33),
    (31, 32), (31, 33),
    (32, 33),
]

#: The observed two-faction split (Mr. Hi's faction vs. the officers').
_KARATE_FACTIONS = [
    {0, 1, 2, 3, 4, 5, 6, 7, 10, 11, 12, 13, 16, 17, 19, 21},
    {8, 9, 14, 15, 18, 20, 22, 23, 24, 25, 26, 27, 28, 29, 30, 31, 32, 33},
]


def karate_club() -> tuple[Graph, Cover]:
    """Zachary's karate club with the observed two-faction ground truth."""
    graph = Graph(edges=_KARATE_EDGES)
    return graph, Cover(_KARATE_FACTIONS)
