"""The LFR benchmark (Lancichinetti–Fortunato–Radicchi 2008, ref. [9]).

Planted-community graphs with power-law degree and community-size
distributions and a *mixing parameter* ``mu``: each node spends a fraction
``mu`` of its edges outside its own community.  ``mu <= 0.5`` gives sharp
community structure, ``mu >= 1`` a fully random graph — the x-axis of the
paper's Figure 2.

Construction pipeline (faithful to the reference generator's structure,
implemented from scratch):

1. sample degrees ``k_v`` from a truncated power law (exponent ``tau1``)
   solved to meet the target average degree;
2. sample community sizes from a truncated power law (exponent ``tau2``)
   summing to ``n``;
3. assign nodes to communities so each node's internal degree
   ``(1 - mu) k_v`` fits (needs ``<= size - 1``), largest-degree first so
   the hubs land in communities big enough for them;
4. wire internal edges with a per-community configuration model, and
   external edges with a global configuration model that rejects
   intra-community pairs;
5. clean rejected stubs with a bounded number of reshuffle rounds; any
   remainder is dropped (degree realisation is approximate, as in the
   reference implementation) and reported in the instance statistics.

The returned :class:`LFRInstance` carries the planted partition as a
:class:`~repro.communities.cover.Cover` (ground truth for ``Theta``) and
self-check statistics including the realised mixing parameter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple

from .._rng import SeedLike, as_random, spawn_seed
from ..communities import Cover
from ..errors import GeneratorError
from ..graph import Graph, average_degree as realized_average_degree
from .powerlaw import sample_degree_sequence, sample_sizes_to_total

__all__ = ["LFRParams", "LFRInstance", "lfr_graph"]

#: Reshuffle rounds for the configuration-model clean-up passes.
_REWIRE_ROUNDS = 24


@dataclass(frozen=True)
class LFRParams:
    """Parameters of one LFR instance.

    Defaults mirror the reference implementation's defaults (n = 1000,
    mean degree 20, max degree 50, community sizes 10..50) — the paper
    sets the generation parameters "to default values" for Figure 2.
    Figures 5 and 6 override ``n``, ``min_community``, ``max_community``.
    """

    n: int = 1000
    mu: float = 0.3
    average_degree: float = 20.0
    max_degree: int = 50
    tau1: float = 2.0
    tau2: float = 1.0
    min_community: int = 10
    max_community: int = 50

    def __post_init__(self) -> None:
        if self.n <= 0:
            raise GeneratorError(f"n must be positive, got {self.n}")
        if not 0.0 <= self.mu <= 1.0:
            raise GeneratorError(f"mu must lie in [0, 1], got {self.mu}")
        if self.max_degree >= self.n:
            raise GeneratorError(
                f"max_degree {self.max_degree} must be < n {self.n}"
            )
        if self.average_degree < 1.0:
            raise GeneratorError(
                f"average_degree must be >= 1, got {self.average_degree}"
            )
        if self.average_degree > self.max_degree:
            raise GeneratorError(
                f"average_degree {self.average_degree} exceeds max_degree "
                f"{self.max_degree}"
            )
        if not 2 <= self.min_community <= self.max_community:
            raise GeneratorError(
                f"need 2 <= min_community <= max_community, got "
                f"{self.min_community}..{self.max_community}"
            )
        if self.max_community > self.n:
            raise GeneratorError(
                f"max_community {self.max_community} exceeds n {self.n}"
            )


@dataclass
class LFRInstance:
    """A generated LFR graph plus its planted ground truth and stats."""

    graph: Graph
    communities: Cover
    params: LFRParams
    realized_mu: float
    realized_average_degree: float
    dropped_stubs: int

    def __repr__(self) -> str:
        return (
            f"LFRInstance(n={self.graph.number_of_nodes()}, "
            f"m={self.graph.number_of_edges()}, mu={self.params.mu}, "
            f"realized_mu={self.realized_mu:.3f})"
        )


def _assign_communities(
    degrees: Sequence[int],
    sizes: Sequence[int],
    mu: float,
    rng,
) -> List[int]:
    """Community index per node, respecting internal-degree feasibility.

    Largest internal demand first; each node goes to a random community
    with room (capacity = size) whose size can host the node's internal
    degree.  Infeasible nodes fall back to the largest community with
    room — their internal degree is implicitly truncated by the wiring
    stage, matching the reference generator's pragmatism.
    """
    n = len(degrees)
    internal_demand = [int(round((1.0 - mu) * k)) for k in degrees]
    order = sorted(range(n), key=lambda v: -internal_demand[v])
    capacity = list(sizes)
    assignment = [-1] * n
    community_indices = list(range(len(sizes)))
    for node in order:
        demand = internal_demand[node]
        rng.shuffle(community_indices)
        chosen = -1
        for index in community_indices:
            if capacity[index] > 0 and sizes[index] - 1 >= demand:
                chosen = index
                break
        if chosen == -1:
            # No feasible home: take any community with room, preferring
            # the largest so truncation is minimal.
            with_room = [i for i in community_indices if capacity[i] > 0]
            if not with_room:
                raise GeneratorError("community capacities exhausted during assignment")
            chosen = max(with_room, key=lambda i: sizes[i])
        assignment[node] = chosen
        capacity[chosen] -= 1
    return assignment


def _pair_stubs(
    stubs: List[int],
    forbidden_pair,
    graph: Graph,
    rng,
) -> int:
    """Configuration-model pairing with bounded reshuffle clean-up.

    ``forbidden_pair(u, v)`` vetoes a candidate edge (used to keep
    external edges out of communities).  Returns the number of stubs that
    could not be placed after the clean-up rounds.
    """
    remaining = list(stubs)
    for _ in range(_REWIRE_ROUNDS):
        if len(remaining) < 2:
            break
        rng.shuffle(remaining)
        leftovers: List[int] = []
        for i in range(0, len(remaining) - 1, 2):
            u, v = remaining[i], remaining[i + 1]
            if u == v or forbidden_pair(u, v) or graph.has_edge(u, v):
                leftovers.append(u)
                leftovers.append(v)
            else:
                graph.add_edge(u, v)
        if len(remaining) % 2 == 1:
            leftovers.append(remaining[-1])
        if len(leftovers) == len(remaining):
            # No progress: give up early, remaining stubs are unplaceable
            # by reshuffling alone.
            remaining = leftovers
            break
        remaining = leftovers
    return len(remaining)


def _realized_mixing(graph: Graph, assignment: Sequence[int]) -> float:
    """Mean over nodes of the fraction of external incident edges."""
    total = 0.0
    counted = 0
    for node in graph.nodes():
        degree = graph.degree(node)
        if degree == 0:
            continue
        external = sum(
            1 for other in graph.neighbors(node)
            if assignment[other] != assignment[node]
        )
        total += external / degree
        counted += 1
    return total / counted if counted else 0.0


def lfr_graph(params: LFRParams = LFRParams(), seed: SeedLike = None) -> LFRInstance:
    """Generate one LFR benchmark instance.

    Deterministic given ``seed``.  Node labels are ``0..n-1``.
    """
    rng = as_random(seed)
    degrees = sample_degree_sequence(
        params.n,
        params.average_degree,
        params.max_degree,
        exponent=params.tau1,
        seed=spawn_seed(rng),
    )
    sizes = sample_sizes_to_total(
        params.n,
        params.tau2,
        params.min_community,
        params.max_community,
        seed=spawn_seed(rng),
    )
    assignment = _assign_communities(degrees, sizes, params.mu, rng)

    members: Dict[int, List[int]] = {}
    for node, community in enumerate(assignment):
        members.setdefault(community, []).append(node)

    graph = Graph(nodes=range(params.n))
    dropped = 0

    # Internal wiring, one configuration model per community.
    for community, nodes in members.items():
        size = len(nodes)
        stubs: List[int] = []
        for node in nodes:
            internal = min(int(round((1.0 - params.mu) * degrees[node])), size - 1)
            stubs.extend([node] * internal)
        if len(stubs) % 2 == 1:
            stubs.pop()
            dropped += 1
        dropped += _pair_stubs(stubs, lambda u, v: False, graph, rng)

    # External wiring: global configuration model rejecting intra pairs.
    external_stubs: List[int] = []
    for node in range(params.n):
        target = degrees[node]
        current = graph.degree(node)
        external_stubs.extend([node] * max(0, target - current))
    if len(external_stubs) % 2 == 1:
        external_stubs.pop()
        dropped += 1
    dropped += _pair_stubs(
        external_stubs,
        lambda u, v: assignment[u] == assignment[v],
        graph,
        rng,
    )

    cover = Cover(members[key] for key in sorted(members))
    return LFRInstance(
        graph=graph,
        communities=cover,
        params=params,
        realized_mu=_realized_mixing(graph, assignment),
        realized_average_degree=realized_average_degree(graph),
        dropped_stubs=dropped,
    )
