"""The LFR benchmark (Lancichinetti–Fortunato–Radicchi 2008, ref. [9]).

Planted-community graphs with power-law degree and community-size
distributions and a *mixing parameter* ``mu``: each node spends a fraction
``mu`` of its edges outside its own community.  ``mu <= 0.5`` gives sharp
community structure, ``mu >= 1`` a fully random graph — the x-axis of the
paper's Figure 2.

Construction pipeline (faithful to the reference generator's structure,
implemented from scratch):

1. sample degrees ``k_v`` from a truncated power law (exponent ``tau1``)
   solved to meet the target average degree;
2. sample community sizes from a truncated power law (exponent ``tau2``)
   summing to ``n``;
3. assign nodes to communities so each node's internal degree
   ``(1 - mu) k_v`` fits (needs ``<= size - 1``), largest-degree first so
   the hubs land in communities big enough for them;
4. wire internal edges with a per-community configuration model, and
   external edges with a global configuration model that rejects
   intra-community pairs;
5. clean rejected stubs with a bounded number of reshuffle rounds; any
   remainder is dropped (degree realisation is approximate, as in the
   reference implementation) and reported in the instance statistics.

The returned :class:`LFRInstance` carries the planted partition as a
:class:`~repro.communities.cover.Cover` (ground truth for ``Theta``) and
self-check statistics including the realised mixing parameter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import AbstractSet, Dict, List, Sequence, Set, Tuple

from .._rng import SeedLike, as_random, spawn_seed
from ..communities import Cover
from ..errors import GeneratorError
from ..graph import Graph, average_degree as realized_average_degree
from .powerlaw import sample_degree_sequence, sample_sizes_to_total

__all__ = ["LFRParams", "LFRInstance", "lfr_graph"]

#: Reshuffle rounds for the configuration-model clean-up passes.
_REWIRE_ROUNDS = 24


@dataclass(frozen=True)
class LFRParams:
    """Parameters of one LFR instance.

    Defaults mirror the reference implementation's defaults (n = 1000,
    mean degree 20, max degree 50, community sizes 10..50) — the paper
    sets the generation parameters "to default values" for Figure 2.
    Figures 5 and 6 override ``n``, ``min_community``, ``max_community``.
    """

    n: int = 1000
    mu: float = 0.3
    average_degree: float = 20.0
    max_degree: int = 50
    tau1: float = 2.0
    tau2: float = 1.0
    min_community: int = 10
    max_community: int = 50
    #: Overlap knobs, after the reference generator's ``on``/``om``: the
    #: number of overlapping nodes, and how many communities each of
    #: them belongs to.  ``on = 0`` (the default) is the classic
    #: disjoint benchmark — and draws the identical rng stream as before
    #: the knobs existed, so seeded instances are unchanged.
    on: int = 0
    om: int = 2

    def __post_init__(self) -> None:
        if self.n <= 0:
            raise GeneratorError(f"n must be positive, got {self.n}")
        if not 0 <= self.on <= self.n:
            raise GeneratorError(
                f"on (overlapping nodes) must lie in [0, n], got {self.on}"
            )
        if self.om < 2:
            raise GeneratorError(
                f"om (memberships per overlapping node) must be >= 2, "
                f"got {self.om}"
            )
        if not 0.0 <= self.mu <= 1.0:
            raise GeneratorError(f"mu must lie in [0, 1], got {self.mu}")
        if self.max_degree >= self.n:
            raise GeneratorError(
                f"max_degree {self.max_degree} must be < n {self.n}"
            )
        if self.average_degree < 1.0:
            raise GeneratorError(
                f"average_degree must be >= 1, got {self.average_degree}"
            )
        if self.average_degree > self.max_degree:
            raise GeneratorError(
                f"average_degree {self.average_degree} exceeds max_degree "
                f"{self.max_degree}"
            )
        if not 2 <= self.min_community <= self.max_community:
            raise GeneratorError(
                f"need 2 <= min_community <= max_community, got "
                f"{self.min_community}..{self.max_community}"
            )
        if self.max_community > self.n:
            raise GeneratorError(
                f"max_community {self.max_community} exceeds n {self.n}"
            )


@dataclass
class LFRInstance:
    """A generated LFR graph plus its planted ground truth and stats."""

    graph: Graph
    communities: Cover
    params: LFRParams
    realized_mu: float
    realized_average_degree: float
    dropped_stubs: int
    overlapping_nodes: int = 0

    def __repr__(self) -> str:
        return (
            f"LFRInstance(n={self.graph.number_of_nodes()}, "
            f"m={self.graph.number_of_edges()}, mu={self.params.mu}, "
            f"realized_mu={self.realized_mu:.3f})"
        )


def _assign_communities(
    degrees: Sequence[int],
    sizes: Sequence[int],
    mu: float,
    rng,
) -> List[int]:
    """Community index per node, respecting internal-degree feasibility.

    Largest internal demand first; each node goes to a random community
    with room (capacity = size) whose size can host the node's internal
    degree.  Infeasible nodes fall back to the largest community with
    room — their internal degree is implicitly truncated by the wiring
    stage, matching the reference generator's pragmatism.
    """
    n = len(degrees)
    internal_demand = [int(round((1.0 - mu) * k)) for k in degrees]
    order = sorted(range(n), key=lambda v: -internal_demand[v])
    capacity = list(sizes)
    assignment = [-1] * n
    community_indices = list(range(len(sizes)))
    for node in order:
        demand = internal_demand[node]
        rng.shuffle(community_indices)
        chosen = -1
        for index in community_indices:
            if capacity[index] > 0 and sizes[index] - 1 >= demand:
                chosen = index
                break
        if chosen == -1:
            # No feasible home: take any community with room, preferring
            # the largest so truncation is minimal.
            with_room = [i for i in community_indices if capacity[i] > 0]
            if not with_room:
                raise GeneratorError("community capacities exhausted during assignment")
            chosen = max(with_room, key=lambda i: sizes[i])
        assignment[node] = chosen
        capacity[chosen] -= 1
    return assignment


def _pair_stubs(
    stubs: List[int],
    forbidden_pair,
    graph: Graph,
    rng,
) -> int:
    """Configuration-model pairing with bounded reshuffle clean-up.

    ``forbidden_pair(u, v)`` vetoes a candidate edge (used to keep
    external edges out of communities).  Returns the number of stubs that
    could not be placed after the clean-up rounds.
    """
    remaining = list(stubs)
    for _ in range(_REWIRE_ROUNDS):
        if len(remaining) < 2:
            break
        rng.shuffle(remaining)
        leftovers: List[int] = []
        for i in range(0, len(remaining) - 1, 2):
            u, v = remaining[i], remaining[i + 1]
            if u == v or forbidden_pair(u, v) or graph.has_edge(u, v):
                leftovers.append(u)
                leftovers.append(v)
            else:
                graph.add_edge(u, v)
        if len(remaining) % 2 == 1:
            leftovers.append(remaining[-1])
        if len(leftovers) == len(remaining):
            # No progress: give up early, remaining stubs are unplaceable
            # by reshuffling alone.
            remaining = leftovers
            break
        remaining = leftovers
    return len(remaining)


def _add_overlap_memberships(
    memberships: List[List[int]],
    sizes: Sequence[int],
    params: LFRParams,
    rng,
) -> None:
    """Give ``on`` randomly chosen nodes ``om - 1`` extra communities.

    The reference generator's overlap regime: overlapping nodes keep
    their degree, split their internal half across their memberships
    (see :func:`_internal_share`), and the planted cover becomes
    genuinely overlapping.  Extra communities are drawn uniformly among
    the others; deterministic given the rng.
    """
    communities = len(sizes)
    if params.om > communities:
        raise GeneratorError(
            f"om {params.om} exceeds the {communities} sampled communities; "
            "widen the community-size range or lower om"
        )
    nodes = list(range(params.n))
    rng.shuffle(nodes)
    for node in nodes[: params.on]:
        primary = memberships[node][0]
        others = [c for c in range(communities) if c != primary]
        rng.shuffle(others)
        memberships[node].extend(sorted(others[: params.om - 1]))


def _internal_share(
    degree: int, mu: float, membership_count: int, position: int
) -> int:
    """Node's internal-degree quota for its ``position``-th membership.

    The internal half ``round((1 - mu) k)`` splits as evenly as possible
    across the node's communities, earlier memberships taking the
    remainder — for a single membership this is exactly the classic
    quota.
    """
    total = int(round((1.0 - mu) * degree))
    base, remainder = divmod(total, membership_count)
    return base + (1 if position < remainder else 0)


def _realized_mixing(graph: Graph, memberships: Sequence[AbstractSet[int]]) -> float:
    """Mean over nodes of the fraction of external incident edges.

    An edge is internal when its endpoints share *any* community — for
    disjoint instances this reduces to the classic definition.
    """
    total = 0.0
    counted = 0
    for node in graph.nodes():
        degree = graph.degree(node)
        if degree == 0:
            continue
        external = sum(
            1 for other in graph.neighbors(node)
            if memberships[other].isdisjoint(memberships[node])
        )
        total += external / degree
        counted += 1
    return total / counted if counted else 0.0


def lfr_graph(params: LFRParams = LFRParams(), seed: SeedLike = None) -> LFRInstance:
    """Generate one LFR benchmark instance.

    Deterministic given ``seed``.  Node labels are ``0..n-1``.
    """
    rng = as_random(seed)
    degrees = sample_degree_sequence(
        params.n,
        params.average_degree,
        params.max_degree,
        exponent=params.tau1,
        seed=spawn_seed(rng),
    )
    sizes = sample_sizes_to_total(
        params.n,
        params.tau2,
        params.min_community,
        params.max_community,
        seed=spawn_seed(rng),
    )
    assignment = _assign_communities(degrees, sizes, params.mu, rng)

    # One membership list per node, primary community first.  The
    # overlap stage (and every rng draw it makes) is gated on ``on`` so
    # disjoint instances reproduce the pre-knob stream exactly.
    memberships: List[List[int]] = [[community] for community in assignment]
    if params.on:
        _add_overlap_memberships(memberships, sizes, params, rng)
    membership_sets: List[Set[int]] = [set(ms) for ms in memberships]

    members: Dict[int, List[int]] = {}
    for node in range(params.n):
        for community in memberships[node]:
            members.setdefault(community, []).append(node)

    graph = Graph(nodes=range(params.n))
    dropped = 0

    # Internal wiring, one configuration model per community; a node's
    # internal quota splits across its memberships.
    for community, nodes in members.items():
        size = len(nodes)
        stubs: List[int] = []
        for node in nodes:
            share = _internal_share(
                degrees[node],
                params.mu,
                len(memberships[node]),
                memberships[node].index(community),
            )
            stubs.extend([node] * min(share, size - 1))
        if len(stubs) % 2 == 1:
            stubs.pop()
            dropped += 1
        dropped += _pair_stubs(stubs, lambda u, v: False, graph, rng)

    # External wiring: global configuration model rejecting intra pairs
    # (pairs sharing any community; plain assignment equality when
    # disjoint — cheaper, and the historical behaviour).
    if params.on:
        def intra(u: int, v: int) -> bool:
            return not membership_sets[u].isdisjoint(membership_sets[v])
    else:
        def intra(u: int, v: int) -> bool:
            return assignment[u] == assignment[v]
    external_stubs: List[int] = []
    for node in range(params.n):
        target = degrees[node]
        current = graph.degree(node)
        external_stubs.extend([node] * max(0, target - current))
    if len(external_stubs) % 2 == 1:
        external_stubs.pop()
        dropped += 1
    dropped += _pair_stubs(external_stubs, intra, graph, rng)

    cover = Cover(members[key] for key in sorted(members))
    return LFRInstance(
        graph=graph,
        communities=cover,
        params=params,
        realized_mu=_realized_mixing(graph, membership_sets),
        realized_average_degree=realized_average_degree(graph),
        dropped_stubs=dropped,
        overlapping_nodes=params.on,
    )
