"""Synthetic graph generators: the paper's benchmarks, from scratch.

* :mod:`~repro.generators.lfr` — the LFR benchmark with mixing parameter
  ``mu`` (Figures 2, 5, 6).
* :mod:`~repro.generators.daisy` — daisy flowers and daisy trees, the
  paper's own overlapping benchmark (Figures 3, 4).
* :mod:`~repro.generators.wikipedia` — the scale-free substitute for the
  Wikipedia dataset (Section V-B final experiment).
* :mod:`~repro.generators.classic` — small closed-form oracles for tests
  and examples.
"""

from .powerlaw import (
    powerlaw_weights,
    powerlaw_mean,
    sample_powerlaw,
    min_bound_for_mean,
    sample_degree_sequence,
    sample_sizes_to_total,
)
from .lfr import LFRParams, LFRInstance, lfr_graph
from .daisy import DaisyParams, DaisyInstance, daisy_graph, daisy_tree
from .wikipedia import WikipediaParams, WikipediaInstance, wikipedia_like_graph
from .classic import (
    complete_graph,
    path_graph,
    cycle_graph,
    star_graph,
    erdos_renyi,
    ring_of_cliques,
    caveman_graph,
    two_cliques_bridged,
    karate_club,
)

__all__ = [
    "powerlaw_weights",
    "powerlaw_mean",
    "sample_powerlaw",
    "min_bound_for_mean",
    "sample_degree_sequence",
    "sample_sizes_to_total",
    "LFRParams",
    "LFRInstance",
    "lfr_graph",
    "DaisyParams",
    "DaisyInstance",
    "daisy_graph",
    "daisy_tree",
    "WikipediaParams",
    "WikipediaInstance",
    "wikipedia_like_graph",
    "complete_graph",
    "path_graph",
    "cycle_graph",
    "star_graph",
    "erdos_renyi",
    "ring_of_cliques",
    "caveman_graph",
    "two_cliques_bridged",
    "karate_club",
]
