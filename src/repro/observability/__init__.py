"""Production observability: metrics registry and request tracing.

The serving stack (PRs 3–5) computes rich operational state — queue
admission accounting, session-cache hit rates, detect latencies, socket
traffic counts — but kept it in per-component dataclasses reachable
only from Python.  This package is the common substrate that makes the
same numbers *operable*:

* :mod:`~repro.observability.registry` — :class:`MetricsRegistry`:
  thread-safe counters, gauges, and fixed-bucket histograms with
  Prometheus text rendering (``GET /metrics``) and flat snapshots (the
  ``--stats-interval`` line), plus :data:`NULL_REGISTRY` to switch the
  bookkeeping off;
* :mod:`~repro.observability.trace` — :class:`RequestTrace`: a
  fleet-unique id (``t-<pid>-NNNNNN``) per serving request and span
  timings across parse → queue wait → session acquire → detect →
  render, echoed in the response's ``trace`` annotation;
* :mod:`~repro.observability.events` — :class:`EventLog`: a bounded
  in-memory flight recorder plus optional rotating JSONL access-log
  sink recording every request and every operational event (sheds,
  rejections, evictions, store corruption, server lifecycle), with
  :class:`SlowRequestLog` keeping full forensics for the worst-N
  slowest requests and :data:`NULL_EVENT_LOG` to switch it all off;
* :mod:`~repro.observability.slo` — :class:`SloTracker`: streaming
  latency quantiles (stdlib P² estimators) and sliding-window
  error-budget accounting against operator-declared objectives
  (``--slo p99:0.5s,availability:99.9``), exported as ``repro_slo_*``
  gauges;
* :mod:`~repro.observability.profiler` — :class:`SamplingProfiler`:
  an on-demand ``sys._current_frames`` sampler returning
  collapsed-stack flamegraph text (``GET /debug/profile``).

One registry is wired through a whole serving stack
(:class:`~repro.serving.ServingService` owns it and shares it with its
manager, queue, sessions, and front-ends); standalone components
default to a private registry so unit accounting stays per-instance.
The legacy stats dataclasses (``QueueStats``, ``ManagerStats``,
``ServerStats``) survive as thin read-views over the registry — same
attributes, same numbers, one source of truth.
"""

from .events import NULL_EVENT_LOG, EventLog, NullEventLog, SlowRequestLog
from .profiler import ProfileReport, SamplingProfiler
from .registry import (
    DEFAULT_LATENCY_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
)
from .slo import P2Quantile, SloTracker, parse_slo_spec
from .trace import RequestTrace, new_trace, reset_trace_ids

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NULL_REGISTRY",
    "DEFAULT_LATENCY_BUCKETS",
    "RequestTrace",
    "new_trace",
    "reset_trace_ids",
    "EventLog",
    "NullEventLog",
    "NULL_EVENT_LOG",
    "SlowRequestLog",
    "P2Quantile",
    "SloTracker",
    "parse_slo_spec",
    "ProfileReport",
    "SamplingProfiler",
]
