"""Production observability: metrics registry and request tracing.

The serving stack (PRs 3–5) computes rich operational state — queue
admission accounting, session-cache hit rates, detect latencies, socket
traffic counts — but kept it in per-component dataclasses reachable
only from Python.  This package is the common substrate that makes the
same numbers *operable*:

* :mod:`~repro.observability.registry` — :class:`MetricsRegistry`:
  thread-safe counters, gauges, and fixed-bucket histograms with
  Prometheus text rendering (``GET /metrics``) and flat snapshots (the
  ``--stats-interval`` line), plus :data:`NULL_REGISTRY` to switch the
  bookkeeping off;
* :mod:`~repro.observability.trace` — :class:`RequestTrace`: a
  process-unique id per serving request and span timings across
  parse → queue wait → session acquire → detect → render, echoed in
  the response's ``trace`` annotation.

One registry is wired through a whole serving stack
(:class:`~repro.serving.ServingService` owns it and shares it with its
manager, queue, sessions, and front-ends); standalone components
default to a private registry so unit accounting stays per-instance.
The legacy stats dataclasses (``QueueStats``, ``ManagerStats``,
``ServerStats``) survive as thin read-views over the registry — same
attributes, same numbers, one source of truth.
"""

from .registry import (
    DEFAULT_LATENCY_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
)
from .trace import RequestTrace, new_trace, reset_trace_ids

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NULL_REGISTRY",
    "DEFAULT_LATENCY_BUCKETS",
    "RequestTrace",
    "new_trace",
    "reset_trace_ids",
]
