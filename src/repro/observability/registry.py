"""MetricsRegistry: process-wide counters, gauges, and histograms.

The serving stack already *computes* everything an operator needs —
``QueueStats``, ``ManagerStats``, ``SessionStats``, ``ServerStats``,
``EngineStats`` — but until this module those numbers lived in five
ad-hoc dataclasses reachable only from Python.  The registry gives them
one home with one contract:

* **instruments** — :class:`Counter` (monotone totals),
  :class:`Gauge` (set / add / tracked maxima / callback-backed reads),
  and :class:`Histogram` (fixed buckets, cumulative counts + sum) —
  created once by name and shared by every holder of the same registry;
* **labels** — an instrument may declare label names
  (``counter("x_total", "…", labelnames=("reason",))``); each distinct
  label-value tuple gets its own child series, rendered Prometheus-style
  as ``x_total{reason="full"} 3``;
* **rendering** — :meth:`MetricsRegistry.render` emits the Prometheus
  text exposition format (``# HELP`` / ``# TYPE`` / samples; histograms
  as cumulative ``_bucket{le=…}`` plus ``_sum`` / ``_count``), which is
  exactly what the HTTP front-end's ``GET /metrics`` serves — no client
  library dependency, the format is plain text;
* **snapshots** — :meth:`MetricsRegistry.snapshot` returns the same
  numbers as a flat dict for the periodic stats line and for tests.

Everything is thread-safe: the serving stack publishes from queue
worker threads, the asyncio loop, and executor threads concurrently.
Registries are cheap, independent instances — each serving stack wires
*one* registry through all of its layers (manager, queue, sessions,
front-ends), while standalone components default to a private registry
so unit-level accounting never bleeds across instances.

:data:`NULL_REGISTRY` is a shared no-op implementation: every
instrument accepts writes and reports zero.  It is how the benchmark
measures instrumentation overhead (and how a latency-obsessed deploy
can switch the bookkeeping off wholesale).
"""

from __future__ import annotations

import math
import re
import threading
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..errors import ConfigurationError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NULL_REGISTRY",
    "DEFAULT_LATENCY_BUCKETS",
]

#: Prometheus metric / label name grammar (colons are reserved for
#: recording rules, so user-facing instruments stay letters/digits/_).
_NAME_PATTERN = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram buckets for request/detect latencies: sub-ms to
#: tens of seconds, roughly logarithmic — wide enough for a warm 300-node
#: detect and a cold 20k-node one on the same instrument.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
)


def _validate_name(kind: str, name: str) -> None:
    if not _NAME_PATTERN.match(name):
        raise ConfigurationError(
            f"invalid {kind} name {name!r}: must match "
            f"{_NAME_PATTERN.pattern}"
        )


def _escape_label_value(value: str) -> str:
    """Prometheus label-value escaping: backslash, quote, newline."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    """Render a sample value the way Prometheus expects.

    Integral values render without a fractional part (``5`` not
    ``5.0``) — scrape-size friendly and exactly what counters are.
    """
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def _labels_suffix(labelnames: Sequence[str], labelvalues: Sequence[str]) -> str:
    if not labelnames:
        return ""
    pairs = ",".join(
        f'{name}="{_escape_label_value(str(value))}"'
        for name, value in zip(labelnames, labelvalues)
    )
    return "{" + pairs + "}"


class _Instrument:
    """Shared family machinery: label handling and child management."""

    kind = "untyped"

    def __init__(
        self,
        name: str,
        help_text: str,
        labelnames: Sequence[str] = (),
    ) -> None:
        _validate_name("metric", name)
        for label in labelnames:
            _validate_name("label", label)
        self.name = name
        self.help = help_text
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()
        self._children: "Dict[Tuple[str, ...], Any]" = {}

    # Child construction is subclass-specific.
    def _make_child(self):  # pragma: no cover - overridden
        raise NotImplementedError

    def labels(self, *labelvalues: Any, **labelkwargs: Any):
        """The child series for one label-value combination.

        Accepts either positional values (in ``labelnames`` order) or
        keyword values; mixing is rejected.  Children are created on
        first use and live for the registry's lifetime.
        """
        if labelvalues and labelkwargs:
            raise ConfigurationError(
                f"{self.name}: pass label values positionally or by "
                "keyword, not both"
            )
        if labelkwargs:
            if set(labelkwargs) != set(self.labelnames):
                raise ConfigurationError(
                    f"{self.name}: expected labels {self.labelnames}, "
                    f"got {tuple(sorted(labelkwargs))}"
                )
            values = tuple(str(labelkwargs[name]) for name in self.labelnames)
        else:
            if len(labelvalues) != len(self.labelnames):
                raise ConfigurationError(
                    f"{self.name}: expected {len(self.labelnames)} label "
                    f"value(s) for {self.labelnames}, got {len(labelvalues)}"
                )
            values = tuple(str(value) for value in labelvalues)
        with self._lock:
            child = self._children.get(values)
            if child is None:
                child = self._make_child()
                self._children[values] = child
            return child

    def _default_child(self):
        """The single child of an unlabeled instrument."""
        if self.labelnames:
            raise ConfigurationError(
                f"{self.name} declares labels {self.labelnames}; "
                "address a series via .labels(...)"
            )
        return self.labels()

    def children(self) -> List[Tuple[Tuple[str, ...], Any]]:
        """Stable (insertion-ordered) snapshot of the child series."""
        with self._lock:
            return list(self._children.items())


class _CounterChild:
    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Counter(_Instrument):
    """A (near-)monotone total.  ``inc`` is the only write.

    The one sanctioned exception to monotonicity is the session
    manager's lost-race rollback, which retracts a provisional
    hit/miss count with a negative ``inc`` — rare, tiny, and preferable
    to stats that double-count a retried request.
    """

    kind = "counter"

    def _make_child(self) -> _CounterChild:
        return _CounterChild()

    def inc(self, amount: float = 1.0) -> None:
        self._default_child().inc(amount)

    @property
    def value(self) -> float:
        return self._default_child().value


class _GaugeChild:
    __slots__ = ("_lock", "_value", "_function")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0
        self._function: Optional[Callable[[], float]] = None

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    def set_max(self, value: float) -> None:
        """Track a high-water mark: keep the larger of old and new."""
        with self._lock:
            if value > self._value:
                self._value = float(value)

    def set_function(self, function: Callable[[], float]) -> None:
        """Make reads call ``function()`` — for live values (queue
        depth, resident sessions) that already have one owner."""
        with self._lock:
            self._function = function

    @property
    def value(self) -> float:
        with self._lock:
            function = self._function
            if function is None:
                return self._value
        # Called unlocked: the function may take its owner's lock.
        try:
            return float(function())
        except Exception:
            # A callback racing its component's shutdown must degrade
            # to a stale read, never take down a scrape.
            return 0.0


class Gauge(_Instrument):
    """A value that can go anywhere: set, add, subtract, or callback."""

    kind = "gauge"

    def _make_child(self) -> _GaugeChild:
        return _GaugeChild()

    def set(self, value: float) -> None:
        self._default_child().set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._default_child().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._default_child().dec(amount)

    def set_max(self, value: float) -> None:
        self._default_child().set_max(value)

    def set_function(self, function: Callable[[], float]) -> None:
        self._default_child().set_function(function)

    @property
    def value(self) -> float:
        return self._default_child().value


class _HistogramChild:
    __slots__ = ("_lock", "_bounds", "_counts", "_sum", "_count")

    def __init__(self, bounds: Tuple[float, ...]) -> None:
        self._lock = threading.Lock()
        self._bounds = bounds
        self._counts = [0] * len(bounds)  # per-bucket (non-cumulative)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        with self._lock:
            self._sum += value
            self._count += 1
            for index, bound in enumerate(self._bounds):
                if value <= bound:
                    self._counts[index] += 1
                    break

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def cumulative(self) -> List[Tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, ``+Inf`` last."""
        with self._lock:
            total = 0
            out = []
            for bound, count in zip(self._bounds, self._counts):
                total += count
                out.append((bound, total))
            return out


class Histogram(_Instrument):
    """Fixed-bucket distribution: ``observe`` values, render cumulative.

    Buckets are upper bounds in increasing order; a ``+Inf`` bucket is
    appended automatically.  Bucket layout is fixed at creation — the
    registry's whole point is that a scrape at any moment is consistent.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        labelnames: Sequence[str] = (),
    ) -> None:
        super().__init__(name, help_text, labelnames)
        bounds = tuple(float(bound) for bound in buckets)
        if not bounds:
            raise ConfigurationError(f"{name}: histogram needs >= 1 bucket")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ConfigurationError(
                f"{name}: histogram buckets must strictly increase, "
                f"got {bounds}"
            )
        if bounds[-1] != math.inf:
            bounds = bounds + (math.inf,)
        self.buckets = bounds

    def _make_child(self) -> _HistogramChild:
        return _HistogramChild(self.buckets)

    def observe(self, value: float) -> None:
        self._default_child().observe(value)

    @property
    def count(self) -> int:
        return self._default_child().count

    @property
    def sum(self) -> float:
        return self._default_child().sum


class MetricsRegistry:
    """One process-wide (or stack-wide) home for every instrument.

    Instruments are get-or-create by name: the first caller fixes the
    type, help text, and label names; later callers asking for the same
    name get the same family back (a mismatch in any of the three
    raises :class:`~repro.errors.ConfigurationError` — silent aliasing
    is how dashboards lie).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: "Dict[str, _Instrument]" = {}

    # ------------------------------------------------------------------
    # Instrument factories
    # ------------------------------------------------------------------
    def _get_or_create(
        self, cls, name: str, help_text: str, labelnames: Sequence[str], **kwargs
    ):
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ConfigurationError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, requested {cls.kind}"
                    )
                if existing.labelnames != tuple(labelnames):
                    raise ConfigurationError(
                        f"metric {name!r} already registered with labels "
                        f"{existing.labelnames}, requested {tuple(labelnames)}"
                    )
                return existing
            instrument = cls(name, help_text, labelnames=labelnames, **kwargs)
            self._instruments[name] = instrument
            return instrument

    def counter(
        self, name: str, help_text: str, labelnames: Sequence[str] = ()
    ) -> Counter:
        return self._get_or_create(Counter, name, help_text, labelnames)

    def gauge(
        self, name: str, help_text: str, labelnames: Sequence[str] = ()
    ) -> Gauge:
        return self._get_or_create(Gauge, name, help_text, labelnames)

    def histogram(
        self,
        name: str,
        help_text: str,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        labelnames: Sequence[str] = (),
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help_text, labelnames, buckets=buckets
        )

    def get(self, name: str) -> Optional[_Instrument]:
        """The registered instrument, or None — for introspection."""
        with self._lock:
            return self._instruments.get(name)

    def instruments(self) -> List[_Instrument]:
        """Registration-ordered snapshot of every family."""
        with self._lock:
            return list(self._instruments.values())

    # ------------------------------------------------------------------
    # Exposition
    # ------------------------------------------------------------------
    def render(self) -> str:
        """The Prometheus text exposition of every instrument.

        Format reference: one ``# HELP`` + ``# TYPE`` block per family,
        samples as ``name{labels} value``, histograms as cumulative
        ``_bucket{le="…"}`` series plus ``_sum`` and ``_count``.
        """
        lines: List[str] = []
        for instrument in self.instruments():
            help_text = instrument.help.replace("\\", "\\\\").replace(
                "\n", "\\n"
            )
            lines.append(f"# HELP {instrument.name} {help_text}")
            lines.append(f"# TYPE {instrument.name} {instrument.kind}")
            for labelvalues, child in instrument.children():
                suffix = _labels_suffix(instrument.labelnames, labelvalues)
                if isinstance(instrument, Histogram):
                    for bound, cumulative in child.cumulative():
                        le = _format_value(bound)
                        if suffix:
                            bucket_labels = (
                                suffix[:-1] + f',le="{le}"' + "}"
                            )
                        else:
                            bucket_labels = f'{{le="{le}"}}'
                        lines.append(
                            f"{instrument.name}_bucket{bucket_labels} "
                            f"{cumulative}"
                        )
                    lines.append(
                        f"{instrument.name}_sum{suffix} "
                        f"{_format_value(child.sum)}"
                    )
                    lines.append(
                        f"{instrument.name}_count{suffix} {child.count}"
                    )
                else:
                    lines.append(
                        f"{instrument.name}{suffix} "
                        f"{_format_value(child.value)}"
                    )
        return "\n".join(lines) + "\n" if lines else ""

    def snapshot(self) -> Dict[str, float]:
        """Every sample as a flat ``name{labels} -> value`` mapping.

        Histograms contribute ``name_sum`` and ``name_count`` (buckets
        are an exposition concern).  The periodic stats line and the
        metrics tests both read this.
        """
        out: Dict[str, float] = {}
        for instrument in self.instruments():
            for labelvalues, child in instrument.children():
                suffix = _labels_suffix(instrument.labelnames, labelvalues)
                if isinstance(instrument, Histogram):
                    out[f"{instrument.name}_sum{suffix}"] = child.sum
                    out[f"{instrument.name}_count{suffix}"] = child.count
                else:
                    out[f"{instrument.name}{suffix}"] = child.value
        return out


# ----------------------------------------------------------------------
# The no-op twin
# ----------------------------------------------------------------------
class _NullChild:
    """Accepts every write, reports zero, costs one method call."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def set_max(self, value: float) -> None:
        pass

    def set_function(self, function: Callable[[], float]) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    value = 0.0
    count = 0
    sum = 0.0

    def cumulative(self) -> List[Tuple[float, int]]:
        return []


_NULL_CHILD = _NullChild()


class _NullInstrument(_NullChild):
    """A family that is its own (inert) child."""

    __slots__ = ("name", "help", "labelnames", "kind")

    def __init__(self, name: str, help_text: str, labelnames=(), kind="untyped"):
        self.name = name
        self.help = help_text
        self.labelnames = tuple(labelnames)
        self.kind = kind

    def labels(self, *args: Any, **kwargs: Any) -> _NullChild:
        return _NULL_CHILD

    def children(self) -> List[Tuple[Tuple[str, ...], Any]]:
        return []


class NullMetricsRegistry(MetricsRegistry):
    """A registry whose instruments do nothing.

    Wire this through a serving stack to run it with the bookkeeping
    switched off — the instrumentation call sites stay, each costing a
    no-op method call.  ``benchmarks/bench_http.py`` uses it to bound
    the registry's warm-path overhead; the stats views read all-zero
    through it, so it is for deployments that scrape nothing.
    """

    def _get_or_create(
        self, cls, name, help_text, labelnames, **kwargs
    ) -> _NullInstrument:
        with self._lock:
            existing = self._instruments.get(name)
            if existing is None:
                existing = _NullInstrument(
                    name, help_text, labelnames, kind=cls.kind
                )
                self._instruments[name] = existing
            return existing

    def render(self) -> str:
        return ""

    def snapshot(self) -> Dict[str, float]:
        return {}


#: A shared inert registry: pass as ``registry=NULL_REGISTRY`` to any
#: serving component to disable its metrics.
NULL_REGISTRY = NullMetricsRegistry()
