"""SLO tracking: streaming latency quantiles and error-budget accounting.

The metrics registry's histograms answer "what is the latency
*distribution*" with fixed buckets; an operator running against a
service-level objective needs sharper answers: "what is p99 right now,
is it inside the declared target, and how much error budget is left?"
This module provides both halves with zero dependencies:

* :class:`P2Quantile` — the P² (P-squared) algorithm of Jain & Chlamtac
  (CACM 1985): a streaming quantile estimate from five markers in O(1)
  memory and O(1) per observation, exact below five samples.  No sample
  buffer, no sorting, no numpy.
* :class:`SloTracker` — holds one P² estimator per declared latency
  objective plus a sliding-window availability account (per-second
  buckets), parses the operator grammar
  (``--slo p99:0.5s,availability:99.9``), publishes ``repro_slo_*``
  gauges on a :class:`~repro.observability.MetricsRegistry`, and
  renders the one-line summary the ``--stats-interval`` heartbeat
  appends.

Objective grammar (comma-separated, case-insensitive):

=======================  ==============================================
clause                   meaning
=======================  ==============================================
``pNN[.N]:<seconds>[s]`` latency objective: the NN-th percentile should
                         stay at or under ``<seconds>`` (``p99:0.5s``,
                         ``p50:0.1``); quantile strictly in (0, 100)
``availability:<pct>``   windowed success-rate objective in percent
                         (``availability:99.9``); in (0, 100]
=======================  ==============================================

``observe()`` is thread-safe (one lock covers the estimators and the
window) and is called once per response from the service's render
funnel, so every entry point — batch, socket, HTTP — feeds the same
account.
"""

from __future__ import annotations

import math
import re
import threading
import time
from collections import deque
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from .registry import MetricsRegistry

__all__ = [
    "P2Quantile",
    "SloTracker",
    "parse_slo_spec",
]


class P2Quantile:
    """Streaming estimate of one quantile via the P² algorithm.

    Five markers track the minimum, the target quantile, the maximum,
    and the two midpoints; each observation shifts marker positions and,
    when a marker drifts off its desired position, adjusts its height by
    a piecewise-parabolic (hence P²) interpolation, falling back to
    linear when the parabola would cross a neighbour.  Until five
    samples have arrived the estimate is exact (computed from the sorted
    samples).

    Not thread-safe on its own — :class:`SloTracker` serialises access.
    """

    def __init__(self, q: float) -> None:
        if not 0.0 < q < 1.0:
            raise ConfigurationError(
                f"quantile must be strictly between 0 and 1, got {q}"
            )
        self.q = q
        self._count = 0
        self._heights: List[float] = []  # marker heights, ascending
        # Desired (ideal) marker positions advance by these increments.
        self._increments = (0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0)
        self._positions: List[int] = []
        self._desired: List[float] = []

    @property
    def count(self) -> int:
        return self._count

    def observe(self, value: float) -> None:
        value = float(value)
        self._count += 1
        if self._count <= 5:
            self._heights.append(value)
            self._heights.sort()
            if self._count == 5:
                self._positions = [1, 2, 3, 4, 5]
                self._desired = [
                    1.0 + 4.0 * inc for inc in self._increments
                ]
            return

        heights = self._heights
        positions = self._positions
        # 1. Find the cell the new value falls into; update extremes.
        if value < heights[0]:
            heights[0] = value
            cell = 0
        elif value >= heights[4]:
            heights[4] = value
            cell = 3
        else:
            cell = 0
            while value >= heights[cell + 1]:
                cell += 1
        # 2. Shift actual positions of markers above the cell.
        for i in range(cell + 1, 5):
            positions[i] += 1
        # 3. Advance desired positions.
        for i in range(5):
            self._desired[i] += self._increments[i]
        # 4. Adjust the three interior markers if off-position.
        for i in range(1, 4):
            delta = self._desired[i] - positions[i]
            if (delta >= 1.0 and positions[i + 1] - positions[i] > 1) or (
                delta <= -1.0 and positions[i - 1] - positions[i] < -1
            ):
                step = 1 if delta >= 1.0 else -1
                candidate = self._parabolic(i, step)
                if heights[i - 1] < candidate < heights[i + 1]:
                    heights[i] = candidate
                else:
                    heights[i] = self._linear(i, step)
                positions[i] += step

    def _parabolic(self, i: int, step: int) -> float:
        h, p = self._heights, self._positions
        return h[i] + step / (p[i + 1] - p[i - 1]) * (
            (p[i] - p[i - 1] + step)
            * (h[i + 1] - h[i])
            / (p[i + 1] - p[i])
            + (p[i + 1] - p[i] - step)
            * (h[i] - h[i - 1])
            / (p[i] - p[i - 1])
        )

    def _linear(self, i: int, step: int) -> float:
        h, p = self._heights, self._positions
        return h[i] + step * (h[i + step] - h[i]) / (p[i + step] - p[i])

    def value(self) -> float:
        """The current estimate (NaN before any observation)."""
        if self._count == 0:
            return math.nan
        if self._count < 5:
            ordered = sorted(self._heights)
            # Exact: nearest-rank on the samples seen so far.
            rank = max(
                0, min(len(ordered) - 1, math.ceil(self.q * len(ordered)) - 1)
            )
            return ordered[rank]
        return self._heights[2]

    def __repr__(self) -> str:
        return f"P2Quantile(q={self.q}, n={self._count}, est={self.value()})"


_LATENCY_CLAUSE = re.compile(r"^p(\d{1,2}(?:\.\d+)?)$")


def parse_slo_spec(spec: str) -> Dict[str, Any]:
    """Parse the ``--slo`` grammar into an objective dict.

    Returns ``{"latency": [(name, quantile, target_seconds), ...],
    "availability": percent_or_None}``.  Raises
    :class:`~repro.errors.ConfigurationError` on bad grammar.
    """
    latency: List[Tuple[str, float, float]] = []
    availability: Optional[float] = None
    seen = set()
    for raw_clause in spec.split(","):
        clause = raw_clause.strip()
        if not clause:
            continue
        if ":" not in clause:
            raise ConfigurationError(
                f"bad SLO clause {clause!r}: expected 'pNN:<seconds>' or "
                "'availability:<percent>'"
            )
        key, _, raw_target = clause.partition(":")
        key = key.strip().lower()
        raw_target = raw_target.strip()
        if key in seen:
            raise ConfigurationError(f"duplicate SLO objective {key!r}")
        seen.add(key)
        if key == "availability":
            try:
                percent = float(raw_target)
            except ValueError:
                raise ConfigurationError(
                    f"bad availability target {raw_target!r}: expected a "
                    "percentage like 99.9"
                ) from None
            if not 0.0 < percent <= 100.0:
                raise ConfigurationError(
                    f"availability target must be in (0, 100], got {percent}"
                )
            availability = percent
            continue
        match = _LATENCY_CLAUSE.match(key)
        if match is None:
            raise ConfigurationError(
                f"bad SLO objective {key!r}: expected 'pNN' (e.g. p99) or "
                "'availability'"
            )
        percent = float(match.group(1))
        if not 0.0 < percent < 100.0:
            raise ConfigurationError(
                f"latency quantile must be in (0, 100), got p{percent:g}"
            )
        if raw_target.endswith("s"):
            raw_target = raw_target[:-1]
        try:
            target = float(raw_target)
        except ValueError:
            raise ConfigurationError(
                f"bad latency target for {key!r}: expected seconds like "
                "'0.5s', got " + repr(raw_target)
            ) from None
        if target <= 0:
            raise ConfigurationError(
                f"latency target for {key!r} must be > 0, got {target}"
            )
        latency.append((key, percent / 100.0, target))
    if not latency and availability is None:
        raise ConfigurationError(
            f"SLO spec {spec!r} declares no objectives"
        )
    return {"latency": latency, "availability": availability}


class SloTracker:
    """Tracks declared latency/availability objectives over live traffic.

    Parameters
    ----------
    spec:
        Either the raw ``--slo`` grammar string or a dict from
        :func:`parse_slo_spec`.
    registry:
        Optional metrics registry; when given the tracker exports
        ``repro_slo_latency_seconds{objective}`` (current estimate),
        ``repro_slo_latency_target_seconds{objective}``,
        ``repro_slo_latency_within_target{objective}`` (1/0),
        ``repro_slo_availability_percent`` (windowed),
        ``repro_slo_availability_target_percent``, and
        ``repro_slo_error_budget_remaining`` (fraction of the allowed
        error rate still unspent in the window; 1 = untouched,
        0 = exhausted/overdrawn) via gauge callbacks, so scraping
        ``/metrics`` always reads the live account.
    window_seconds:
        Sliding window for availability accounting (per-second buckets;
        quantile estimators are lifetime-streaming by design).
    """

    def __init__(
        self,
        spec: Any,
        registry: Optional[MetricsRegistry] = None,
        window_seconds: float = 300.0,
    ) -> None:
        if window_seconds < 1.0:
            raise ConfigurationError(
                f"SLO window must be >= 1 second, got {window_seconds}"
            )
        objectives = parse_slo_spec(spec) if isinstance(spec, str) else spec
        self.latency_objectives: List[Tuple[str, float, float]] = list(
            objectives.get("latency") or ()
        )
        self.availability_target: Optional[float] = objectives.get(
            "availability"
        )
        self.window_seconds = float(window_seconds)
        self._lock = threading.Lock()
        self._estimators: Dict[str, Tuple[P2Quantile, float]] = {
            name: (P2Quantile(q), target)
            for name, q, target in self.latency_objectives
        }
        # Per-second (epoch_second, ok_count, error_count) buckets.
        self._buckets: "deque[List[float]]" = deque()
        self._total_ok = 0
        self._total_error = 0
        if registry is not None:
            self._export(registry)

    # ------------------------------------------------------------------
    def observe(self, latency_seconds: float, ok: bool = True) -> None:
        """Account one finished request (every entry point funnels here)."""
        now = time.time()
        second = int(now)
        with self._lock:
            if ok:
                self._total_ok += 1
                for estimator, _target in self._estimators.values():
                    estimator.observe(latency_seconds)
            else:
                self._total_error += 1
            if self._buckets and self._buckets[-1][0] == second:
                bucket = self._buckets[-1]
            else:
                bucket = [second, 0, 0]
                self._buckets.append(bucket)
            bucket[1 if ok else 2] += 1
            self._trim(now)

    def _trim(self, now: float) -> None:
        horizon = now - self.window_seconds
        while self._buckets and self._buckets[0][0] < horizon:
            self._buckets.popleft()

    # ------------------------------------------------------------------
    def quantile(self, name: str) -> float:
        """Current latency estimate for one objective (NaN if unseen)."""
        with self._lock:
            pair = self._estimators.get(name)
            return math.nan if pair is None else pair[0].value()

    def window_counts(self) -> Tuple[int, int]:
        """``(ok, error)`` inside the sliding window."""
        with self._lock:
            self._trim(time.time())
            ok = sum(bucket[1] for bucket in self._buckets)
            error = sum(bucket[2] for bucket in self._buckets)
        return ok, error

    def availability_percent(self) -> float:
        """Windowed success rate in percent (100.0 when idle)."""
        ok, error = self.window_counts()
        total = ok + error
        if total == 0:
            return 100.0
        return 100.0 * ok / total

    def error_budget_remaining(self) -> float:
        """Fraction of the window's allowed error rate still unspent.

        With target availability A, the budget is a ``1 - A/100`` error
        rate; the remaining fraction is ``1 - observed_rate / budget``,
        clamped to [0, 1] (0 means exhausted or overdrawn).  Returns 1.0
        when no availability objective is declared or no traffic has
        arrived.
        """
        if self.availability_target is None:
            return 1.0
        ok, error = self.window_counts()
        total = ok + error
        if total == 0:
            return 1.0
        budget = 1.0 - self.availability_target / 100.0
        if budget <= 0.0:
            return 0.0 if error else 1.0
        observed = error / total
        return max(0.0, min(1.0, 1.0 - observed / budget))

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-ready view of every objective and its current state."""
        latency = {}
        for name, _q, target in self.latency_objectives:
            estimate = self.quantile(name)
            latency[name] = {
                "estimate_seconds": None
                if math.isnan(estimate)
                else estimate,
                "target_seconds": target,
                "within_target": bool(
                    math.isnan(estimate) or estimate <= target
                ),
            }
        ok, error = self.window_counts()
        return {
            "latency": latency,
            "availability": {
                "percent": self.availability_percent(),
                "target_percent": self.availability_target,
                "window_seconds": self.window_seconds,
                "window_ok": ok,
                "window_error": error,
                "error_budget_remaining": self.error_budget_remaining(),
            },
        }

    def summary(self) -> str:
        """One-line operator summary for the ``--stats-interval`` line.

        e.g. ``slo p99=0.412s/0.500s ok | avail 100.00%/99.9% budget=1.00``.
        """
        parts: List[str] = []
        for name, _q, target in self.latency_objectives:
            estimate = self.quantile(name)
            if math.isnan(estimate):
                parts.append(f"{name}=-/{target:.3f}s")
            else:
                flag = "ok" if estimate <= target else "VIOLATED"
                parts.append(f"{name}={estimate:.3f}s/{target:.3f}s {flag}")
        if self.availability_target is not None:
            parts.append(
                f"avail {self.availability_percent():.2f}%/"
                f"{self.availability_target:g}% "
                f"budget={self.error_budget_remaining():.2f}"
            )
        return "slo " + " | ".join(parts) if parts else "slo (none)"

    # ------------------------------------------------------------------
    def _export(self, registry: MetricsRegistry) -> None:
        latency_gauge = registry.gauge(
            "repro_slo_latency_seconds",
            "Streaming latency-quantile estimate per declared objective",
            labelnames=("objective",),
        )
        target_gauge = registry.gauge(
            "repro_slo_latency_target_seconds",
            "Declared latency target per objective",
            labelnames=("objective",),
        )
        within_gauge = registry.gauge(
            "repro_slo_latency_within_target",
            "1 when the latency estimate meets its target, else 0",
            labelnames=("objective",),
        )

        def _latency_fn(objective_name: str):
            def read() -> float:
                estimate = self.quantile(objective_name)
                return 0.0 if math.isnan(estimate) else estimate

            return read

        def _within_fn(objective_name: str, objective_target: float):
            def read() -> float:
                estimate = self.quantile(objective_name)
                if math.isnan(estimate):
                    return 1.0
                return 1.0 if estimate <= objective_target else 0.0

            return read

        for name, _q, target in self.latency_objectives:
            latency_gauge.labels(objective=name).set_function(
                _latency_fn(name)
            )
            target_gauge.labels(objective=name).set(target)
            within_gauge.labels(objective=name).set_function(
                _within_fn(name, target)
            )
        if self.availability_target is not None:
            registry.gauge(
                "repro_slo_availability_percent",
                "Sliding-window success rate in percent",
            ).set_function(self.availability_percent)
            registry.gauge(
                "repro_slo_availability_target_percent",
                "Declared availability objective in percent",
            ).set(self.availability_target)
            registry.gauge(
                "repro_slo_error_budget_remaining",
                "Fraction of the windowed error budget still unspent",
            ).set_function(self.error_budget_remaining)

    def __repr__(self) -> str:
        names = [name for name, _q, _t in self.latency_objectives]
        return (
            f"SloTracker(latency={names}, "
            f"availability={self.availability_target}, "
            f"window={self.window_seconds:g}s)"
        )
