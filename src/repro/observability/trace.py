"""RequestTrace: per-request ids and span timings for the serving path.

Every request that enters the serving stack gets a
:class:`RequestTrace`: a process-unique id plus named span timings
covering the stations a request passes through — ``parse`` (JSON →
:class:`~repro.serving.ServeRequest`, possibly a graph-file read),
``queue_wait`` (admission → dispatch), ``session_acquire`` (manager
lock + bind-or-fetch, annotated hit/miss), ``detect`` (the algorithm
itself), and ``render`` (cover → canonical JSON).  The trace rides on
the request object through the queue and comes back in the response's
``trace`` annotation, so a slow request can be decomposed from the
client side alone::

    {"id": "r1", "ok": true, …,
     "trace": {"id": "t-31337-000042",
               "spans": {"parse": 0.0003, "queue_wait": 0.018,
                         "session_acquire": 0.0001, "detect": 0.21,
                         "render": 0.0007},
               "session_hit": true}}

Ids are ``t-<pid>-NNNNNN`` with a per-process monotonic counter: cheap,
collision-free within the process, and — because the pid is baked in —
unique across a fleet of shard processes whose logs get merged.
Spans are plain perf-counter durations recorded once each; a station
that never ran (a parse error, a shed request) simply has no span.
Traces are written from several threads (parse on an executor thread,
queue spans on a worker thread, render wherever the response flushes) —
each station records a *different* span, so a lock only guards the
dict itself.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from typing import Any, Dict, Optional

__all__ = ["RequestTrace", "new_trace", "reset_trace_ids"]

_counter = itertools.count(1)
_counter_lock = threading.Lock()


def _next_id() -> str:
    # The pid prefix makes ids fleet-unique: logs merged across shard
    # processes (or across restarts) never collide on a trace id.
    with _counter_lock:
        return f"t-{os.getpid()}-{next(_counter):06d}"


def reset_trace_ids() -> None:
    """Restart the id sequence (test isolation only)."""
    global _counter
    with _counter_lock:
        _counter = itertools.count(1)


class RequestTrace:
    """One request's identity and span timings."""

    __slots__ = ("trace_id", "started_at", "_spans", "_marks", "_lock")

    def __init__(self, trace_id: Optional[str] = None) -> None:
        self.trace_id = trace_id if trace_id is not None else _next_id()
        self.started_at = time.perf_counter()
        self._spans: Dict[str, float] = {}
        self._marks: Dict[str, Any] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def record(self, name: str, seconds: float) -> None:
        """Record one span duration (last write wins)."""
        with self._lock:
            self._spans[name] = float(seconds)

    def span(self, name: str) -> "_Span":
        """Context manager timing one station::

            with trace.span("parse"):
                request = service.parse_request(line)
        """
        return _Span(self, name)

    def mark(self, key: str, value: Any) -> None:
        """Attach a non-timing annotation (e.g. ``session_hit``)."""
        with self._lock:
            self._marks[key] = value

    # ------------------------------------------------------------------
    @property
    def spans(self) -> Dict[str, float]:
        """Copy of the spans recorded so far."""
        with self._lock:
            return dict(self._spans)

    @property
    def marks(self) -> Dict[str, Any]:
        """Copy of the non-timing annotations."""
        with self._lock:
            return dict(self._marks)

    def export(self) -> Dict[str, Any]:
        """The JSON-ready ``trace`` annotation for a response."""
        with self._lock:
            out: Dict[str, Any] = {
                "id": self.trace_id,
                "spans": {
                    name: round(value, 9)
                    for name, value in self._spans.items()
                },
            }
            out.update(self._marks)
            return out

    def __repr__(self) -> str:
        return (
            f"RequestTrace(id={self.trace_id!r}, "
            f"spans={sorted(self.spans)})"
        )


class _Span:
    """Times a ``with`` block into its trace; re-raises everything."""

    __slots__ = ("_trace", "_name", "_start")

    def __init__(self, trace: RequestTrace, name: str) -> None:
        self._trace = trace
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_Span":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self._trace.record(self._name, time.perf_counter() - self._start)


def new_trace() -> RequestTrace:
    """A fresh trace with the next process-wide id."""
    return RequestTrace()
