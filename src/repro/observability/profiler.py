"""On-demand sampling profiler: see inside a live serving process.

When a detect is slow in production — a spectral solve pinning one
core, a CSR loop that stopped vectorising — restarting under a
profiler loses the very state being debugged.  This module profiles
*in place*: a daemon thread wakes every ``interval_seconds``, snapshots
every thread's Python stack via :func:`sys._current_frames`, and
aggregates identical stacks into counts.  The result renders as
collapsed-stack text (``frame;frame;leaf count`` lines — the input
format of Brendan Gregg's ``flamegraph.pl`` and every compatible
viewer), which ``GET /debug/profile?seconds=S`` serves directly.

Overhead bound: each tick costs one ``sys._current_frames()`` call
plus an O(stack depth) walk per live thread — at the default 200 Hz on
a serving process with tens of threads this stays **well under 5% of
one core**, and the hot numpy/scipy regions the samples attribute run
with the GIL released, so detect throughput is essentially unaffected
(``benchmarks/bench_obs.py`` measures this directly).  The sampler sees
Python frames only: time inside a C extension is attributed to the
Python line that called it, which for "which solve is hot?" is exactly
the attribution wanted.

Sampling bias caveat: stacks are sampled at ticks, so a function's
sample share approximates its wall-clock share only over enough
samples; sub-interval spikes can be missed.  For always-on accounting
use the metrics histograms — this tool is the magnifying glass, not
the dashboard.
"""

from __future__ import annotations

import sys
import threading
import time
from collections import Counter as _TallyCounter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import ConfigurationError

__all__ = [
    "ProfileReport",
    "SamplingProfiler",
]


@dataclass
class ProfileReport:
    """The aggregated outcome of one sampling run."""

    #: ``stack -> samples`` where stack is the collapsed
    #: ``thread;file:func;...;leaf`` string (root first, leaf last).
    stacks: Dict[str, int]
    #: Total sampling ticks taken (>= 1 unless the run was empty).
    samples: int
    #: Wall-clock duration actually sampled.
    seconds: float
    #: The tick interval used.
    interval_seconds: float

    def collapsed(self) -> str:
        """Flamegraph-ready text: one ``stack count`` line per stack,
        heaviest first (ties broken lexically for determinism)."""
        lines = [
            f"{stack} {count}"
            for stack, count in sorted(
                self.stacks.items(), key=lambda item: (-item[1], item[0])
            )
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def __repr__(self) -> str:
        return (
            f"ProfileReport(samples={self.samples}, "
            f"stacks={len(self.stacks)}, seconds={self.seconds:.3f})"
        )


def _collapse_frame(frame) -> str:
    code = frame.f_code
    filename = code.co_filename
    # Keep paths short but unambiguous: last two components.
    parts = filename.replace("\\", "/").rsplit("/", 2)
    short = "/".join(parts[-2:]) if len(parts) > 1 else filename
    return f"{short}:{code.co_name}"


@dataclass
class SamplingProfiler:
    """Samples all thread stacks on a timer; one run at a time.

    ``profile(seconds)`` is the blocking convenience used by the HTTP
    debug endpoint (which calls it from an executor thread so the event
    loop stays live).  ``start()``/``stop()`` expose the same run
    non-blocking for tests and embedding.

    Concurrent runs are refused (:class:`RuntimeError`) rather than
    interleaved — two samplers would double the overhead and neither
    report would mean anything; the HTTP endpoint maps the refusal to
    a 503.
    """

    interval_seconds: float = 0.005
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False
    )
    _thread: Optional[threading.Thread] = field(default=None, repr=False)
    _stop_event: Optional[threading.Event] = field(default=None, repr=False)
    _tally: "_TallyCounter[str]" = field(
        default_factory=_TallyCounter, repr=False
    )
    _samples: int = field(default=0, repr=False)
    _started_at: float = field(default=0.0, repr=False)
    _stopped_at: float = field(default=0.0, repr=False)

    def __post_init__(self) -> None:
        if self.interval_seconds <= 0:
            raise ConfigurationError(
                "profiler interval must be > 0 seconds, got "
                f"{self.interval_seconds}"
            )

    @property
    def running(self) -> bool:
        with self._lock:
            return self._thread is not None

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin sampling on a daemon thread (refuses a second run)."""
        with self._lock:
            if self._thread is not None:
                raise RuntimeError("a profiling run is already active")
            self._tally = _TallyCounter()
            self._samples = 0
            self._stop_event = threading.Event()
            self._started_at = time.perf_counter()
            self._thread = threading.Thread(
                target=self._run,
                args=(self._stop_event,),
                name="repro-profiler",
                daemon=True,
            )
            self._thread.start()

    def stop(self) -> ProfileReport:
        """End the run and return its report."""
        with self._lock:
            thread, self._thread = self._thread, None
            stop_event, self._stop_event = self._stop_event, None
        if thread is None:
            raise RuntimeError("no profiling run is active")
        stop_event.set()
        thread.join()
        self._stopped_at = time.perf_counter()
        return ProfileReport(
            stacks=dict(self._tally),
            samples=self._samples,
            seconds=self._stopped_at - self._started_at,
            interval_seconds=self.interval_seconds,
        )

    def profile(self, seconds: float) -> ProfileReport:
        """Sample for ``seconds`` and return the report (blocking)."""
        if seconds <= 0:
            raise ConfigurationError(
                f"profile duration must be > 0 seconds, got {seconds}"
            )
        self.start()
        try:
            time.sleep(seconds)
        finally:
            report = self.stop()
        return report

    # ------------------------------------------------------------------
    def _run(self, stop_event: threading.Event) -> None:
        own_ident = threading.get_ident()
        while not stop_event.wait(self.interval_seconds):
            names = {
                thread.ident: thread.name
                for thread in threading.enumerate()
            }
            for ident, frame in sys._current_frames().items():
                if ident == own_ident:
                    continue
                frames: List[str] = []
                while frame is not None:
                    frames.append(_collapse_frame(frame))
                    frame = frame.f_back
                frames.reverse()
                thread_name = names.get(ident, f"thread-{ident}")
                stack = ";".join([thread_name] + frames)
                self._tally[stack] += 1
            self._samples += 1
