"""EventLog: the serving stack's structured flight recorder.

Metrics (:mod:`~repro.observability.registry`) answer "how much, how
fast, in aggregate"; traces (:mod:`~repro.observability.trace`) answer
"where did *this* response spend its time".  Neither answers the
operator's first forensic question — *what happened, in order* — after
an incident: which requests ran, which were shed, which sessions were
evicted, when the store discarded a corrupt entry, when a front-end
started or stopped.  This module is that durable record:

* :class:`EventLog` keeps a **lock-protected in-memory ring buffer**
  (the flight recorder: bounded, drop-oldest, with a dropped-events
  counter so truncation is visible, never silent) and optionally mirrors
  every event to a **line-buffered JSONL file sink** with size-based
  rotation — the access log ``repro-oca serve --access-log PATH`` writes,
  mergeable across processes because every event carries the pid.
* Events are flat JSON objects: ``ts`` (unix time), ``seq`` (per-log
  monotone), ``pid``, ``kind``, plus kind-specific fields.  The serving
  vocabulary (emitted by the queue, manager, store, service, and both
  front-ends off the one service-rooted log):

  ===================  =================================================
  kind                 meaning / distinguishing fields
  ===================  =================================================
  ``request``          one per response: ``trace``, ``client``,
                       ``fingerprint``, ``algorithm``, ``status``
                       (``ok``/``error``), ``session_source``,
                       ``coalesce_batch``, ``latency_seconds``,
                       ``spans`` (the per-station trace timings)
  ``deadline_shed``    a request shed past its budget: ``stage``
                       (``admission``/``queue``), ``deadline_seconds``,
                       ``waited_seconds``
  ``queue_rejected``   an admission refusal: ``reason``
                       (``full``/``closed``)
  ``session_evicted``  a warm session closed: ``fingerprint``,
                       ``reason`` (``capacity``/``explicit``)
  ``store_corrupt``    a persisted entry discarded (the caller falls
                       back to recompiling): ``fingerprint``, ``reason``
  ``server_start`` /   front-end lifecycle: ``front_end``
  ``server_stop``      (``socket``/``http``), ``host``, ``port``
  ===================  =================================================

  The vocabulary is open — future layers (the shard router) add kinds
  without touching this module — but these names are the contract the
  debug endpoints and the CI smoke assert on.
* :class:`SlowRequestLog` is the worst-N table behind
  ``GET /debug/slow``: requests whose latency crossed
  ``--slow-threshold-seconds`` keep their full trace, engine stats, and
  queue context so a slow detect is reconstructable *after* it happened.

:data:`NULL_EVENT_LOG` is the shared no-op twin (the benchmark's
"instrumentation off" arm and the default for standalone components):
``emit`` discards, ``tail`` is empty, nothing is ever written.
"""

from __future__ import annotations

import heapq
import json
import os
import threading
import time
import warnings
from collections import deque
from pathlib import Path
from typing import Any, Dict, List, Optional

from ..errors import ConfigurationError
from .registry import MetricsRegistry

__all__ = [
    "EventLog",
    "NullEventLog",
    "NULL_EVENT_LOG",
    "SlowRequestLog",
]


class EventLog:
    """A bounded in-memory event ring with an optional JSONL file sink.

    Parameters
    ----------
    capacity:
        Ring-buffer bound (>= 1).  When full, emitting drops the oldest
        event and counts the drop — the flight recorder keeps the most
        recent history, and :attr:`dropped` says how much is missing.
    sink_path:
        Optional JSONL access-log path.  Every event is appended as one
        ``json.dumps`` line through a line-buffered text stream, so a
        crashed process leaves complete lines behind.  Parent
        directories are created.
    sink_max_bytes:
        Size-based rotation bound for the sink (>= 1024).  When an
        append would push the file past it, the current file is renamed
        to ``<path>.1`` (replacing any previous rotation) and a fresh
        file is started — worst case on disk is ~2x the bound.  ``None``
        disables rotation.
    registry:
        Optional :class:`~repro.observability.MetricsRegistry`;
        when given, the log publishes ``repro_events_total{kind=…}``,
        ``repro_events_dropped_total``, ``repro_events_sink_bytes_total``
        and ``repro_events_sink_rotations_total``.

    ``emit`` is safe from any thread (queue workers, the asyncio loop,
    executor threads): one lock orders the sequence counter, the ring,
    and the sink, so the JSONL file is seq-ordered per process.  Sink
    IO failures are absorbed — the sink is disabled after one
    :class:`RuntimeWarning` and the in-memory ring keeps recording; the
    event log can never fail a request.
    """

    def __init__(
        self,
        capacity: int = 1024,
        sink_path: Optional[Any] = None,
        sink_max_bytes: Optional[int] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if capacity < 1:
            raise ConfigurationError(
                f"event-log capacity must be >= 1, got {capacity}"
            )
        if sink_max_bytes is not None and sink_max_bytes < 1024:
            raise ConfigurationError(
                "sink_max_bytes must be >= 1024 (one rotation must hold "
                f"more than a handful of events), got {sink_max_bytes}"
            )
        if sink_max_bytes is not None and sink_path is None:
            raise ConfigurationError(
                "sink_max_bytes needs a sink_path to rotate"
            )
        self.capacity = capacity
        self._lock = threading.Lock()
        self._ring: "deque[Dict[str, Any]]" = deque(maxlen=capacity)
        self._seq = 0
        self._dropped = 0
        self.sink_path = None if sink_path is None else Path(sink_path)
        self.sink_max_bytes = sink_max_bytes
        self._sink = None
        self._sink_bytes = 0
        self._rotations = 0
        if self.sink_path is not None:
            self.sink_path.parent.mkdir(parents=True, exist_ok=True)
            self._sink = open(
                self.sink_path, "a", encoding="utf-8", buffering=1
            )
            self._sink_bytes = self._sink.tell()
        self._metrics = None
        self._kind_counters: Dict[str, Any] = {}
        if registry is not None:
            self._metrics = {
                "emitted": registry.counter(
                    "repro_events_total",
                    "Structured events emitted, by kind",
                    labelnames=("kind",),
                ),
                "dropped": registry.counter(
                    "repro_events_dropped_total",
                    "Events evicted from the full ring buffer",
                ),
                "sink_bytes": registry.counter(
                    "repro_events_sink_bytes_total",
                    "Bytes appended to the JSONL event sink",
                ),
                "rotations": registry.counter(
                    "repro_events_sink_rotations_total",
                    "Size-based rotations of the JSONL event sink",
                ),
            }

    # ------------------------------------------------------------------
    @property
    def dropped(self) -> int:
        """Events evicted from the ring since construction."""
        with self._lock:
            return self._dropped

    @property
    def rotations(self) -> int:
        """Sink files rotated out since construction."""
        with self._lock:
            return self._rotations

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    def emit(self, kind: str, **fields: Any) -> Dict[str, Any]:
        """Record one event; returns the stored dict.

        ``ts`` / ``seq`` / ``pid`` / ``kind`` are stamped here; callers
        supply only the kind-specific fields.  Fields must be
        JSON-serialisable (the sink writes them verbatim); a
        non-serialisable value falls back to ``repr`` rather than
        losing the event.
        """
        event: Dict[str, Any] = {
            "ts": round(time.time(), 6),
            "seq": 0,  # patched under the lock
            "pid": os.getpid(),
            "kind": kind,
        }
        event.update(fields)
        with self._lock:
            self._seq += 1
            event["seq"] = self._seq
            if len(self._ring) == self.capacity:
                self._dropped += 1
                if self._metrics is not None:
                    self._metrics["dropped"].inc()
            self._ring.append(event)
            if self._sink is not None:
                self._write_line(event)
        if self._metrics is not None:
            child = self._kind_counters.get(kind)
            if child is None:
                child = self._metrics["emitted"].labels(kind=kind)
                self._kind_counters[kind] = child
            child.inc()
        return event

    def _write_line(self, event: Dict[str, Any]) -> None:
        """Append one JSONL line, rotating first if it would overflow.

        Called with the log lock held; any failure disables the sink
        after a single warning — the ring keeps recording regardless.
        """
        try:
            line = json.dumps(event, sort_keys=True, default=repr) + "\n"
            encoded_len = len(line.encode("utf-8"))
            if (
                self.sink_max_bytes is not None
                and self._sink_bytes > 0
                and self._sink_bytes + encoded_len > self.sink_max_bytes
            ):
                self._sink.close()
                os.replace(
                    self.sink_path, self.sink_path.with_name(
                        self.sink_path.name + ".1"
                    )
                )
                self._sink = open(
                    self.sink_path, "a", encoding="utf-8", buffering=1
                )
                self._sink_bytes = 0
                self._rotations += 1
                if self._metrics is not None:
                    self._metrics["rotations"].inc()
            self._sink.write(line)
            self._sink_bytes += encoded_len
            if self._metrics is not None:
                self._metrics["sink_bytes"].inc(encoded_len)
        except Exception as error:
            sink, self._sink = self._sink, None
            try:
                if sink is not None:
                    sink.close()
            except Exception:
                pass
            warnings.warn(
                f"event-log sink {self.sink_path} failed ({error}); "
                "disabling the file sink, in-memory events continue",
                RuntimeWarning,
                stacklevel=3,
            )

    # ------------------------------------------------------------------
    def tail(
        self, n: Optional[int] = None, kind: Optional[str] = None
    ) -> List[Dict[str, Any]]:
        """The most recent events, oldest first.

        ``n`` bounds the count (``None``: everything buffered); ``kind``
        filters before bounding, so ``tail(5, kind="request")`` is the
        last five *requests*, however many other events interleaved.
        Returned dicts are copies — mutating them cannot corrupt the
        ring.
        """
        with self._lock:
            events: List[Dict[str, Any]] = list(self._ring)
        if kind is not None:
            events = [event for event in events if event["kind"] == kind]
        if n is not None:
            if n <= 0:
                return []
            events = events[-n:]
        return [dict(event) for event in events]

    def close(self) -> None:
        """Flush and close the file sink (the ring stays readable)."""
        with self._lock:
            sink, self._sink = self._sink, None
        if sink is not None:
            try:
                sink.close()
            except Exception:
                pass

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"EventLog(buffered={len(self)}/{self.capacity}, "
            f"dropped={self.dropped}, "
            f"sink={str(self.sink_path) if self.sink_path else None})"
        )


class NullEventLog(EventLog):
    """An event log that records nothing — the instrumentation-off twin.

    Every serving component defaults to this when no log is wired in,
    so the ``emit`` call sites stay unconditional and cost one cheap
    method call; the benchmark's "disabled" arm measures exactly this.
    """

    def __init__(self) -> None:  # no buffers, no sink, no metrics
        self.capacity = 0
        self.sink_path = None
        self.sink_max_bytes = None

    def emit(self, kind: str, **fields: Any) -> Dict[str, Any]:
        return {}

    def tail(self, n=None, kind=None) -> List[Dict[str, Any]]:
        return []

    @property
    def dropped(self) -> int:
        return 0

    @property
    def rotations(self) -> int:
        return 0

    def __len__(self) -> int:
        return 0

    def close(self) -> None:
        pass

    def __repr__(self) -> str:
        return "NullEventLog()"


#: The shared inert event log: pass (or default) as ``events`` to any
#: serving component to switch the event pipeline off.
NULL_EVENT_LOG = NullEventLog()


class SlowRequestLog:
    """A bounded worst-N table of the slowest requests seen.

    The ring buffer answers "what happened recently"; this table answers
    "what were the *worst* requests, ever" — the forensic record behind
    ``GET /debug/slow``.  A request whose latency reaches
    ``threshold_seconds`` is offered via :meth:`note`; the table keeps
    the ``limit`` slowest (a min-heap keyed by latency, so the cheapest
    captive is evicted first) together with whatever context the caller
    attached — the service stores the full trace export, engine stats,
    and queue context.

    ``threshold_seconds`` semantics: ``None`` disables capture
    entirely; ``0.0`` captures every request (the CI smoke's forcing
    knob — any real latency exceeds zero).
    """

    def __init__(
        self,
        limit: int = 32,
        threshold_seconds: Optional[float] = None,
    ) -> None:
        if limit < 1:
            raise ConfigurationError(
                f"slow-request limit must be >= 1, got {limit}"
            )
        if threshold_seconds is not None and threshold_seconds < 0:
            raise ConfigurationError(
                "threshold_seconds must be >= 0 (0 captures everything), "
                f"got {threshold_seconds}"
            )
        self.limit = limit
        self.threshold_seconds = threshold_seconds
        self._lock = threading.Lock()
        self._heap: List[Any] = []  # (latency, tiebreak_seq, record)
        self._seq = 0
        self._captured = 0

    @property
    def enabled(self) -> bool:
        return self.threshold_seconds is not None

    @property
    def captured(self) -> int:
        """Requests that crossed the threshold (kept or since evicted)."""
        with self._lock:
            return self._captured

    def note(self, latency_seconds: float, record: Dict[str, Any]) -> bool:
        """Offer one finished request; returns whether it was captured.

        ``record`` is stored as given (plus the measured latency under
        ``latency_seconds``); build it JSON-ready — the debug endpoint
        serves these dicts verbatim.
        """
        threshold = self.threshold_seconds
        if threshold is None or latency_seconds < threshold:
            return False
        with self._lock:
            self._captured += 1
            self._seq += 1
            entry = dict(record)
            entry["latency_seconds"] = latency_seconds
            heapq.heappush(
                self._heap, (latency_seconds, self._seq, entry)
            )
            while len(self._heap) > self.limit:
                heapq.heappop(self._heap)
        return True

    def worst(self, n: Optional[int] = None) -> List[Dict[str, Any]]:
        """The captured requests, slowest first (bounded by ``n``)."""
        with self._lock:
            entries = sorted(self._heap, key=lambda item: (-item[0], item[1]))
        if n is not None:
            entries = entries[: max(n, 0)]
        return [dict(entry[2]) for entry in entries]

    def __len__(self) -> int:
        with self._lock:
            return len(self._heap)

    def __repr__(self) -> str:
        return (
            f"SlowRequestLog(kept={len(self)}/{self.limit}, "
            f"captured={self.captured}, "
            f"threshold={self.threshold_seconds})"
        )
