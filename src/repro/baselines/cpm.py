"""CFinder: the k-clique percolation method of Palla et al. (ref. [12]).

A *k-clique community* is the union of all k-cliques reachable from one
another through chains of k-cliques sharing ``k - 1`` nodes.  CFinder's
own implementation (and ours) exploits the standard equivalence with
maximal cliques: restrict to maximal cliques of size >= k, connect two of
them when they share >= k - 1 nodes, and take connected components — each
component's node union is one community.  (Any two k-cliques inside one
maximal clique trivially percolate, and two maximal cliques sharing
``k - 1`` nodes contain adjacent k-cliques, so the equivalence is exact.)

The paper runs CFinder with ``k = 3``, "the value of the parameter k that
yielded the best results", and observes that the clique enumeration is
prohibitive on large instances — behaviour this implementation shares by
construction.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, List, Set, Tuple

import numpy as np
import scipy.sparse as sp

from ..communities import Cover
from ..detection import _warn_legacy
from ..errors import ConfigurationError
from ..graph import Graph
from ..graph.csr import CompiledGraph
from .cliques import cliques_at_least, maximal_cliques_ids

__all__ = ["CPMResult", "clique_percolation", "cfinder"]

Node = Hashable


@dataclass
class CPMResult:
    """Outcome of a clique-percolation run.

    Attributes
    ----------
    cover:
        The k-clique communities (overlapping by nature: nodes in several
        cliques of different communities appear in each).
    k:
        The clique size parameter used.
    maximal_cliques:
        How many maximal cliques of size >= k were enumerated.
    elapsed_seconds:
        Wall-clock duration.
    """

    cover: Cover
    k: int
    maximal_cliques: int
    elapsed_seconds: float

    def __repr__(self) -> str:
        return (
            f"CPMResult(communities={len(self.cover)}, k={self.k}, "
            f"cliques={self.maximal_cliques}, elapsed={self.elapsed_seconds:.3f}s)"
        )


def clique_percolation(
    graph: Graph, k: int = 3, faithful_overlap: bool = True
) -> CPMResult:
    """Run k-clique percolation on ``graph``.

    ``k`` must be at least 2 (k = 2 degenerates to connected components of
    the edge set, which is still well-defined and occasionally useful as a
    sanity baseline).

    ``faithful_overlap`` selects how clique adjacency is discovered:

    * ``True`` (default): the **published CFinder procedure** — build the
      full clique–clique overlap matrix, i.e. compare every pair of
      cliques.  Quadratic in the number of cliques, which is exactly the
      cost profile behind the paper's Figure 5 ("prohibitively slow") —
      timing experiments must keep this default to be comparable.
    * ``False``: an indexed variant that only compares cliques sharing at
      least one node.  Identical output, much faster on large sparse
      graphs; provided for users who want CPM results rather than a
      faithful baseline.
    """
    if k < 2:
        raise ConfigurationError(f"k must be >= 2, got {k}")
    start = time.perf_counter()
    cliques: List[FrozenSet[Node]] = cliques_at_least(graph, k)

    # Union-find over clique indices.
    parent = list(range(len(cliques)))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    def union(i: int, j: int) -> None:
        ri, rj = find(i), find(j)
        if ri != rj:
            parent[rj] = ri

    if faithful_overlap:
        # Full clique-clique overlap matrix, as in Palla et al.'s tool.
        for i in range(len(cliques)):
            clique_i = cliques[i]
            for j in range(i + 1, len(cliques)):
                if len(clique_i & cliques[j]) >= k - 1 and find(i) != find(j):
                    union(i, j)
    else:
        # Index cliques by member so only cliques sharing a node compare.
        by_node: Dict[Node, List[int]] = {}
        for index, clique in enumerate(cliques):
            for node in clique:
                by_node.setdefault(node, []).append(index)
        for indices in by_node.values():
            for position, i in enumerate(indices):
                clique_i = cliques[i]
                for j in indices[position + 1 :]:
                    if find(i) == find(j):
                        continue
                    if len(clique_i & cliques[j]) >= k - 1:
                        union(i, j)

    groups: Dict[int, Set[Node]] = {}
    for index, clique in enumerate(cliques):
        groups.setdefault(find(index), set()).update(clique)

    cover = Cover(groups.values())
    return CPMResult(
        cover=cover,
        k=k,
        maximal_cliques=len(cliques),
        elapsed_seconds=time.perf_counter() - start,
    )


# ----------------------------------------------------------------------
# The CSR-native path (dense-id space, vectorised overlap discovery)
# ----------------------------------------------------------------------
def _percolate_ids(
    compiled: CompiledGraph, k: int = 3, faithful_overlap: bool = True
) -> Tuple[List[Set[int]], int]:
    """k-clique percolation on a compiled graph, in dense-id space.

    Returns ``(communities as id sets, clique count)``.  Clique adjacency
    is discovered without a single pairwise comparison: two maximal
    cliques overlap in ``>= k - 1`` nodes **iff they share a
    (k-1)-subset** (the shared nodes all lie in both cliques, so any
    ``k - 1`` of them form a common subset; conversely a shared subset
    *is* ``k - 1`` common nodes).  So each clique emits its member
    (k-1)-subsets as rows of an int array, one lexsort groups equal
    subsets, every group links its cliques to the group's first owner,
    and the percolation components drop out of one
    ``connected_components`` call on the resulting link graph.  Against
    the dict path's union-find scan (quadratic in cliques when
    ``faithful_overlap``, pair-heavy even indexed) this is
    ``O(S log S)`` for ``S`` total subsets.

    ``faithful_overlap`` is accepted for interface parity but does not
    change the computation — the dense-id kernel *is* the full overlap
    relation, computed sparsely; the published quadratic scan only
    exists on the dict path, where its cost profile is the point.
    The components — and hence the communities — are identical to the
    dict path's for either flag value.
    """
    if k < 2:
        raise ConfigurationError(f"k must be >= 2, got {k}")
    del faithful_overlap  # identical relation either way; see docstring
    cliques = [
        members for members in maximal_cliques_ids(compiled) if len(members) >= k
    ]
    count = len(cliques)
    if not count:
        return [], 0

    # Emit every clique's (k-1)-subsets, batched by clique size so each
    # batch is one fancy-indexing broadcast: cliques of size s stack
    # into an (m, s) matrix, the C(s, k-1) combination templates index
    # it into (m, C, k-1), and a reshape flattens to subset rows.
    by_size: Dict[int, List[int]] = {}
    for index, members in enumerate(cliques):
        by_size.setdefault(len(members), []).append(index)
    subset_parts: List[np.ndarray] = []
    owner_parts: List[np.ndarray] = []
    for size, clique_indices in by_size.items():
        owners = np.asarray(clique_indices, dtype=np.int64)
        stacked = np.stack([cliques[i] for i in clique_indices])
        templates = np.fromiter(
            itertools.chain.from_iterable(
                itertools.combinations(range(size), k - 1)
            ),
            dtype=np.int64,
        ).reshape(-1, k - 1)
        subset_parts.append(stacked[:, templates].reshape(-1, k - 1))
        owner_parts.append(np.repeat(owners, len(templates)))
    subsets = np.concatenate(subset_parts)
    owner = np.concatenate(owner_parts)

    # Group equal subset rows with one lexsort (members are sorted
    # within each clique, so equal subsets are bytewise equal rows),
    # then link every owner to its group's first owner.
    order = np.lexsort(subsets.T[::-1])
    subsets = subsets[order]
    owner = owner[order]
    first_of_group = np.concatenate(
        ([True], np.any(subsets[1:] != subsets[:-1], axis=1))
    )
    representative = owner[first_of_group][np.cumsum(first_of_group) - 1]
    links = representative != owner
    link_graph = sp.csr_matrix(
        (
            np.ones(int(links.sum()), dtype=np.int8),
            (representative[links], owner[links]),
        ),
        shape=(count, count),
    )
    components, labels = sp.csgraph.connected_components(
        link_graph, directed=False
    )

    communities: List[Set[int]] = [set() for _ in range(components)]
    for index, members in enumerate(cliques):
        communities[labels[index]].update(members.tolist())
    return communities, count


def cfinder(graph: Graph, k: int = 3, faithful_overlap: bool = True) -> Cover:
    """CFinder with the paper's parameterisation; returns just the cover.

    .. deprecated::
        Legacy compatibility wrapper with unchanged outputs; new code
        should use ``get_detector("cfinder")`` (or ``"cpm"`` for the
        full parameter surface).  :func:`clique_percolation` remains the
        supported low-level API.
    """
    _warn_legacy("repro.cfinder()", "get_detector('cfinder')")
    return clique_percolation(graph, k=k, faithful_overlap=faithful_overlap).cover
