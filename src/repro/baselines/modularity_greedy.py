"""Newman's fast greedy modularity agglomeration (reference [11]).

The paper cites this as the archetypal *non-overlapping* method the
overlapping literature moves beyond.  We include it as the disjoint
reference point: EXPERIMENTS.md uses it to illustrate that a partitioning
algorithm structurally cannot express the daisy benchmark's ground truth,
which is the motivation of the whole paper.

Implementation: the classic CNM agglomeration.  Every node starts as its
own community; the merge joining the pair of *connected* communities with
the largest modularity gain

    dQ(i, j) = 2 (e_ij - a_i a_j)

is applied repeatedly until no merge has positive gain.  ``e_ij`` is the
fraction of edges between communities ``i`` and ``j``; ``a_i`` the
fraction of edge endpoints in ``i``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Hashable, Iterator, List, Set, Tuple

from ..communities import Partition
from ..errors import AlgorithmError
from ..graph import Graph
from ..graph.csr import CompiledGraph

__all__ = ["GreedyModularityResult", "greedy_modularity"]

Node = Hashable


@dataclass
class GreedyModularityResult:
    """Outcome of the greedy agglomeration.

    Attributes
    ----------
    partition:
        The final disjoint partition.
    modularity:
        Modularity ``Q`` of that partition.
    merges:
        Number of merges performed.
    elapsed_seconds:
        Wall-clock duration.
    """

    partition: Partition
    modularity: float
    merges: int
    elapsed_seconds: float


def _ranked_edges(graph) -> Iterator[Tuple[int, int]]:
    """Every edge as an insertion-rank pair ``(i, j)``, ``i < j``, in the
    canonical scan order: ``i`` ascending, then ``j`` ascending.

    This is exactly the sorted-CSR-row order, reproduced for dict graphs
    by sorting each (set-backed, arbitrarily ordered) neighbourhood — so
    the agglomeration below sees identical input, tie-breaks included,
    on either representation.
    """
    if isinstance(graph, CompiledGraph):
        indptr, indices = graph.indptr, graph.indices
        for i in range(graph.number_of_nodes()):
            for j in indices[indptr[i] : indptr[i + 1]].tolist():
                if j > i:
                    yield i, j
    else:
        index = {node: i for i, node in enumerate(graph.nodes())}
        for node, i in index.items():
            for j in sorted(index[neighbour] for neighbour in graph.neighbors(node)):
                if j > i:
                    yield i, j


def greedy_modularity(graph: Graph) -> GreedyModularityResult:
    """Run CNM greedy modularity maximisation on ``graph``.

    Accepts either representation — the label-keyed
    :class:`~repro.graph.Graph` or a dense-id
    :class:`~repro.graph.CompiledGraph` — and agglomerates in insertion-
    rank space with a canonical edge-scan order, so the resulting
    partition is identical across representations.

    Raises :class:`AlgorithmError` on edgeless graphs, where modularity
    is undefined.
    """
    m = graph.number_of_edges()
    if m == 0:
        raise AlgorithmError("greedy modularity needs at least one edge")
    start = time.perf_counter()

    # Everything below runs in rank space: community ids start as node
    # ranks, member sets hold ranks, and `order` translates back at the
    # end (for compiled input ranks *are* the node ids).
    order: List[Node] = list(graph.nodes())
    n = len(order)

    # Community id -> member rank set; start singleton.
    members: Dict[int, Set[int]] = {i: {i} for i in range(n)}

    # e[i][j]: fraction of edges between communities i and j (i != j);
    # a[i]: fraction of endpoint mass in community i.
    e: Dict[int, Dict[int, float]] = {i: {} for i in members}
    a: Dict[int, float] = {i: 0.0 for i in members}
    for i, j in _ranked_edges(graph):
        e[i][j] = e[i].get(j, 0.0) + 1.0 / (2.0 * m)
        e[j][i] = e[j].get(i, 0.0) + 1.0 / (2.0 * m)
    for i, node in enumerate(order):
        a[i] += graph.degree(node) / (2.0 * m)

    def q_current() -> float:
        total = 0.0
        for i in members:
            internal = e[i].get(i, 0.0)
            total += internal - a[i] * a[i]
        return total

    # Self-fractions e_ii start at 0 (no self loops in simple graphs).
    for i in e:
        e[i].setdefault(i, 0.0)

    merges = 0
    while len(members) > 1:
        best_gain = 0.0
        best_pair: Tuple[int, int] = (-1, -1)
        for i, row in e.items():
            for j, fraction in row.items():
                if j <= i:
                    continue
                gain = 2.0 * (fraction - a[i] * a[j])
                if gain > best_gain:
                    best_gain = gain
                    best_pair = (i, j)
        if best_pair == (-1, -1):
            break
        i, j = best_pair
        # Merge j into i.
        members[i] |= members.pop(j)
        row_j = e.pop(j)
        for k, fraction in row_j.items():
            if k == j:
                e[i][i] = e[i].get(i, 0.0) + fraction
                continue
            if k == i:
                # Edges between i and j become internal to i.  Both stored
                # copies (e[j][i] here and the e[i][j] popped below) must
                # land in e_ii, hence the factor 2 on this one visit.
                e[i][i] = e[i].get(i, 0.0) + 2.0 * fraction
                continue
            e[i][k] = e[i].get(k, 0.0) + fraction
            e[k][i] = e[k].get(i, 0.0) + fraction
            e[k].pop(j, None)
        e[i].pop(j, None)
        a[i] += a.pop(j)
        merges += 1

    partition = Partition(
        (order[rank] for rank in block) for block in members.values()
    )
    return GreedyModularityResult(
        partition=partition,
        modularity=q_current(),
        merges=merges,
        elapsed_seconds=time.perf_counter() - start,
    )
