"""Baseline community-detection algorithms the paper compares against.

* :mod:`~repro.baselines.lfk` — LFK local fitness optimisation (ref. [8]).
* :mod:`~repro.baselines.cpm` — CFinder / k-clique percolation (ref. [12]),
  built on :mod:`~repro.baselines.cliques` (Bron–Kerbosch).
* :mod:`~repro.baselines.modularity_greedy` — Newman's fast greedy
  partitioning (ref. [11]); the non-overlapping reference point.
"""

from .cliques import maximal_cliques, cliques_at_least, clique_number
from .cpm import CPMResult, clique_percolation, cfinder
from .lfk import LFKResult, natural_community, lfk
from .modularity_greedy import GreedyModularityResult, greedy_modularity

__all__ = [
    "maximal_cliques",
    "cliques_at_least",
    "clique_number",
    "CPMResult",
    "clique_percolation",
    "cfinder",
    "LFKResult",
    "natural_community",
    "lfk",
    "GreedyModularityResult",
    "greedy_modularity",
]
