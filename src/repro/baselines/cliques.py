"""Maximal clique enumeration: Bron–Kerbosch with pivoting.

CFinder "is based on retrieving all cliques of the graph; however, this
operation turns out to be prohibitive for large graphs" — that cost is
precisely what the paper's Figure 5 exhibits.  This module implements the
standard pivoted Bron–Kerbosch algorithm (Tomita et al. variant) so the
clique-percolation baseline is faithful, prohibitive cost included.
"""

from __future__ import annotations

from typing import FrozenSet, Hashable, Iterator, List, Set

from ..graph import Graph

__all__ = ["maximal_cliques", "cliques_at_least", "clique_number"]

Node = Hashable


def maximal_cliques(graph: Graph) -> Iterator[FrozenSet[Node]]:
    """Yield every maximal clique of ``graph`` exactly once.

    Iterative pivoted Bron–Kerbosch: the pivot is chosen as the vertex of
    ``P ∪ X`` with the most neighbours in ``P``, which prunes the search
    tree to the Moon–Moser bound.  Isolated nodes are reported as
    single-node cliques.
    """
    # Iterative formulation to dodge Python's recursion limit on large,
    # dense instances.  Works on any GraphBackend: dict graphs expose
    # neighbour *sets* directly (kept live, no copy); compiled graphs
    # return id arrays, materialised here as int sets once per node.
    adjacency = {}
    for node in graph.nodes():
        neighbours = graph.neighbors(node)
        if not isinstance(neighbours, (set, frozenset)):
            neighbours = {int(v) for v in neighbours}
        adjacency[node] = neighbours
    stack: List[tuple] = [
        (set(), set(adjacency), set())
    ]  # frames of (R, P, X)
    while stack:
        r, p, x = stack.pop()
        if not p and not x:
            if r:
                yield frozenset(r)
            continue
        # Pivot with the largest |N(pivot) ∩ P|.
        pivot = max(p | x, key=lambda node: len(adjacency[node] & p))
        candidates = p - adjacency[pivot]
        for node in list(candidates):
            neighbours = adjacency[node]
            stack.append((r | {node}, p & neighbours, x & neighbours))
            p = p - {node}
            x = x | {node}


def cliques_at_least(graph: Graph, k: int) -> List[FrozenSet[Node]]:
    """All maximal cliques with at least ``k`` nodes."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    return [clique for clique in maximal_cliques(graph) if len(clique) >= k]


def clique_number(graph: Graph) -> int:
    """The size of the largest clique (0 for the empty graph)."""
    return max((len(clique) for clique in maximal_cliques(graph)), default=0)
