"""Maximal clique enumeration: Bron–Kerbosch with pivoting.

CFinder "is based on retrieving all cliques of the graph; however, this
operation turns out to be prohibitive for large graphs" — that cost is
precisely what the paper's Figure 5 exhibits.  This module implements the
standard pivoted Bron–Kerbosch algorithm (Tomita et al. variant) so the
clique-percolation baseline is faithful, prohibitive cost included.

Two entry points share one enumeration core:

:func:`maximal_cliques`
    Label-keyed; runs on any graph backend.  Dict graphs expose their
    neighbour sets directly; compiled input materialises its sorted CSR
    rows as int sets in one pass through
    :meth:`~repro.graph.csr.CompiledGraph.neighbor_sets` — the compiled
    arrays are the only graph access, so the dict adjacency is never
    touched.
:func:`maximal_cliques_ids`
    Dense-id convenience wrapper for compiled graphs: the same
    enumeration, each clique delivered as a **sorted int32 array** ready
    for the vectorised percolation kernels in
    :mod:`repro.baselines.cpm`.

Python sets beat per-frame numpy kernels here by a wide margin: the
recursion frames are tiny (|P| tracks the local clique width, tens of
nodes), where set intersection runs in a few hundred nanoseconds while
any ndarray operation pays microseconds of dispatch overhead.  The
vectorisation win for the CSR path lives downstream, in the
clique-*overlap* stage, which is quadratic in the number of cliques
rather than linear like the enumeration.
"""

from __future__ import annotations

from typing import FrozenSet, Hashable, Iterator, List

import numpy as np

from ..graph import Graph
from ..graph.csr import CompiledGraph

__all__ = [
    "maximal_cliques",
    "maximal_cliques_ids",
    "cliques_at_least",
    "clique_number",
]

Node = Hashable


def maximal_cliques(graph: Graph) -> Iterator[FrozenSet[Node]]:
    """Yield every maximal clique of ``graph`` exactly once.

    Iterative pivoted Bron–Kerbosch: the pivot is chosen as the vertex of
    ``P ∪ X`` with the most neighbours in ``P``, which prunes the search
    tree to the Moon–Moser bound.  Isolated nodes are reported as
    single-node cliques.
    """
    # Iterative formulation to dodge Python's recursion limit on large,
    # dense instances.  Works on any GraphBackend: dict graphs expose
    # neighbour *sets* directly (kept live, no copy); compiled graphs
    # materialise all rows as int sets in one CSR pass.
    if isinstance(graph, CompiledGraph):
        adjacency = dict(enumerate(graph.neighbor_sets()))
    else:
        adjacency = {node: graph.neighbors(node) for node in graph.nodes()}
    stack: List[tuple] = [
        (set(), set(adjacency), set())
    ]  # frames of (R, P, X)
    while stack:
        r, p, x = stack.pop()
        if not p and not x:
            if r:
                yield frozenset(r)
            continue
        # Pivot with the largest |N(pivot) ∩ P|.
        pivot = max(p | x, key=lambda node: len(adjacency[node] & p))
        candidates = p - adjacency[pivot]
        for node in list(candidates):
            neighbours = adjacency[node]
            stack.append((r | {node}, p & neighbours, x & neighbours))
            p = p - {node}
            x = x | {node}


def maximal_cliques_ids(compiled: CompiledGraph) -> Iterator[np.ndarray]:
    """Yield every maximal clique of a compiled graph as a sorted id array.

    The dense-id entry point the CSR percolation path consumes: the
    enumeration core of :func:`maximal_cliques` over the compiled
    graph's rows, each clique packaged as a sorted ``int32`` array so
    downstream kernels can concatenate, reshape and lexsort them without
    further conversion.
    """
    for clique in maximal_cliques(compiled):
        members = np.fromiter(clique, dtype=np.int32, count=len(clique))
        members.sort()
        yield members


def cliques_at_least(graph: Graph, k: int) -> List[FrozenSet[Node]]:
    """All maximal cliques with at least ``k`` nodes."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    return [clique for clique in maximal_cliques(graph) if len(clique) >= k]


def clique_number(graph: Graph) -> int:
    """The size of the largest clique (0 for the empty graph)."""
    return max((len(clique) for clique in maximal_cliques(graph)), default=0)
