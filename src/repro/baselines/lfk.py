"""LFK: local fitness optimisation (Lancichinetti–Fortunato–Kertész, [8]).

The paper's strongest baseline.  LFK grows the *natural community* of a
node by maximising the fitness

    f(S) = k_in(S) / (k_in(S) + k_out(S))^alpha

where ``k_in`` is twice the internal edge count, ``k_out`` the number of
boundary half-edges, and ``alpha`` a resolution parameter (the paper uses
"the standard parameter alpha = 1").

Natural-community procedure (following [8] §"The algorithm"):

A. among the frontier nodes, add the one whose inclusion yields the
   largest fitness, *if* that exceeds the current fitness;
B. after each addition, repeatedly remove any node whose exclusion
   increases the fitness (nodes with "negative fitness contribution"),
   rechecking from scratch after every removal;
C. stop when step A cannot improve the fitness.

The cover is produced by the covering loop of [8]: pick an uncovered
node, compute its natural community, mark its members covered, repeat
until no node is uncovered.  Overlap arises because a natural community
freely includes already-covered nodes.

Determinism: every scan (the addition argmax of step A, the removal
sweep of step B) enumerates candidates in **insertion-rank order**, so
the trajectory is a pure function of the graph's construction order and
the seed — independent of Python's set iteration order, and identical
whether the algorithm runs on the label-keyed :class:`~repro.graph.Graph`
or the dense-id :class:`~repro.graph.CompiledGraph` (where ids *are*
ranks).  That shared canonical order is what lets the detector registry
guarantee byte-identical covers across graph representations.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Set, Tuple

import numpy as np

from .._rng import SeedLike, as_random
from ..communities import Cover
from ..detection import _warn_legacy
from ..errors import ConfigurationError
from ..graph import Graph
from ..graph.csr import CompiledGraph
from ..core.fitness import LFKFitness
from ..core.state import ArrayCommunityState, CommunityState

__all__ = ["LFKResult", "natural_community", "lfk"]

Node = Hashable

_EPS = 1e-12


@dataclass
class LFKResult:
    """Outcome of an LFK run.

    Attributes
    ----------
    cover:
        The overlapping cover found.
    alpha:
        Resolution parameter used.
    natural_communities:
        How many natural-community computations were performed.
    elapsed_seconds:
        Wall-clock duration.
    """

    cover: Cover
    alpha: float
    natural_communities: int
    elapsed_seconds: float

    def __repr__(self) -> str:
        return (
            f"LFKResult(communities={len(self.cover)}, alpha={self.alpha}, "
            f"elapsed={self.elapsed_seconds:.3f}s)"
        )


def natural_community(
    graph: Graph,
    node: Node,
    alpha: float = 1.0,
    max_steps: Optional[int] = None,
    rank: Optional[Dict[Node, int]] = None,
) -> Set[Node]:
    """The natural community of ``node`` under the LFK fitness.

    Deterministic: candidates are scanned in insertion-rank order, so
    ties in the argmax resolve to the lowest-rank candidate — the same
    canonical rule the OCA greedy kernels use, making the result
    identical across graph representations.  ``max_steps`` bounds the
    total accepted moves (default ``4n + 16``).  ``rank`` is the shared
    node -> insertion-rank map; it is built from the graph (O(n)) when
    omitted, so hot loops should pass the covering loop's copy.
    """
    fitness = LFKFitness(alpha=alpha)
    if rank is None:
        rank = {n: i for i, n in enumerate(graph.nodes())}
    state = CommunityState(graph, [node], rank=rank)
    if max_steps is None:
        max_steps = 4 * graph.number_of_nodes() + 16
    steps = 0
    while steps < max_steps:
        # Step A: best addition, scanned in rank order.
        current = state.value(fitness)
        best_node = None
        best_value = current
        for candidate in sorted(state.frontier, key=rank.__getitem__):
            value = state.value_if_added(candidate, fitness)
            if value > best_value + _EPS:
                best_value = value
                best_node = candidate
        if best_node is None:
            break
        state.add(best_node)
        steps += 1
        # Step B: purge nodes whose removal improves fitness.  The seed
        # node itself may be purged — [8] allows it; the community is
        # still anchored to the seed's region.
        removed = True
        while removed and steps < max_steps and state.size > 1:
            removed = False
            current = state.value(fitness)
            for member in sorted(state.members, key=rank.__getitem__):
                if state.size <= 1:
                    break
                value = state.value_if_removed(member, fitness)
                if value > current + _EPS:
                    state.remove(member)
                    steps += 1
                    current = value
                    removed = True
    return set(state.members)


# ----------------------------------------------------------------------
# The CSR-native path (dense-id space, vectorised scans)
# ----------------------------------------------------------------------
def _lfk_values(
    alpha: float, internal_edges: np.ndarray, volumes: np.ndarray
) -> np.ndarray:
    """Vectorised :meth:`~repro.core.fitness.LFKFitness.value` over int64
    stat arrays.

    Mirrors the scalar arithmetic operation for operation: the stats are
    exact integers far below 2**53, each float64 intermediate is exact,
    and numpy's float64 power resolves to the same libm ``pow`` the
    scalar ``**`` calls — so every element is bit-identical to the dict
    path's fitness value.  The acceptance matrix pins this.
    """
    k_in = 2.0 * internal_edges
    k_out = (volumes - 2 * internal_edges).astype(np.float64)
    total = k_in + k_out
    positive = total > 0.0
    safe = np.where(positive, total, 1.0)
    return np.where(positive, k_in / safe**alpha, 0.0)


def _natural_community_ids(
    compiled: CompiledGraph,
    node: int,
    alpha: float,
    max_steps: Optional[int],
) -> np.ndarray:
    """:func:`natural_community` on dense ids, with vectorised scans.

    Both scans replicate the dict path move for move.  Step A computes
    every frontier candidate's fitness in one segment-reduced vector
    expression, prefilters the improvers (any candidate the dict chain
    could accept satisfies ``value > current + eps``, since its running
    best only rises), then replays the dict path's eps-chain over that
    short survivor list — ascending id order *is* insertion-rank order.
    Step B removes the first improving member of the rank-ordered
    snapshot, recomputing the remaining tail's values after each
    removal, exactly like the dict sweep.
    """
    fitness = LFKFitness(alpha=alpha)
    state = ArrayCommunityState(compiled, [node])
    degrees = compiled.degrees
    if max_steps is None:
        max_steps = 4 * compiled.number_of_nodes() + 16
    steps = 0
    while steps < max_steps:
        # Step A: best addition (eps-chain over the vectorised values).
        current = state.value(fitness)
        frontier = state.frontier_id_array()
        best_node = None
        if frontier.size:
            gains = state.frontier_gain_array(frontier).astype(np.int64)
            values = _lfk_values(
                alpha,
                state.internal_edges + gains,
                state.volume + degrees[frontier].astype(np.int64),
            )
            best_value = current
            for position in np.flatnonzero(values > current + _EPS):
                value = float(values[position])
                if value > best_value + _EPS:
                    best_value = value
                    best_node = int(frontier[position])
        if best_node is None:
            break
        state.add(best_node)
        steps += 1
        # Step B: purge nodes whose removal improves fitness.
        removed = True
        while removed and steps < max_steps and state.size > 1:
            removed = False
            current = state.value(fitness)
            snapshot = state.member_id_array()
            position = 0
            while position < len(snapshot) and state.size > 1:
                tail = snapshot[position:]
                losses = state.internal_degree_array(tail).astype(np.int64)
                values = _lfk_values(
                    alpha,
                    state.internal_edges - losses,
                    state.volume - degrees[tail].astype(np.int64),
                )
                better = np.flatnonzero(values > current + _EPS)
                if better.size == 0:
                    break
                index = int(better[0])
                state.remove(int(tail[index]))
                steps += 1
                current = float(values[index])
                removed = True
                position += index + 1
    return state.member_id_array()


def _lfk_compiled(
    compiled: CompiledGraph,
    alpha: float = 1.0,
    seed: SeedLike = None,
    max_steps_per_community: Optional[int] = None,
) -> Tuple[List[Set[int]], int]:
    """The LFK covering loop in dense-id space.

    Returns ``(communities-as-id-sets, natural-community count)``.  The
    shuffle consumes the identical rng sequence as :func:`_lfk` (it
    depends only on the list length), and dense ids are insertion ranks,
    so the t-th seed here is the id of the t-th dict-path seed — the
    cover matches the dict path's member for member.
    """
    if alpha <= 0.0:
        raise ConfigurationError(f"alpha must be positive, got {alpha}")
    rng = as_random(seed)
    n = compiled.number_of_nodes()
    order = list(range(n))
    rng.shuffle(order)
    covered = np.zeros(n, dtype=bool)
    communities: List[Set[int]] = []
    computed = 0
    for node in order:
        if covered[node]:
            continue
        members = _natural_community_ids(
            compiled, node, alpha, max_steps_per_community
        )
        computed += 1
        community = set(int(member) for member in members)
        # The growth may purge its own seed; anchor it anyway so the
        # covering loop terminates with full coverage (mirrors _lfk).
        community.add(node)
        communities.append(community)
        covered[members] = True
        covered[node] = True
    return communities, computed


def _lfk(
    graph: Graph,
    alpha: float = 1.0,
    seed: SeedLike = None,
    max_steps_per_community: Optional[int] = None,
) -> LFKResult:
    """The LFK covering loop (implementation behind :func:`lfk` and the
    ``lfk`` detector).

    Seeds are drawn uniformly among uncovered nodes (shuffled once with
    ``seed``), as in [8].  Every node ends up covered: a node whose
    natural community collapses around others still belongs to the
    community computed *from* it, because the final community always
    contains at least the last surviving member — if the seed itself was
    purged, it is re-attributed to the community that purged it only when
    some later community includes it; otherwise it forms a singleton.
    """
    if alpha <= 0.0:
        raise ConfigurationError(f"alpha must be positive, got {alpha}")
    start = time.perf_counter()
    rng = as_random(seed)
    order: List[Node] = list(graph.nodes())
    rank = {node: i for i, node in enumerate(order)}
    rng.shuffle(order)
    covered: Set[Node] = set()
    communities: List[Set[Node]] = []
    computed = 0
    for node in order:
        if node in covered:
            continue
        community = natural_community(
            graph, node, alpha=alpha, max_steps=max_steps_per_community,
            rank=rank,
        )
        computed += 1
        if node not in community:
            # The growth purged its own seed; anchor the seed anyway so
            # the covering loop terminates with full coverage.
            community.add(node)
        communities.append(community)
        covered |= community
    return LFKResult(
        cover=Cover(communities),
        alpha=alpha,
        natural_communities=computed,
        elapsed_seconds=time.perf_counter() - start,
    )


def lfk(
    graph: Graph,
    alpha: float = 1.0,
    seed: SeedLike = None,
    max_steps_per_community: Optional[int] = None,
) -> LFKResult:
    """Run the full LFK covering loop on ``graph``.

    .. deprecated::
        Legacy compatibility wrapper with unchanged outputs; new code
        should use ``get_detector("lfk")`` or a
        :class:`~repro.detectors.GraphSession`.
    """
    _warn_legacy("repro.lfk()", "get_detector('lfk')")
    return _lfk(
        graph,
        alpha=alpha,
        seed=seed,
        max_steps_per_community=max_steps_per_community,
    )
