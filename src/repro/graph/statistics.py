"""Descriptive statistics of graphs.

Used by the dataset-inventory experiment (Table I of the paper) and by the
generator self-checks: the LFR generator, for example, verifies that the
realised mean degree and mixing parameter land near their targets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from .graph import Graph, Node
from .traversal import connected_components

__all__ = [
    "GraphSummary",
    "summarize",
    "density",
    "average_degree",
    "degree_histogram",
    "local_clustering",
    "average_clustering",
    "triangle_count",
]


@dataclass(frozen=True)
class GraphSummary:
    """A compact structural fingerprint of a graph."""

    nodes: int
    edges: int
    min_degree: int
    max_degree: int
    average_degree: float
    density: float
    components: int
    largest_component: int

    def as_row(self) -> Dict[str, object]:
        """The summary as a flat dict — one row of Table I."""
        return {
            "nodes": self.nodes,
            "edges": self.edges,
            "min_degree": self.min_degree,
            "max_degree": self.max_degree,
            "average_degree": round(self.average_degree, 3),
            "density": round(self.density, 6),
            "components": self.components,
            "largest_component": self.largest_component,
        }


def summarize(graph: Graph) -> GraphSummary:
    """Compute a :class:`GraphSummary` for ``graph``."""
    degrees = [graph.degree(node) for node in graph.nodes()]
    components = connected_components(graph)
    n = graph.number_of_nodes()
    return GraphSummary(
        nodes=n,
        edges=graph.number_of_edges(),
        min_degree=min(degrees) if degrees else 0,
        max_degree=max(degrees) if degrees else 0,
        average_degree=average_degree(graph),
        density=density(graph),
        components=len(components),
        largest_component=len(components[0]) if components else 0,
    )


def density(graph: Graph) -> float:
    """Edge density ``2m / (n (n-1))``; zero for graphs with < 2 nodes."""
    n = graph.number_of_nodes()
    if n < 2:
        return 0.0
    return 2.0 * graph.number_of_edges() / (n * (n - 1))


def average_degree(graph: Graph) -> float:
    """Mean degree ``2m / n``; zero for the empty graph."""
    n = graph.number_of_nodes()
    if n == 0:
        return 0.0
    return 2.0 * graph.number_of_edges() / n


def degree_histogram(graph: Graph) -> Dict[int, int]:
    """Map each occurring degree to its node count."""
    histogram: Dict[int, int] = {}
    for node in graph.nodes():
        d = graph.degree(node)
        histogram[d] = histogram.get(d, 0) + 1
    return histogram


def local_clustering(graph: Graph, node: Node) -> float:
    """Local clustering coefficient of ``node``.

    Fraction of neighbour pairs that are themselves connected; zero for
    degree < 2.
    """
    neighbours = list(graph.neighbors(node))
    k = len(neighbours)
    if k < 2:
        return 0.0
    links = 0
    neighbour_set = set(neighbours)
    for u in neighbours:
        links += sum(1 for v in graph.neighbors(u) if v in neighbour_set)
    # Each neighbour-neighbour edge counted twice in the loop above.
    return links / (k * (k - 1))


def average_clustering(graph: Graph) -> float:
    """Mean of :func:`local_clustering` over all nodes; zero when empty."""
    n = graph.number_of_nodes()
    if n == 0:
        return 0.0
    return sum(local_clustering(graph, node) for node in graph.nodes()) / n


def triangle_count(graph: Graph) -> int:
    """Total number of triangles in the graph.

    Uses the standard order-by-id trick so each triangle is counted once.
    """
    index = graph.node_index()
    triangles = 0
    for u in graph.nodes():
        u_rank = index[u]
        higher = {v for v in graph.neighbors(u) if index[v] > u_rank}
        for v in higher:
            v_rank = index[v]
            triangles += sum(
                1 for w in graph.neighbors(v) if index[w] > v_rank and w in higher
            )
    return triangles
