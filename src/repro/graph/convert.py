"""Interoperability with third-party graph representations.

The library is self-contained (its algorithms run on
:class:`repro.graph.Graph`), but users arriving from the scientific-Python
ecosystem usually hold a :mod:`networkx` graph or a SciPy sparse matrix.
These converters are lossless for simple undirected graphs; anything the
native structure cannot express (self-loops, directedness, multi-edges) is
normalised with the documented policy rather than silently corrupted.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable

import numpy as np
import scipy.sparse as sp

from ..errors import GraphError
from .graph import Graph

__all__ = [
    "from_networkx",
    "to_networkx",
    "from_scipy_sparse",
    "to_scipy_sparse",
    "from_edge_array",
]


def from_networkx(nx_graph: Any) -> Graph:
    """Convert a networkx graph.

    Directed graphs are symmetrised; multigraph parallel edges collapse;
    self-loops are dropped.  Node labels are preserved.
    """
    graph = Graph()
    for node in nx_graph.nodes():
        graph.add_node(node)
    for u, v in nx_graph.edges():
        if u != v:
            graph.add_edge(u, v)
    return graph


def to_networkx(graph: Graph) -> Any:
    """Convert to :class:`networkx.Graph` (imported lazily)."""
    import networkx as nx

    nx_graph = nx.Graph()
    nx_graph.add_nodes_from(graph.nodes())
    nx_graph.add_edges_from(graph.edges())
    return nx_graph


def from_scipy_sparse(matrix: sp.spmatrix) -> Graph:
    """Convert a square sparse matrix interpreted as an adjacency matrix.

    Nonzero ``(i, j)`` entries become edges; the matrix is symmetrised and
    the diagonal ignored.  Node labels are ``0..n-1``.
    """
    matrix = sp.coo_matrix(matrix)
    if matrix.shape[0] != matrix.shape[1]:
        raise GraphError(f"adjacency matrix must be square, got {matrix.shape}")
    graph = Graph(nodes=range(matrix.shape[0]))
    for i, j in zip(matrix.row, matrix.col):
        if i != j:
            graph.add_edge(int(i), int(j))
    return graph


def to_scipy_sparse(graph: Graph) -> sp.csr_matrix:
    """Convert to a CSR adjacency matrix in node insertion order."""
    from .matrices import adjacency_matrix

    return adjacency_matrix(graph)


def from_edge_array(edges: np.ndarray) -> Graph:
    """Convert an ``(m, 2)`` integer array of edges.

    Self-loops are dropped and duplicates merged, matching the behaviour
    of :class:`repro.graph.GraphBuilder` with default policies.
    """
    edges = np.asarray(edges)
    if edges.ndim != 2 or edges.shape[1] != 2:
        raise GraphError(f"edge array must have shape (m, 2), got {edges.shape}")
    graph = Graph()
    for u, v in edges:
        if u != v:
            graph.add_edge(int(u), int(v))
    return graph
