"""Incremental graph construction with configurable input hygiene.

Raw edge lists scraped from real datasets (the paper's Wikipedia graph is
one) routinely contain duplicate edges, self-loops, and inconsistent node
labels.  :class:`GraphBuilder` centralises the clean-up policies so the
parsers in :mod:`repro.graph.io` and the generators stay small.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional

from ..errors import GraphError
from .graph import Edge, Graph, Node

__all__ = ["GraphBuilder", "BuildReport"]


@dataclass
class BuildReport:
    """Statistics accumulated while building a graph.

    Attributes
    ----------
    edges_seen:
        Total ``(u, v)`` pairs offered to the builder.
    edges_added:
        Pairs that became new edges.
    duplicates:
        Pairs that repeated an existing edge (silently merged).
    self_loops:
        Pairs with ``u == v`` (dropped or rejected per policy).
    """

    edges_seen: int = 0
    edges_added: int = 0
    duplicates: int = 0
    self_loops: int = 0

    def as_dict(self) -> Dict[str, int]:
        """The report as a plain dictionary (handy for logging)."""
        return {
            "edges_seen": self.edges_seen,
            "edges_added": self.edges_added,
            "duplicates": self.duplicates,
            "self_loops": self.self_loops,
        }


class GraphBuilder:
    """Build a :class:`Graph` from possibly-dirty edge streams.

    Parameters
    ----------
    drop_self_loops:
        When ``True`` (default) self-loops are counted and skipped; when
        ``False`` they raise :class:`GraphError` immediately.
    relabel:
        When ``True``, node labels are replaced by dense integers in first-
        appearance order; the mapping is available as :attr:`labels`.

    Examples
    --------
    >>> builder = GraphBuilder(relabel=True)
    >>> builder.add_edges([("a", "b"), ("b", "a"), ("b", "b")])
    >>> graph = builder.build()
    >>> graph.number_of_edges(), builder.report.duplicates
    (1, 1)
    """

    def __init__(self, drop_self_loops: bool = True, relabel: bool = False) -> None:
        self._graph = Graph()
        self._drop_self_loops = drop_self_loops
        self._relabel = relabel
        self._labels: Dict[Node, int] = {}
        self.report = BuildReport()

    # ------------------------------------------------------------------
    @property
    def labels(self) -> Dict[Node, int]:
        """Original label -> dense id mapping (empty unless ``relabel``)."""
        return dict(self._labels)

    def _canonical(self, node: Node) -> Node:
        if not self._relabel:
            return node
        dense = self._labels.get(node)
        if dense is None:
            dense = len(self._labels)
            self._labels[node] = dense
        return dense

    # ------------------------------------------------------------------
    def add_node(self, node: Node) -> "GraphBuilder":
        """Insert a (possibly isolated) node; returns ``self`` for chaining."""
        self._graph.add_node(self._canonical(node))
        return self

    def add_edge(self, u: Node, v: Node) -> "GraphBuilder":
        """Offer one edge to the builder; returns ``self`` for chaining."""
        self.report.edges_seen += 1
        if u == v:
            if not self._drop_self_loops:
                raise GraphError(f"self-loop on {u!r} rejected by builder")
            self.report.self_loops += 1
            return self
        added = self._graph.add_edge(self._canonical(u), self._canonical(v))
        if added:
            self.report.edges_added += 1
        else:
            self.report.duplicates += 1
        return self

    def add_edges(self, edges: Iterable[Edge]) -> "GraphBuilder":
        """Offer every edge of ``edges``; returns ``self`` for chaining."""
        for u, v in edges:
            self.add_edge(u, v)
        return self

    def build(self) -> Graph:
        """Return the constructed graph.

        The builder may keep being used afterwards; the same graph object
        is returned each time.
        """
        return self._graph
