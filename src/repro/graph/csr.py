"""Compiled CSR graph representation: the integer-id hot path.

The paper runs OCA on graphs "managed with C++ structures created ad hoc
for this problem".  :class:`~repro.graph.Graph` is the mutable,
label-keyed construction API; this module is the performance substrate
behind it: :func:`compile_graph` freezes a graph into a
:class:`CompiledGraph` — three int32 numpy arrays in compressed sparse
row (CSR) layout plus a label↔dense-id mapping — on which the greedy
search runs entirely in integer-id space with vectorised neighbourhood
updates.

Why a second representation
---------------------------
* **Hot-path speed.**  The dict-of-sets substrate pays a hash lookup and
  a pointer chase per neighbour per greedy event.  The CSR arrays turn a
  whole neighbourhood update into a handful of numpy fancy-indexing
  operations (see :class:`~repro.core.state.ArrayCommunityState`).
* **Compact worker shipping.**  A pickled dict-of-sets graph is large
  and slow to serialise; the CSR arrays pickle as raw buffers, so the
  process backend ships a fraction of the bytes, once per worker,
  through the pool initializer.
* **Determinism.**  Dense ids are insertion ranks, a canonical total
  order shared with the dict path's rank-based tie-breaking, so covers
  are bit-identical between representations.

The compiled form is **immutable**: it is built once per graph (cached
on the :class:`Graph` instance and invalidated by any mutation) and
never written to.  Row neighbour lists are sorted by dense id, which
makes neighbour arrays canonical regardless of construction order.
"""

from __future__ import annotations

from typing import (
    Dict,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Protocol,
    Sequence,
    Set,
    runtime_checkable,
)

import numpy as np

from ..errors import GraphError, NodeNotFoundError
from .graph import Graph, Node

__all__ = [
    "GraphBackend",
    "CompiledGraph",
    "compile_graph",
    "attach_compiled",
    "in_sorted",
    "intersect_sorted",
    "intersect_size_sorted",
    "setdiff_sorted",
    "segment_sums",
]

#: CSR arrays are int32 (the ISSUE/paper scale fits comfortably); this is
#: the hard ceiling on node count and directed edge-endpoint count.
_INT32_MAX = np.iinfo(np.int32).max


@runtime_checkable
class GraphBackend(Protocol):
    """The read-only protocol the OCA hot path needs from a graph.

    Both the mutable :class:`~repro.graph.Graph` (label-keyed) and the
    immutable :class:`CompiledGraph` (dense-id-keyed) satisfy it; the
    greedy kernels in :mod:`repro.core` are written against this surface
    only, so a representation is an implementation detail selected by
    configuration, never a semantic choice.
    """

    def number_of_nodes(self) -> int:
        ...

    def number_of_edges(self) -> int:
        ...

    def has_node(self, node: Hashable) -> bool:
        ...

    def degree(self, node: Hashable) -> int:
        ...

    def neighbors(self, node: Hashable) -> Iterable[Hashable]:
        ...


class CompiledGraph:
    """An immutable CSR snapshot of a graph, keyed by dense integer ids.

    Attributes
    ----------
    indptr:
        int32 array of length ``n + 1``; node ``i``'s neighbours live in
        ``indices[indptr[i]:indptr[i + 1]]``.
    indices:
        int32 array of length ``2m``: the flattened, per-row-sorted
        neighbour ids.
    degrees:
        int32 array of length ``n``; ``degrees[i] == indptr[i+1] - indptr[i]``.

    Dense ids are insertion ranks: id ``i`` is the ``i``-th node in the
    source graph's insertion order, exactly the order
    :meth:`repro.graph.Graph.node_index` reports.  Original labels are
    recovered through :meth:`label_of` / :meth:`labels_of`; when the
    source labels already are ``0..n-1`` in order, translation is the
    identity and costs nothing (``identity_labels``).
    """

    __slots__ = (
        "indptr",
        "indices",
        "degrees",
        "_labels",
        "_index",
        "_num_edges",
        "spectral_cache",
        "_identity",
        "_fingerprint",
        "_retained",
    )

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        degrees: np.ndarray,
        labels: Optional[List[Node]],
    ) -> None:
        self.indptr = indptr
        self.indices = indices
        self.degrees = degrees
        self._labels = labels  # None == identity labels (0..n-1)
        self._index: Optional[Dict[Node, int]] = None
        self._num_edges = len(indices) // 2
        # Spectral results keyed by their tolerance parameters (see
        # repro.core.vector_space.shared_admissible_c).  Living on the
        # compiled form gives the cache the same lifetime: any graph
        # mutation drops the compiled form and the cached values with it.
        self.spectral_cache: Dict[tuple, float] = {}
        self._identity: Optional["CompiledGraph"] = None
        # Content-hash cache for the serving layer (see
        # repro.serving.fingerprint); None until first requested.
        self._fingerprint: Optional[str] = None
        # When the arrays alias shared-memory buffers (repro.graph.shm),
        # the mapping handles ride here so the pages outlive the export.
        self._retained: tuple = ()

    @classmethod
    def from_shared(
        cls,
        indptr: np.ndarray,
        indices: np.ndarray,
        degrees: np.ndarray,
        labels: Optional[List[Node]],
        spectral: Optional[Dict[tuple, float]] = None,
        retained: tuple = (),
    ) -> "CompiledGraph":
        """Wrap already-mapped (shared-memory) buffers zero-copy.

        ``retained`` keeps the underlying mapping handles alive for the
        graph's lifetime; ``spectral`` seeds the spectral cache so the
        attaching worker skips the power-method solve, exactly like the
        pickle path ships it.
        """
        compiled = cls(
            indptr=indptr, indices=indices, degrees=degrees, labels=labels
        )
        if spectral:
            compiled.spectral_cache.update(spectral)
        compiled._retained = retained
        return compiled

    # ------------------------------------------------------------------
    # Graph protocol (integer-id keyed)
    # ------------------------------------------------------------------
    def number_of_nodes(self) -> int:
        """The node count ``n``."""
        return len(self.degrees)

    def number_of_edges(self) -> int:
        """The edge count ``m``."""
        return self._num_edges

    def has_node(self, node: int) -> bool:
        """Whether ``node`` is a valid dense id."""
        return isinstance(node, (int, np.integer)) and 0 <= node < len(self.degrees)

    def degree(self, node: int) -> int:
        """The degree of dense id ``node``."""
        if not self.has_node(node):
            raise NodeNotFoundError(node)
        return int(self.degrees[node])

    def neighbors(self, node: int) -> np.ndarray:
        """The neighbour ids of ``node`` as a read-only array view."""
        if not self.has_node(node):
            raise NodeNotFoundError(node)
        return self.indices[self.indptr[node] : self.indptr[node + 1]]

    def nodes(self) -> Iterator[int]:
        """Iterate over dense ids in order."""
        return iter(range(len(self.degrees)))

    def has_edge(self, u: int, v: int) -> bool:
        """Whether ids ``u`` and ``v`` are adjacent (binary search, O(log d))."""
        row = self.neighbors(u)
        position = int(np.searchsorted(row, v))
        return position < len(row) and int(row[position]) == int(v)

    def __len__(self) -> int:
        return len(self.degrees)

    def __iter__(self) -> Iterator[int]:
        return self.nodes()

    def __contains__(self, node: object) -> bool:
        return self.has_node(node)  # type: ignore[arg-type]

    # ------------------------------------------------------------------
    # Label translation (the cover boundary)
    # ------------------------------------------------------------------
    @property
    def identity_labels(self) -> bool:
        """True when labels are exactly ``0..n-1`` in insertion order."""
        return self._labels is None

    @property
    def labels(self) -> List[Node]:
        """All original labels, indexed by dense id."""
        if self._labels is None:
            return list(range(len(self.degrees)))
        return list(self._labels)

    @property
    def index(self) -> Dict[Node, int]:
        """Original label -> dense id (built lazily, not shipped in pickles)."""
        if self._index is None:
            if self._labels is None:
                self._index = {i: i for i in range(len(self.degrees))}
            else:
                self._index = {label: i for i, label in enumerate(self._labels)}
        return self._index

    def label_of(self, node_id: int) -> Node:
        """The original label of a dense id."""
        if self._labels is None:
            return int(node_id)
        return self._labels[node_id]

    def id_of(self, label: Node) -> int:
        """The dense id of an original label (KeyError if absent)."""
        if self._labels is None:
            node_id = int(label)  # type: ignore[arg-type]
            if not 0 <= node_id < len(self.degrees):
                raise KeyError(label)
            return node_id
        return self.index[label]

    def ids_of(self, labels: Iterable[Node]) -> List[int]:
        """Translate a label collection to dense ids."""
        if self._labels is None:
            return [int(label) for label in labels]  # type: ignore[arg-type]
        index = self.index
        return [index[label] for label in labels]

    def labels_of(self, ids: Iterable[int]) -> List[Node]:
        """Translate dense ids back to original labels."""
        if self._labels is None:
            return [int(node_id) for node_id in ids]
        labels = self._labels
        return [labels[node_id] for node_id in ids]

    def as_identity(self) -> "CompiledGraph":
        """This graph with labels erased to the dense ids ``0..n-1``.

        The identity view shares the CSR arrays (no copy) and is cached
        on the instance, so detectors that run non-integer-labelled
        compiled graphs in id space keep hitting one object — and the
        spectral cache that lives on it — across calls.
        """
        if self._labels is None:
            return self
        if self._identity is None:
            self._identity = CompiledGraph(
                indptr=self.indptr,
                indices=self.indices,
                degrees=self.degrees,
                labels=None,
            )
            # The view aliases the same buffers, so it must keep any
            # shared-memory mappings alive just like its parent does.
            self._identity._retained = self._retained
        return self._identity

    # ------------------------------------------------------------------
    # Shared baseline primitives (segment reductions over the CSR rows)
    # ------------------------------------------------------------------
    def volume_of(self, ids) -> int:
        """Sum of degrees over a collection of dense ids (the volume).

        One fancy-index + reduction; the per-node counterpart of the
        running ``volume`` aggregate the community states maintain.
        """
        ids = np.asarray(ids, dtype=np.int64)
        if ids.size == 0:
            return 0
        return int(self.degrees[ids].sum())

    def neighbor_mask_counts(self, mask: np.ndarray) -> np.ndarray:
        """Per-node count of neighbours where ``mask`` is True.

        One segment reduction over the whole CSR index array: for every
        node ``i`` at once, ``|N(i) ∩ {v : mask[v]}|`` — the bulk
        counterpart of querying one community membership mask node by
        node.
        """
        return segment_sums(mask[self.indices], self.indptr)

    def neighbor_sets(self) -> List[Set[int]]:
        """Materialise every row as a Python int set (O(n + 2m)).

        The bridge for set-based algorithms (e.g. Bron–Kerbosch's dict
        path) running on a compiled graph: one pass over the CSR arrays
        instead of per-node ``neighbors()`` calls and conversions.  Not
        cached — callers that need it across calls should keep the list.
        """
        indptr, indices = self.indptr, self.indices
        flat = indices.tolist()
        return [
            set(flat[indptr[i] : indptr[i + 1]])
            for i in range(len(self.degrees))
        ]

    # ------------------------------------------------------------------
    def nbytes(self) -> int:
        """Memory footprint of the three CSR arrays, in bytes."""
        return int(self.indptr.nbytes + self.indices.nbytes + self.degrees.nbytes)

    def __getstate__(self):
        # The label->id index is derived state: rebuilt lazily on first
        # use, never shipped, keeping worker payloads to the arrays plus
        # (for non-integer-labelled graphs) the label list.  The spectral
        # cache *does* travel — a handful of floats that save every
        # receiving worker a full power-method run.
        return (
            self.indptr,
            self.indices,
            self.degrees,
            self._labels,
            dict(self.spectral_cache),
        )

    def __setstate__(self, state) -> None:
        if len(state) == 4:  # pickles from before the spectral cache
            state = (*state, {})
        (
            self.indptr,
            self.indices,
            self.degrees,
            self._labels,
            self.spectral_cache,
        ) = state
        # numpy does not preserve the WRITEABLE flag across pickling;
        # re-lock so unpickled copies keep the immutability guarantee.
        for array in (self.indptr, self.indices, self.degrees):
            array.setflags(write=False)
        self._index = None
        self._num_edges = len(self.indices) // 2
        self._identity = None
        self._fingerprint = None
        # Pickling materialises the buffers, so an unpickled copy owns
        # plain arrays and retains no shared-memory mappings.
        self._retained = ()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CompiledGraph):
            return NotImplemented
        return (
            np.array_equal(self.indptr, other.indptr)
            and np.array_equal(self.indices, other.indices)
            and self.labels == other.labels
        )

    def __repr__(self) -> str:
        return (
            f"CompiledGraph(n={self.number_of_nodes()}, "
            f"m={self.number_of_edges()}, nbytes={self.nbytes()})"
        )


def _build_csr(graph) -> CompiledGraph:
    """Compile any read-only graph into CSR arrays (no caching)."""
    order: List[Node] = list(graph.nodes())
    n = len(order)
    index = {node: i for i, node in enumerate(order)}
    if n > _INT32_MAX:
        raise GraphError(f"graph too large for int32 CSR ids: n={n}")

    degrees = np.fromiter(
        (len(graph.neighbors(node)) for node in order),
        dtype=np.int64,
        count=n,
    )
    total = int(degrees.sum())
    if total > _INT32_MAX:
        raise GraphError(
            f"graph too large for int32 CSR offsets: 2m={total}"
        )
    # The array community state parks dead scores at +-2**30 and lets
    # them drift by at most one per incident greedy event, so a degree
    # approaching 2**29 could push a parked score across zero.
    if n and int(degrees.max()) >= 2**29:
        raise GraphError(
            f"graph too dense for the int32 CSR hot path: "
            f"max degree {int(degrees.max())} >= 2**29"
        )
    indptr = np.zeros(n + 1, dtype=np.int32)
    indptr[1:] = np.cumsum(degrees)

    indices = np.empty(total, dtype=np.int32)
    for i, node in enumerate(order):
        start = indptr[i]
        row = indices[start : indptr[i + 1]]
        position = 0
        for neighbour in graph.neighbors(node):
            row[position] = index[neighbour]
            position += 1
        row.sort()

    identity = all(
        isinstance(node, int) and not isinstance(node, bool) and node == i
        for i, node in enumerate(order)
    )
    labels = None if identity else order
    degrees32 = degrees.astype(np.int32)
    # The compiled form is shared: cached on the graph, shipped to
    # workers, and aliased into scipy matrices (repro.graph.matrices).
    # Locking the buffers turns any would-be mutation into an immediate
    # ValueError instead of silent cache corruption.
    for array in (indptr, indices, degrees32):
        array.setflags(write=False)
    return CompiledGraph(
        indptr=indptr,
        indices=indices,
        degrees=degrees32,
        labels=labels,
    )


def compile_graph(graph) -> CompiledGraph:
    """The CSR form of ``graph``, built once and cached on the instance.

    Accepts a :class:`~repro.graph.Graph` (cached: repeated calls return
    the same object until the graph mutates) or any read-only object
    with ``nodes()`` / ``neighbors()`` such as a
    :class:`~repro.graph.views.SubgraphView` (compiled fresh each call —
    views are live, so there is nothing safe to cache on).
    """
    if isinstance(graph, CompiledGraph):
        return graph
    cached = getattr(graph, "_compiled", None)
    if cached is not None:
        return cached
    compiled = _build_csr(graph)
    if isinstance(graph, Graph):
        graph._compiled = compiled
    return compiled


def attach_compiled(graph: Graph, compiled: CompiledGraph) -> None:
    """Install a pre-built compiled form into ``graph``'s cache.

    Used by the process-pool initializers to hand workers the arrays
    compiled once in the driver, so worker-side ``compile_graph`` calls
    are cache hits instead of O(n + m) rebuilds.  Validates the shapes
    against the graph to catch stale payloads.
    """
    if (
        compiled.number_of_nodes() != graph.number_of_nodes()
        or compiled.number_of_edges() != graph.number_of_edges()
    ):
        raise GraphError(
            "compiled form does not match graph: "
            f"compiled (n={compiled.number_of_nodes()}, m={compiled.number_of_edges()}) "
            f"vs graph (n={graph.number_of_nodes()}, m={graph.number_of_edges()})"
        )
    graph._compiled = compiled


# ----------------------------------------------------------------------
# Sorted-row set algebra
# ----------------------------------------------------------------------
# CSR rows are sorted by dense id, so neighbourhood set operations reduce
# to binary searches over arrays — the generic sorted-id toolkit for
# algorithms working in dense-id space (alongside the segment reductions
# the CSR-native baselines build on).  All take 1-d sorted int arrays;
# results preserve sort order.

def in_sorted(values: np.ndarray, table: np.ndarray) -> np.ndarray:
    """Boolean membership mask of ``values`` in the **sorted** ``table``."""
    values = np.asarray(values)
    if len(table) == 0 or len(values) == 0:
        return np.zeros(len(values), dtype=bool)
    positions = np.searchsorted(table, values)
    hits = positions < len(table)
    hits[hits] = table[positions[hits]] == values[hits]
    return hits


def intersect_sorted(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """The sorted intersection of two sorted id arrays."""
    return a[in_sorted(a, b)]


def intersect_size_sorted(a: np.ndarray, b: np.ndarray) -> int:
    """``|a ∩ b|`` for two sorted id arrays (binary search, no allocation
    of the intersection itself; the shorter array drives the search)."""
    if len(b) < len(a):
        a, b = b, a
    return int(np.count_nonzero(in_sorted(a, b)))


def setdiff_sorted(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """The sorted difference ``a \\ b`` of two sorted id arrays."""
    return a[~in_sorted(a, b)]


def segment_sums(values: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    """Per-segment sums of ``values`` under ``offsets`` boundaries.

    Segment ``i`` is ``values[offsets[i]:offsets[i + 1]]``; empty
    segments sum to 0 (the reason this is a cumulative-sum subtraction
    rather than ``np.add.reduceat``, which misreads empty segments).
    Used as the degree/volume segment reduction over CSR rows and over
    clique member lists.
    """
    running = np.zeros(len(values) + 1, dtype=np.int64)
    np.cumsum(values, dtype=np.int64, out=running[1:])
    return running[offsets[1:]] - running[offsets[:-1]]
