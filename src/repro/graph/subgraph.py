"""Induced subgraphs, ego networks, and neighbourhood extraction.

OCA's local search starts from "a random neighbourhood of the seed"
(Section IV of the paper); these helpers provide the neighbourhood
machinery for seeding and for the qualitative Figure-4 experiment.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Optional, Set

from .._rng import SeedLike, as_random
from ..errors import NodeNotFoundError
from .csr import CompiledGraph, compile_graph
from .graph import Graph, Node

__all__ = [
    "induced_subgraph",
    "ego_network",
    "neighborhood",
    "random_neighborhood_subset",
]


def induced_subgraph(graph: Graph, nodes: Iterable[Node]) -> Graph:
    """The subgraph induced by ``nodes``.

    Nodes absent from ``graph`` raise :class:`NodeNotFoundError` — silently
    shrinking the requested node set would mask bugs in callers.
    """
    node_set: Set[Node] = set(nodes)
    for node in node_set:
        if not graph.has_node(node):
            raise NodeNotFoundError(node)
    sub = Graph(nodes=node_set)
    for u in node_set:
        for v in graph.neighbors(u):
            if v in node_set:
                sub.add_edge(u, v)
    return sub


def neighborhood(graph: Graph, node: Node, radius: int = 1) -> Set[Node]:
    """All nodes within ``radius`` hops of ``node`` (including itself)."""
    if radius < 0:
        raise ValueError(f"radius must be non-negative, got {radius}")
    frontier: Set[Node] = {node}
    reached: Set[Node] = {node}
    if not graph.has_node(node):
        raise NodeNotFoundError(node)
    for _ in range(radius):
        next_frontier: Set[Node] = set()
        for u in frontier:
            for v in graph.neighbors(u):
                if v not in reached:
                    reached.add(v)
                    next_frontier.add(v)
        if not next_frontier:
            break
        frontier = next_frontier
    return reached


def ego_network(graph: Graph, node: Node, radius: int = 1) -> Graph:
    """The induced subgraph on :func:`neighborhood` of ``node``."""
    return induced_subgraph(graph, neighborhood(graph, node, radius))


def _rank_ordered_neighbors(graph, node: Node) -> List[Node]:
    """The neighbours of ``node`` in insertion-rank order.

    The compiled CSR form stores every row sorted by dense id — which
    *is* the insertion rank — so for a :class:`Graph` (compiled once,
    cached) or a :class:`CompiledGraph` the canonical order is free.
    Other read-only backends (live subgraph views) fall back to sorting
    by a node index built from their iteration order.
    """
    if isinstance(graph, CompiledGraph):
        return graph.labels_of(graph.neighbors(node))
    if isinstance(graph, Graph):
        if not graph.has_node(node):
            raise NodeNotFoundError(node)
        compiled = compile_graph(graph)
        return compiled.labels_of(compiled.neighbors(compiled.id_of(node)))
    rank = {candidate: i for i, candidate in enumerate(graph.nodes())}
    return sorted(graph.neighbors(node), key=rank.__getitem__)


def random_neighborhood_subset(
    graph: Graph,
    node: Node,
    fraction: float = 0.5,
    seed: SeedLike = None,
) -> Set[Node]:
    """A random subset of the closed neighbourhood of ``node``.

    This is the paper's "random neighbourhood of the seed" used to start
    each OCA run: the seed node is always included; each neighbour joins
    independently with probability ``fraction``.

    Neighbours consume the RNG in **insertion-rank order** (the compiled
    CSR row order), not Python set-iteration order, so the draw — and
    therefore every OCA cover — is a pure function of the graph's
    construction order, the seed, and the batch size, for every label
    type and across interpreter runs.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be within [0, 1], got {fraction}")
    rng = as_random(seed)
    chosen: Set[Node] = {node}
    for neighbour in _rank_ordered_neighbors(graph, node):
        if rng.random() < fraction:
            chosen.add(neighbour)
    return chosen
