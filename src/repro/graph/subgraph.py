"""Induced subgraphs, ego networks, and neighbourhood extraction.

OCA's local search starts from "a random neighbourhood of the seed"
(Section IV of the paper); these helpers provide the neighbourhood
machinery for seeding and for the qualitative Figure-4 experiment.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Optional, Set

from .._rng import SeedLike, as_random
from ..errors import NodeNotFoundError
from .graph import Graph, Node

__all__ = [
    "induced_subgraph",
    "ego_network",
    "neighborhood",
    "random_neighborhood_subset",
]


def induced_subgraph(graph: Graph, nodes: Iterable[Node]) -> Graph:
    """The subgraph induced by ``nodes``.

    Nodes absent from ``graph`` raise :class:`NodeNotFoundError` — silently
    shrinking the requested node set would mask bugs in callers.
    """
    node_set: Set[Node] = set(nodes)
    for node in node_set:
        if not graph.has_node(node):
            raise NodeNotFoundError(node)
    sub = Graph(nodes=node_set)
    for u in node_set:
        for v in graph.neighbors(u):
            if v in node_set:
                sub.add_edge(u, v)
    return sub


def neighborhood(graph: Graph, node: Node, radius: int = 1) -> Set[Node]:
    """All nodes within ``radius`` hops of ``node`` (including itself)."""
    if radius < 0:
        raise ValueError(f"radius must be non-negative, got {radius}")
    frontier: Set[Node] = {node}
    reached: Set[Node] = {node}
    if not graph.has_node(node):
        raise NodeNotFoundError(node)
    for _ in range(radius):
        next_frontier: Set[Node] = set()
        for u in frontier:
            for v in graph.neighbors(u):
                if v not in reached:
                    reached.add(v)
                    next_frontier.add(v)
        if not next_frontier:
            break
        frontier = next_frontier
    return reached


def ego_network(graph: Graph, node: Node, radius: int = 1) -> Graph:
    """The induced subgraph on :func:`neighborhood` of ``node``."""
    return induced_subgraph(graph, neighborhood(graph, node, radius))


def random_neighborhood_subset(
    graph: Graph,
    node: Node,
    fraction: float = 0.5,
    seed: SeedLike = None,
) -> Set[Node]:
    """A random subset of the closed neighbourhood of ``node``.

    This is the paper's "random neighbourhood of the seed" used to start
    each OCA run: the seed node is always included; each neighbour joins
    independently with probability ``fraction``.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be within [0, 1], got {fraction}")
    rng = as_random(seed)
    chosen: Set[Node] = {node}
    for neighbour in graph.neighbors(node):
        if rng.random() < fraction:
            chosen.add(neighbour)
    return chosen
