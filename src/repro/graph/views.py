"""Read-only, no-copy subgraph views.

:func:`repro.graph.subgraph.induced_subgraph` copies; on a large graph an
analysis pass over many ego networks would copy most of the graph many
times over.  :class:`SubgraphView` instead *wraps* the parent graph and a
node subset, answering the read-only :class:`~repro.graph.Graph` protocol
(neighbours, degrees, edge iteration, `edges_inside`, ...) by filtering
on the fly.  Views are as cheap as the set that defines them and always
reflect the parent's current state.

Views deliberately do not support mutation: call :meth:`SubgraphView.
materialize` to get an independent, mutable :class:`Graph` copy.
"""

from __future__ import annotations

from typing import AbstractSet, Dict, Hashable, Iterable, Iterator, Set, Tuple

from ..errors import GraphError, NodeNotFoundError
from .graph import Edge, Graph, Node

__all__ = ["SubgraphView"]


class SubgraphView:
    """A live, read-only view of the subgraph induced by ``nodes``.

    Parameters
    ----------
    parent:
        The graph being viewed (not copied, not mutated).
    nodes:
        The inducing node set; must all exist in ``parent`` at
        construction time.

    Examples
    --------
    >>> from repro.generators import complete_graph
    >>> view = SubgraphView(complete_graph(5), {0, 1, 2})
    >>> view.number_of_nodes(), view.number_of_edges()
    (3, 3)
    """

    __slots__ = ("_parent", "_nodes")

    def __init__(self, parent: Graph, nodes: Iterable[Node]) -> None:
        self._parent = parent
        self._nodes: Set[Node] = set(nodes)
        for node in self._nodes:
            if not parent.has_node(node):
                raise NodeNotFoundError(node)

    # ------------------------------------------------------------------
    @property
    def parent(self) -> Graph:
        """The underlying graph."""
        return self._parent

    @property
    def node_set(self) -> Set[Node]:
        """The inducing node set (a live reference; treat as read-only)."""
        return self._nodes

    # ------------------------------------------------------------------
    # Read-only Graph protocol
    # ------------------------------------------------------------------
    def has_node(self, node: Node) -> bool:
        """Whether ``node`` is in the view."""
        return node in self._nodes and self._parent.has_node(node)

    def has_edge(self, u: Node, v: Node) -> bool:
        """Whether both endpoints are in the view and adjacent in the parent."""
        return u in self._nodes and v in self._nodes and self._parent.has_edge(u, v)

    def neighbors(self, node: Node) -> Set[Node]:
        """Neighbours of ``node`` inside the view (a fresh set)."""
        if node not in self._nodes:
            raise NodeNotFoundError(node)
        return {v for v in self._parent.neighbors(node) if v in self._nodes}

    def degree(self, node: Node) -> int:
        """Degree of ``node`` within the view."""
        return len(self.neighbors(node))

    def degrees(self) -> Dict[Node, int]:
        """Every view node mapped to its in-view degree."""
        return {node: self.degree(node) for node in self.nodes()}

    def number_of_nodes(self) -> int:
        """Node count of the view."""
        return len(self._nodes)

    def number_of_edges(self) -> int:
        """Edge count of the view (computed on demand, O(volume))."""
        return self._parent.edges_inside(self._nodes)

    def nodes(self) -> Iterator[Node]:
        """Iterate over view nodes (parent insertion order)."""
        return (node for node in self._parent.nodes() if node in self._nodes)

    def edges(self) -> Iterator[Edge]:
        """Iterate over view edges exactly once."""
        seen: Set[Node] = set()
        for u in self.nodes():
            seen.add(u)
            for v in self._parent.neighbors(u):
                if v in self._nodes and v not in seen:
                    yield (u, v)

    def edges_inside(self, nodes: Iterable[Node]) -> int:
        """``E_in`` of a subset, restricted to the view."""
        subset = {node for node in nodes if node in self._nodes}
        return self._parent.edges_inside(subset)

    def boundary_degree(self, node: Node, inside: AbstractSet[Node]) -> int:
        """Neighbour count of ``node`` within ``inside ∩ view``."""
        return sum(1 for v in self.neighbors(node) if v in inside)

    # ------------------------------------------------------------------
    def materialize(self) -> Graph:
        """An independent, mutable :class:`Graph` copy of the view."""
        graph = Graph(nodes=self._nodes)
        for u, v in self.edges():
            graph.add_edge(u, v)
        return graph

    # ------------------------------------------------------------------
    # Explicitly refuse mutation.
    # ------------------------------------------------------------------
    def add_node(self, node: Node) -> None:
        raise GraphError("SubgraphView is read-only; materialize() first")

    def add_edge(self, u: Node, v: Node) -> None:
        raise GraphError("SubgraphView is read-only; materialize() first")

    def remove_node(self, node: Node) -> None:
        raise GraphError("SubgraphView is read-only; materialize() first")

    def remove_edge(self, u: Node, v: Node) -> None:
        raise GraphError("SubgraphView is read-only; materialize() first")

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[Node]:
        return self.nodes()

    def __contains__(self, node: object) -> bool:
        return node in self._nodes

    def __repr__(self) -> str:
        return (
            f"SubgraphView(n={self.number_of_nodes()}, "
            f"parent={self._parent!r})"
        )
