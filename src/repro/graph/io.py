"""Reading and writing graphs in plain-text interchange formats.

Three formats are supported:

``edge list``
    One ``u v`` pair per line, ``#`` comments allowed — the format of the
    SNAP datasets and of the Wikipedia dump the paper used.
``adjacency list``
    One ``u v1 v2 ...`` line per node; expresses isolated nodes.
``metis``
    The classic METIS format (header ``n m``, then 1-based neighbour lists,
    one line per node) used by most partitioning tools.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import IO, Iterable, Iterator, Tuple, Union

from ..errors import GraphFormatError
from .builder import GraphBuilder
from .graph import Graph

__all__ = [
    "read_edge_list",
    "write_edge_list",
    "read_adjacency_list",
    "write_adjacency_list",
    "read_metis",
    "write_metis",
    "parse_edge_list",
]

PathLike = Union[str, Path]


def _open_for_read(source: Union[PathLike, IO[str]]):
    if isinstance(source, (str, Path)):
        return open(source, "r", encoding="utf-8"), True
    return source, False


def _open_for_write(target: Union[PathLike, IO[str]]):
    if isinstance(target, (str, Path)):
        return open(target, "w", encoding="utf-8"), True
    return target, False


def parse_edge_list(
    lines: Iterable[str],
    comment: str = "#",
    intern_ints: bool = True,
) -> Iterator[Tuple[object, object]]:
    """Yield ``(u, v)`` pairs from edge-list lines.

    Tokens that look like integers become ``int`` when ``intern_ints`` is
    true (the common case for public datasets); anything else stays a
    string.  Blank lines and comments are skipped.  Lines with fewer than
    two tokens raise :class:`GraphFormatError`; extra tokens (weights,
    timestamps) are ignored.
    """

    def canonical(token: str) -> object:
        if intern_ints:
            try:
                return int(token)
            except ValueError:
                return token
        return token

    for line_number, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith(comment):
            continue
        tokens = line.split()
        if len(tokens) < 2:
            raise GraphFormatError(
                f"line {line_number}: expected at least two tokens, got {line!r}"
            )
        yield canonical(tokens[0]), canonical(tokens[1])


def read_edge_list(
    source: Union[PathLike, IO[str]],
    comment: str = "#",
    drop_self_loops: bool = True,
) -> Graph:
    """Read a graph from an edge-list file or open text stream."""
    stream, should_close = _open_for_read(source)
    try:
        builder = GraphBuilder(drop_self_loops=drop_self_loops)
        builder.add_edges(parse_edge_list(stream, comment=comment))
        return builder.build()
    finally:
        if should_close:
            stream.close()


def write_edge_list(graph: Graph, target: Union[PathLike, IO[str]]) -> None:
    """Write ``graph`` as an edge list (one ``u v`` pair per line)."""
    stream, should_close = _open_for_write(target)
    try:
        for u, v in graph.edges():
            stream.write(f"{u} {v}\n")
    finally:
        if should_close:
            stream.close()


def read_adjacency_list(
    source: Union[PathLike, IO[str]],
    comment: str = "#",
) -> Graph:
    """Read a graph from adjacency-list lines ``u v1 v2 ...``."""
    stream, should_close = _open_for_read(source)
    try:
        builder = GraphBuilder()
        for raw in stream:
            line = raw.strip()
            if not line or line.startswith(comment):
                continue
            tokens = line.split()
            head, *tail = tokens

            def canonical(token: str) -> object:
                try:
                    return int(token)
                except ValueError:
                    return token

            u = canonical(head)
            builder.add_node(u)
            for token in tail:
                builder.add_edge(u, canonical(token))
        return builder.build()
    finally:
        if should_close:
            stream.close()


def write_adjacency_list(graph: Graph, target: Union[PathLike, IO[str]]) -> None:
    """Write ``graph`` as adjacency-list lines (isolated nodes included)."""
    stream, should_close = _open_for_write(target)
    try:
        for node in graph.nodes():
            neighbours = " ".join(str(v) for v in sorted(graph.neighbors(node), key=str))
            if neighbours:
                stream.write(f"{node} {neighbours}\n")
            else:
                stream.write(f"{node}\n")
    finally:
        if should_close:
            stream.close()


def read_metis(source: Union[PathLike, IO[str]]) -> Graph:
    """Read the METIS graph format.

    Only the unweighted variant is supported: the header is ``n m`` and
    line ``i`` (1-based) lists the neighbours of node ``i - 1`` (converted
    to 0-based node ids).
    """
    stream, should_close = _open_for_read(source)
    try:
        header = None
        body_lines = []
        for raw in stream:
            line = raw.strip()
            if not line or line.startswith("%"):
                continue
            if header is None:
                header = line
            else:
                body_lines.append(line)
        if header is None:
            raise GraphFormatError("METIS file has no header line")
        header_tokens = header.split()
        if len(header_tokens) < 2:
            raise GraphFormatError(f"METIS header must be 'n m', got {header!r}")
        try:
            n, m = int(header_tokens[0]), int(header_tokens[1])
        except ValueError as exc:
            raise GraphFormatError(f"bad METIS header {header!r}") from exc
        if len(body_lines) != n:
            raise GraphFormatError(
                f"METIS header declares {n} nodes but file has {len(body_lines)} adjacency lines"
            )
        graph = Graph(nodes=range(n))
        for i, line in enumerate(body_lines):
            for token in line.split():
                try:
                    j = int(token)
                except ValueError as exc:
                    raise GraphFormatError(
                        f"node line {i + 1}: non-integer neighbour {token!r}"
                    ) from exc
                if not 1 <= j <= n:
                    raise GraphFormatError(
                        f"node line {i + 1}: neighbour {j} out of range 1..{n}"
                    )
                if j - 1 != i:
                    graph.add_edge(i, j - 1)
        if graph.number_of_edges() != m:
            raise GraphFormatError(
                f"METIS header declares {m} edges but adjacency lists define "
                f"{graph.number_of_edges()}"
            )
        return graph
    finally:
        if should_close:
            stream.close()


def write_metis(graph: Graph, target: Union[PathLike, IO[str]]) -> None:
    """Write ``graph`` in METIS format.

    Node labels must be ``0..n-1`` integers (use :meth:`Graph.relabelled`
    first otherwise); anything else raises :class:`GraphFormatError`.
    """
    n = graph.number_of_nodes()
    labels = set(graph.nodes())
    if labels != set(range(n)):
        raise GraphFormatError(
            "METIS output requires dense integer node labels 0..n-1; "
            "call Graph.relabelled() first"
        )
    stream, should_close = _open_for_write(target)
    try:
        stream.write(f"{n} {graph.number_of_edges()}\n")
        for i in range(n):
            neighbours = " ".join(str(v + 1) for v in sorted(graph.neighbors(i)))
            stream.write(neighbours + "\n")
    finally:
        if should_close:
            stream.close()
