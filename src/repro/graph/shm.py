"""Zero-copy shared-memory shipping of compiled CSR graphs.

The process backend used to ship a :class:`~repro.graph.csr.CompiledGraph`
to every worker by pickling it through the pool initializer: three int32
arrays (plus the label table) serialised, copied through a pipe, and
deserialised once per worker.  This module replaces that copy with
``multiprocessing.shared_memory``: the driver *exports* the compiled
arrays once into named segments (:func:`export_shared`), and each worker
*attaches* to them by name (:func:`attach_shared`) — an O(1) ``mmap``
regardless of graph size — wrapping the mapped buffers in a
:class:`~repro.graph.csr.CompiledGraph` without copying a byte.

The attached arrays are locked read-only, the same immutability contract
the compiled form already promises (scipy matrix aliasing depends on it),
so every worker on the host shares one physical copy of the graph.

Lifecycle
---------
Segments are owned by whoever called :func:`export_shared` — in practice
the :class:`~repro.engine.ExecutionEngine` behind a session's persistent
pool.  :meth:`SharedGraphSegments.close` unlinks them; the engine calls
it *after* the worker pool has been joined, so no racing attach can hit
a vanished segment.  A :mod:`weakref` finalizer guards the owner path:
segments abandoned without ``close()`` are force-unlinked (at garbage
collection or interpreter exit) with a :class:`ResourceWarning` rather
than leaking ``/dev/shm`` entries.

Workers attach through a per-process cache keyed by segment names, so a
pool that re-ships an identical descriptor attaches exactly once; the
mapping stays valid even if the owner unlinks while a worker still holds
it (POSIX keeps the pages until the last unmap).  Attaching *after* the
owner unlinked raises :class:`~repro.errors.SessionClosedError` — the
segment's session is gone, and so is the graph.

On platforms without ``multiprocessing.shared_memory`` (or without a
usable ``/dev/shm``), :func:`shm_available` reports ``False`` and the
engine falls back to the pre-existing pickle shipping; nothing here is
a hard dependency.
"""

from __future__ import annotations

import os
import pickle
import secrets
import threading
import warnings
import weakref
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import GraphError, SessionClosedError
from .csr import CompiledGraph

__all__ = [
    "shm_available",
    "ShmGraphDescriptor",
    "SharedGraphSegments",
    "export_shared",
    "attach_shared",
    "live_segment_names",
]

try:  # pragma: no cover - import guard exercised only where absent
    from multiprocessing.shared_memory import SharedMemory as _SharedMemory
except ImportError:  # pragma: no cover
    _SharedMemory = None

#: Every segment this module creates carries this prefix, so leak checks
#: (tests, CI's post-test /dev/shm assertion) can tell ours apart.
SEGMENT_PREFIX = "repro_shm_"

#: The CSR arrays are int32 by construction (see repro.graph.csr).
_DTYPE = np.int32

#: Names of owner-side segments currently linked in this process; the
#: accounting the lifecycle tests (and __repr__ debugging) read.
_LIVE_SEGMENTS: "set[str]" = set()
_LIVE_LOCK = threading.Lock()

_available: Optional[bool] = None


def shm_available() -> bool:
    """Whether shared-memory shipping can work in this process.

    Probes once (create + attach + unlink of a one-page segment) and
    caches the verdict: importability alone is not enough — containers
    occasionally mount ``/dev/shm`` unwritable.
    """
    global _available
    if _available is None:
        if _SharedMemory is None:
            _available = False
        else:
            try:
                probe = _SharedMemory(
                    create=True, size=1, name=_new_segment_name()
                )
                probe.close()
                probe.unlink()
                _available = True
            except OSError:
                _available = False
    return _available


def _new_segment_name() -> str:
    return SEGMENT_PREFIX + secrets.token_hex(8)


def _attach_segment(name: str) -> "_SharedMemory":
    """Attach to a named segment without adopting its lifetime.

    ``SharedMemory(create=False)`` registers the segment with the
    resource tracker on every Python up to 3.12; 3.13 grew
    ``track=False`` to skip that.  On older versions the duplicate
    registration is harmless *in our architecture*: attachers are
    always pool workers, which inherit the exporting driver's tracker
    (both fork and spawn pass the tracker fd down), and its cache is a
    set — the owner's unlink-time unregister still balances it.  Do
    NOT "fix" this by unregistering here: that would strip the owner's
    crash-safety registration from the shared tracker.
    """
    if _SharedMemory is None:
        raise GraphError(
            "multiprocessing.shared_memory is unavailable on this platform"
        )
    try:
        try:
            return _SharedMemory(name=name, create=False, track=False)
        except TypeError:  # Python < 3.13: no track parameter
            return _SharedMemory(name=name, create=False)
    except FileNotFoundError:
        raise SessionClosedError(
            f"shared-memory segment {name!r} has been unlinked; the "
            "session that exported it is closed"
        ) from None


def _neuter(segment: "_SharedMemory") -> None:
    """Detach a segment handle from its cleanup duties.

    After the numpy arrays are wrapped over ``segment.buf``, the mapping
    is kept alive by the arrays' base memoryview; the ``SharedMemory``
    wrapper's own ``__del__`` would only try to ``close()`` underneath
    live exports and spray ``BufferError: cannot close exported
    pointers exist`` at interpreter exit.  Dropping its fd and buffer
    references makes its destructor inert — the pages are released when
    the last array unmaps, the name when the owner unlinks.
    """
    fd = getattr(segment, "_fd", -1)
    if fd >= 0:
        try:
            os.close(fd)
        except OSError:  # pragma: no cover - already closed
            pass
        segment._fd = -1
    segment._buf = None
    segment._mmap = None


@dataclass(frozen=True)
class ShmGraphDescriptor:
    """The picklable recipe for attaching one exported compiled graph.

    A few strings and integers — *this* is what crosses the process
    boundary instead of the arrays.  ``spectral`` carries the compiled
    graph's spectral cache inline (a handful of floats; shipping them
    saves every attaching worker a full power-method run, exactly like
    the pickle path does).

    Hashable, so it doubles as the worker-side attach-cache key.
    """

    indptr: Tuple[str, int]
    indices: Tuple[str, int]
    degrees: Tuple[str, int]
    labels: Optional[Tuple[str, int]]
    spectral: Tuple[Tuple[tuple, float], ...] = ()

    @property
    def segment_names(self) -> Tuple[str, ...]:
        """Every segment name this descriptor references."""
        names = [self.indptr[0], self.indices[0], self.degrees[0]]
        if self.labels is not None:
            names.append(self.labels[0])
        return tuple(names)

    def nodes(self) -> int:
        """Node count, recovered from the degrees segment length."""
        return self.degrees[1]


class SharedGraphSegments:
    """Owner handle over one exported graph's shared-memory segments.

    Created by :func:`export_shared`; owns the segments until
    :meth:`close` unlinks them.  The finalizer guard means an abandoned
    instance still cleans up ``/dev/shm`` — loudly, with a
    :class:`ResourceWarning`, because the owner was supposed to call
    :meth:`close` after joining its workers.
    """

    def __init__(
        self,
        descriptor: ShmGraphDescriptor,
        segments: List["_SharedMemory"],
        nbytes: int,
    ) -> None:
        self.descriptor = descriptor
        self.nbytes = nbytes
        self._segments = segments
        self._closed = False
        names = descriptor.segment_names
        with _LIVE_LOCK:
            _LIVE_SEGMENTS.update(names)
        self._finalizer = weakref.finalize(
            self, _force_unlink, list(segments), names
        )

    @property
    def closed(self) -> bool:
        """Whether the segments have been unlinked."""
        return self._closed

    def close(self) -> None:
        """Unlink every segment; idempotent.

        Callers must only do this once no more attaches can race in —
        for the engine that means after the worker pool has been joined.
        Workers already attached keep their (now anonymous) mapping; the
        pages are released when the last of them unmaps.
        """
        if self._closed:
            return
        self._closed = True
        self._finalizer.detach()
        _release(self._segments)
        with _LIVE_LOCK:
            _LIVE_SEGMENTS.difference_update(self.descriptor.segment_names)
        self._segments = []

    def __repr__(self) -> str:
        state = "closed" if self._closed else "linked"
        return (
            f"SharedGraphSegments(n={self.descriptor.nodes()}, "
            f"nbytes={self.nbytes}, {state})"
        )


def _release(segments: List["_SharedMemory"]) -> None:
    for segment in segments:
        try:
            segment.close()
            segment.unlink()
        except OSError:  # pragma: no cover - already gone
            pass


def _force_unlink(segments: List["_SharedMemory"], names: Tuple[str, ...]) -> None:
    """Finalizer body: reclaim abandoned segments, but complain.

    Runs at garbage collection or interpreter shutdown when the owner
    never called :meth:`SharedGraphSegments.close`.  A warning, not a
    crash: by the time this fires the only useful action left is to
    stop the leak.
    """
    warnings.warn(
        "shared-memory graph segments "
        + ", ".join(names)
        + " were never released; force-unlinking (the owning engine or "
        "session should have been closed)",
        ResourceWarning,
        stacklevel=2,
    )
    _release(segments)
    with _LIVE_LOCK:
        _LIVE_SEGMENTS.difference_update(names)


def live_segment_names() -> "set[str]":
    """Owner-side segments currently linked by this process.

    Empty whenever every export has been closed — the assertion the
    lifecycle tests (and CI's post-test leak check) make.
    """
    with _LIVE_LOCK:
        return set(_LIVE_SEGMENTS)


def _export_array(array: np.ndarray) -> Tuple["_SharedMemory", Tuple[str, int]]:
    segment = _SharedMemory(
        create=True, size=max(1, array.nbytes), name=_new_segment_name()
    )
    view = np.frombuffer(segment.buf, dtype=_DTYPE, count=len(array))
    view[:] = array
    return segment, (segment.name, len(array))


def export_shared(compiled: CompiledGraph) -> SharedGraphSegments:
    """Copy a compiled graph's arrays into named shared-memory segments.

    One O(n + m) copy, paid once per (graph, pool); every worker attach
    after it is O(1).  The label table (for non-identity labels) ships
    as a fourth, pickled segment; the spectral cache rides inline on the
    descriptor.
    """
    if not shm_available():
        raise GraphError(
            "shared-memory shipping is unavailable on this platform "
            "(multiprocessing.shared_memory missing or /dev/shm unusable)"
        )
    segments: List["_SharedMemory"] = []
    try:
        indptr_seg, indptr_spec = _export_array(compiled.indptr)
        segments.append(indptr_seg)
        indices_seg, indices_spec = _export_array(compiled.indices)
        segments.append(indices_seg)
        degrees_seg, degrees_spec = _export_array(compiled.degrees)
        segments.append(degrees_seg)
        labels_spec = None
        if not compiled.identity_labels:
            blob = pickle.dumps(compiled.labels, pickle.HIGHEST_PROTOCOL)
            labels_seg = _SharedMemory(
                create=True, size=max(1, len(blob)), name=_new_segment_name()
            )
            labels_seg.buf[: len(blob)] = blob
            segments.append(labels_seg)
            labels_spec = (labels_seg.name, len(blob))
    except BaseException:
        _release(segments)
        raise
    descriptor = ShmGraphDescriptor(
        indptr=indptr_spec,
        indices=indices_spec,
        degrees=degrees_spec,
        labels=labels_spec,
        spectral=tuple(sorted(compiled.spectral_cache.items())),
    )
    nbytes = sum(segment.size for segment in segments)
    return SharedGraphSegments(descriptor, segments, nbytes)


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
#: Per-process attach cache: one CompiledGraph per descriptor, so a pool
#: that re-ships the same graph (worker respawn, context re-send) maps
#: the segments exactly once per process.
_ATTACHED: Dict[ShmGraphDescriptor, CompiledGraph] = {}
_ATTACHED_LOCK = threading.Lock()


def _wrap_segment(segment: "_SharedMemory", length: int) -> np.ndarray:
    array = np.frombuffer(segment.buf, dtype=_DTYPE, count=length)
    array.setflags(write=False)
    return array


def attach_shared(descriptor: ShmGraphDescriptor) -> CompiledGraph:
    """A zero-copy :class:`CompiledGraph` over exported segments.

    The returned graph's arrays alias the shared pages directly (no
    copy, read-only) and keep the mappings alive for the graph's
    lifetime.  Raises :class:`~repro.errors.SessionClosedError` when the
    owner has already unlinked the segments.
    """
    with _ATTACHED_LOCK:
        cached = _ATTACHED.get(descriptor)
        if cached is not None:
            return cached
    segments: List["_SharedMemory"] = []
    try:
        indptr_seg = _attach_segment(descriptor.indptr[0])
        segments.append(indptr_seg)
        indices_seg = _attach_segment(descriptor.indices[0])
        segments.append(indices_seg)
        degrees_seg = _attach_segment(descriptor.degrees[0])
        segments.append(degrees_seg)
        labels: Optional[list] = None
        if descriptor.labels is not None:
            name, blob_len = descriptor.labels
            labels_seg = _attach_segment(name)
            try:
                labels = pickle.loads(bytes(labels_seg.buf[:blob_len]))
            finally:
                # The label table is copied out; its segment need not
                # stay mapped in this process.
                labels_seg.close()
        compiled = CompiledGraph.from_shared(
            indptr=_wrap_segment(indptr_seg, descriptor.indptr[1]),
            indices=_wrap_segment(indices_seg, descriptor.indices[1]),
            degrees=_wrap_segment(degrees_seg, descriptor.degrees[1]),
            labels=labels,
            spectral={key: value for key, value in descriptor.spectral},
            retained=tuple(segments),
        )
        # From here the arrays own the mappings; the handles must not
        # try to close underneath them at garbage collection.
        for segment in segments:
            _neuter(segment)
    except BaseException:
        for segment in segments:
            try:
                segment.close()
            except OSError:  # pragma: no cover
                pass
        raise
    with _ATTACHED_LOCK:
        return _ATTACHED.setdefault(descriptor, compiled)
