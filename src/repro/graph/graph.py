"""The core undirected simple-graph data structure.

The paper manages its graphs "with C++ structures created ad hoc for this
problem"; this module is the Python equivalent substrate.  :class:`Graph`
stores an adjacency-set map, which gives O(1) expected edge queries and
O(deg) neighbourhood iteration — exactly the operations the OCA greedy
search, LFK, and clique percolation need.

Design notes
------------
* Graphs are **simple** and **undirected**: self-loops and parallel edges
  are rejected at insertion time (the virtual vector representation of
  Section II of the paper is only defined for simple graphs).
* Nodes may be any hashable object.  Algorithms that need dense integer
  ids (the spectral routines) obtain them through
  :meth:`Graph.node_index`.
* The edge count is maintained incrementally so ``number_of_edges`` is O(1).
* This class is the mutable *construction* API.  Hot paths run on the
  immutable CSR form produced by :func:`repro.graph.csr.compile_graph`,
  which is cached here (``_compiled``) and invalidated by any mutation.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, Set, Tuple

from ..errors import GraphError, NodeNotFoundError, EdgeNotFoundError

__all__ = ["Graph", "Node", "Edge"]

Node = Hashable
Edge = Tuple[Node, Node]


class Graph:
    """An undirected simple graph backed by adjacency sets.

    Parameters
    ----------
    edges:
        Optional iterable of ``(u, v)`` pairs inserted at construction.
    nodes:
        Optional iterable of nodes inserted at construction (useful for
        isolated nodes, which plain edge lists cannot express).

    Examples
    --------
    >>> g = Graph(edges=[(0, 1), (1, 2)])
    >>> g.number_of_nodes(), g.number_of_edges()
    (3, 2)
    >>> sorted(g.neighbors(1))
    [0, 2]
    """

    __slots__ = ("_adj", "_num_edges", "_compiled")

    def __init__(
        self,
        edges: Iterable[Edge] = (),
        nodes: Iterable[Node] = (),
    ) -> None:
        self._adj: Dict[Node, Set[Node]] = {}
        self._num_edges: int = 0
        # Cache slot for the immutable CSR form (repro.graph.csr); owned
        # by compile_graph/attach_compiled, invalidated by any mutation.
        self._compiled = None
        for node in nodes:
            self.add_node(node)
        for u, v in edges:
            self.add_edge(u, v)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_node(self, node: Node) -> None:
        """Insert ``node``; a no-op if it is already present."""
        if node not in self._adj:
            self._adj[node] = set()
            self._compiled = None

    def add_nodes(self, nodes: Iterable[Node]) -> None:
        """Insert every node of ``nodes``."""
        for node in nodes:
            self.add_node(node)

    def add_edge(self, u: Node, v: Node) -> bool:
        """Insert the undirected edge ``{u, v}``, creating endpoints.

        Returns ``True`` if the edge was new, ``False`` if it already
        existed.  Raises :class:`GraphError` on self-loops, which the
        virtual vector representation cannot express.
        """
        if u == v:
            raise GraphError(f"self-loop on {u!r}: simple graphs only")
        self.add_node(u)
        self.add_node(v)
        if v in self._adj[u]:
            return False
        self._adj[u].add(v)
        self._adj[v].add(u)
        self._num_edges += 1
        self._compiled = None
        return True

    def add_edges(self, edges: Iterable[Edge]) -> int:
        """Insert every edge of ``edges``; return how many were new."""
        added = 0
        for u, v in edges:
            if self.add_edge(u, v):
                added += 1
        return added

    def remove_edge(self, u: Node, v: Node) -> None:
        """Delete the edge ``{u, v}``.

        Raises :class:`EdgeNotFoundError` if it is absent.
        """
        neighbours = self._adj.get(u)
        if neighbours is None or v not in neighbours:
            raise EdgeNotFoundError(u, v)
        neighbours.discard(v)
        self._adj[v].discard(u)
        self._num_edges -= 1
        self._compiled = None

    def remove_node(self, node: Node) -> None:
        """Delete ``node`` and every incident edge.

        Raises :class:`NodeNotFoundError` if it is absent.
        """
        neighbours = self._adj.get(node)
        if neighbours is None:
            raise NodeNotFoundError(node)
        for other in neighbours:
            self._adj[other].discard(node)
        self._num_edges -= len(neighbours)
        del self._adj[node]
        self._compiled = None

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def has_node(self, node: Node) -> bool:
        """Whether ``node`` is present."""
        return node in self._adj

    def has_edge(self, u: Node, v: Node) -> bool:
        """Whether the undirected edge ``{u, v}`` is present."""
        neighbours = self._adj.get(u)
        return neighbours is not None and v in neighbours

    def neighbors(self, node: Node) -> Set[Node]:
        """The neighbour set of ``node`` (a *live* set: do not mutate).

        Raises :class:`NodeNotFoundError` for absent nodes.
        """
        try:
            return self._adj[node]
        except KeyError:
            raise NodeNotFoundError(node) from None

    def degree(self, node: Node) -> int:
        """The degree of ``node``."""
        return len(self.neighbors(node))

    def degrees(self) -> Dict[Node, int]:
        """A mapping of every node to its degree."""
        return {node: len(adj) for node, adj in self._adj.items()}

    def number_of_nodes(self) -> int:
        """The node count ``n``."""
        return len(self._adj)

    def number_of_edges(self) -> int:
        """The edge count ``m``."""
        return self._num_edges

    def nodes(self) -> Iterator[Node]:
        """Iterate over nodes in insertion order."""
        return iter(self._adj)

    def edges(self) -> Iterator[Edge]:
        """Iterate over each undirected edge exactly once.

        The reported orientation is ``(u, v)`` where ``u`` was visited
        first in node insertion order.
        """
        seen: Set[Node] = set()
        for u, neighbours in self._adj.items():
            seen.add(u)
            for v in neighbours:
                if v not in seen:
                    yield (u, v)

    def edges_incident(self, node: Node) -> Iterator[Edge]:
        """Iterate over the edges incident to ``node``."""
        for other in self.neighbors(node):
            yield (node, other)

    def edges_inside(self, nodes: Iterable[Node]) -> int:
        """Count edges with *both* endpoints in ``nodes``.

        This is the quantity the paper calls ``E_in(S)``; it is the only
        graph statistic the OCA fitness function needs.  Nodes absent from
        the graph are ignored.
        """
        node_set = nodes if isinstance(nodes, (set, frozenset)) else set(nodes)
        count = 0
        for u in node_set:
            neighbours = self._adj.get(u)
            if neighbours is None:
                continue
            if len(neighbours) <= len(node_set):
                count += sum(1 for v in neighbours if v in node_set)
            else:
                count += sum(1 for v in node_set if v in neighbours)
        return count // 2

    def boundary_degree(self, node: Node, inside: Set[Node]) -> int:
        """Count neighbours of ``node`` that lie in ``inside``.

        The incremental fitness evaluation in :mod:`repro.core.state`
        relies on this being O(min(deg, |inside|)).
        """
        neighbours = self.neighbors(node)
        if len(neighbours) <= len(inside):
            return sum(1 for v in neighbours if v in inside)
        return sum(1 for v in inside if v in neighbours)

    # ------------------------------------------------------------------
    # Derived structures
    # ------------------------------------------------------------------
    def copy(self) -> "Graph":
        """An independent deep copy of the graph."""
        clone = Graph()
        clone._adj = {node: set(adj) for node, adj in self._adj.items()}
        clone._num_edges = self._num_edges
        return clone

    # ------------------------------------------------------------------
    # Pickling
    # ------------------------------------------------------------------
    def __getstate__(self):
        # The compiled CSR cache is derived state; shipping it alongside
        # the adjacency map would double worker payloads.  Callers that
        # want the arrays ship the CompiledGraph itself (see
        # repro.graph.csr.attach_compiled).
        return (self._adj, self._num_edges)

    def __setstate__(self, state) -> None:
        self._adj, self._num_edges = state
        self._compiled = None

    def node_index(self) -> Dict[Node, int]:
        """A dense ``node -> int`` index in insertion order.

        The inverse mapping is ``list(self.nodes())``.
        """
        return {node: i for i, node in enumerate(self._adj)}

    def relabelled(self) -> Tuple["Graph", Dict[Node, int]]:
        """A copy with nodes renamed to ``0..n-1`` plus the mapping used."""
        index = self.node_index()
        clone = Graph(nodes=range(len(index)))
        for u, v in self.edges():
            clone.add_edge(index[u], index[v])
        return clone, index

    # ------------------------------------------------------------------
    # Dunder protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._adj)

    def __iter__(self) -> Iterator[Node]:
        return iter(self._adj)

    def __contains__(self, node: Node) -> bool:
        return node in self._adj

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self._adj == other._adj

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(n={self.number_of_nodes()}, "
            f"m={self.number_of_edges()})"
        )
