"""Graph substrate: the data structure and its supporting toolkit.

This subpackage is the Python counterpart of the "C++ structures created
ad hoc for this problem" that the paper's experiments ran on.  Everything
else in :mod:`repro` builds on :class:`Graph`.
"""

from .graph import Graph, Node, Edge
from .csr import GraphBackend, CompiledGraph, compile_graph, attach_compiled
from .shm import (
    ShmGraphDescriptor,
    SharedGraphSegments,
    attach_shared,
    export_shared,
    shm_available,
)
from .builder import GraphBuilder, BuildReport
from .subgraph import (
    induced_subgraph,
    ego_network,
    neighborhood,
    random_neighborhood_subset,
)
from .views import SubgraphView
from .traversal import (
    bfs_order,
    bfs_distances,
    dfs_order,
    connected_components,
    largest_component,
    is_connected,
    shortest_path,
)
from .statistics import (
    GraphSummary,
    summarize,
    density,
    average_degree,
    degree_histogram,
    local_clustering,
    average_clustering,
    triangle_count,
)
from .io import (
    read_edge_list,
    write_edge_list,
    read_adjacency_list,
    write_adjacency_list,
    read_metis,
    write_metis,
)
from .matrices import adjacency_matrix, laplacian_matrix, adjacency_with_index
from .convert import (
    from_networkx,
    to_networkx,
    from_scipy_sparse,
    to_scipy_sparse,
    from_edge_array,
)

__all__ = [
    "Graph",
    "Node",
    "Edge",
    "GraphBackend",
    "CompiledGraph",
    "compile_graph",
    "attach_compiled",
    "ShmGraphDescriptor",
    "SharedGraphSegments",
    "attach_shared",
    "export_shared",
    "shm_available",
    "GraphBuilder",
    "BuildReport",
    "induced_subgraph",
    "ego_network",
    "neighborhood",
    "random_neighborhood_subset",
    "SubgraphView",
    "bfs_order",
    "bfs_distances",
    "dfs_order",
    "connected_components",
    "largest_component",
    "is_connected",
    "shortest_path",
    "GraphSummary",
    "summarize",
    "density",
    "average_degree",
    "degree_histogram",
    "local_clustering",
    "average_clustering",
    "triangle_count",
    "read_edge_list",
    "write_edge_list",
    "read_adjacency_list",
    "write_adjacency_list",
    "read_metis",
    "write_metis",
    "adjacency_matrix",
    "laplacian_matrix",
    "adjacency_with_index",
    "from_networkx",
    "to_networkx",
    "from_scipy_sparse",
    "to_scipy_sparse",
    "from_edge_array",
]
