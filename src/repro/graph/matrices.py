"""Sparse-matrix views of graphs.

The spectral machinery in :mod:`repro.core.spectral` needs fast
matrix-vector products with the adjacency matrix; SciPy's CSR format
provides them.  The conversion fixes a node ordering (insertion order,
the same one :meth:`repro.graph.Graph.node_index` reports) so callers can
translate eigenvector entries back to nodes.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np
import scipy.sparse as sp

from .csr import compile_graph
from .graph import Graph, Node

__all__ = [
    "adjacency_matrix",
    "laplacian_matrix",
    "adjacency_with_index",
]


def adjacency_with_index(graph: Graph) -> Tuple[sp.csr_matrix, Dict[Node, int]]:
    """The CSR adjacency matrix together with the node index used.

    Row/column ``i`` corresponds to the ``i``-th node in insertion order.
    Built straight from the compiled CSR form (cached on the graph):
    :func:`~repro.graph.csr.compile_graph` already stores per-row-sorted
    neighbour ids, which is exactly SciPy's canonical layout, so the
    matrix here is structurally identical to the old COO round-trip —
    including matvec summation order, which keeps spectral results
    bit-stable — without materialising edge lists.
    """
    compiled = compile_graph(graph)
    n = compiled.number_of_nodes()
    data = np.ones(len(compiled.indices), dtype=np.float64)
    matrix = sp.csr_matrix(
        (data, compiled.indices, compiled.indptr), shape=(n, n)
    )
    # Fresh dict: node_index() always returned an owned copy, and the
    # compiled cache must not be mutable through this return value.
    return matrix, dict(compiled.index)


def adjacency_matrix(graph: Graph) -> sp.csr_matrix:
    """The CSR adjacency matrix in node insertion order."""
    matrix, _ = adjacency_with_index(graph)
    return matrix


def laplacian_matrix(graph: Graph) -> sp.csr_matrix:
    """The combinatorial Laplacian ``L = D - A`` in node insertion order."""
    adjacency, index = adjacency_with_index(graph)
    degrees = np.asarray(adjacency.sum(axis=1)).ravel()
    return sp.diags(degrees).tocsr() - adjacency
