"""Sparse-matrix views of graphs.

The spectral machinery in :mod:`repro.core.spectral` needs fast
matrix-vector products with the adjacency matrix; SciPy's CSR format
provides them.  The conversion fixes a node ordering (insertion order,
the same one :meth:`repro.graph.Graph.node_index` reports) so callers can
translate eigenvector entries back to nodes.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np
import scipy.sparse as sp

from .graph import Graph, Node

__all__ = [
    "adjacency_matrix",
    "laplacian_matrix",
    "adjacency_with_index",
]


def adjacency_with_index(graph: Graph) -> Tuple[sp.csr_matrix, Dict[Node, int]]:
    """The CSR adjacency matrix together with the node index used.

    Row/column ``i`` corresponds to the ``i``-th node in insertion order.
    """
    index = graph.node_index()
    n = len(index)
    rows: List[int] = []
    cols: List[int] = []
    for u, v in graph.edges():
        i, j = index[u], index[v]
        rows.append(i)
        cols.append(j)
        rows.append(j)
        cols.append(i)
    data = np.ones(len(rows), dtype=np.float64)
    matrix = sp.csr_matrix((data, (rows, cols)), shape=(n, n))
    return matrix, index


def adjacency_matrix(graph: Graph) -> sp.csr_matrix:
    """The CSR adjacency matrix in node insertion order."""
    matrix, _ = adjacency_with_index(graph)
    return matrix


def laplacian_matrix(graph: Graph) -> sp.csr_matrix:
    """The combinatorial Laplacian ``L = D - A`` in node insertion order."""
    adjacency, index = adjacency_with_index(graph)
    degrees = np.asarray(adjacency.sum(axis=1)).ravel()
    return sp.diags(degrees).tocsr() - adjacency
