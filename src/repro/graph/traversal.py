"""Graph traversal primitives: BFS, DFS, components, distances.

The clique-percolation baseline needs connected components (of the clique
overlap graph), the generators need connectivity checks, and the
experiment harness reports component statistics for every dataset.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterator, List, Optional, Set

from ..errors import NodeNotFoundError
from .graph import Graph, Node

__all__ = [
    "bfs_order",
    "bfs_distances",
    "dfs_order",
    "connected_components",
    "largest_component",
    "is_connected",
    "shortest_path",
]


def bfs_order(graph: Graph, source: Node) -> Iterator[Node]:
    """Yield nodes in breadth-first order from ``source``."""
    if not graph.has_node(source):
        raise NodeNotFoundError(source)
    seen: Set[Node] = {source}
    queue: deque[Node] = deque([source])
    while queue:
        node = queue.popleft()
        yield node
        for neighbour in graph.neighbors(node):
            if neighbour not in seen:
                seen.add(neighbour)
                queue.append(neighbour)


def bfs_distances(graph: Graph, source: Node) -> Dict[Node, int]:
    """Hop distances from ``source`` to every reachable node."""
    if not graph.has_node(source):
        raise NodeNotFoundError(source)
    distances: Dict[Node, int] = {source: 0}
    queue: deque[Node] = deque([source])
    while queue:
        node = queue.popleft()
        next_distance = distances[node] + 1
        for neighbour in graph.neighbors(node):
            if neighbour not in distances:
                distances[neighbour] = next_distance
                queue.append(neighbour)
    return distances


def dfs_order(graph: Graph, source: Node) -> Iterator[Node]:
    """Yield nodes in (iterative) depth-first preorder from ``source``."""
    if not graph.has_node(source):
        raise NodeNotFoundError(source)
    seen: Set[Node] = set()
    stack: List[Node] = [source]
    while stack:
        node = stack.pop()
        if node in seen:
            continue
        seen.add(node)
        yield node
        stack.extend(
            neighbour for neighbour in graph.neighbors(node) if neighbour not in seen
        )


def connected_components(graph: Graph) -> List[Set[Node]]:
    """All connected components, largest first."""
    remaining: Set[Node] = set(graph.nodes())
    components: List[Set[Node]] = []
    while remaining:
        source = next(iter(remaining))
        component = set(bfs_order(graph, source))
        components.append(component)
        remaining -= component
    components.sort(key=len, reverse=True)
    return components


def largest_component(graph: Graph) -> Set[Node]:
    """The node set of the largest connected component (empty if no nodes)."""
    components = connected_components(graph)
    return components[0] if components else set()


def is_connected(graph: Graph) -> bool:
    """Whether the graph is connected.  The empty graph counts as connected."""
    n = graph.number_of_nodes()
    if n == 0:
        return True
    source = next(iter(graph.nodes()))
    return sum(1 for _ in bfs_order(graph, source)) == n


def shortest_path(graph: Graph, source: Node, target: Node) -> Optional[List[Node]]:
    """A shortest (unweighted) path from ``source`` to ``target``.

    Returns ``None`` when no path exists.
    """
    if not graph.has_node(target):
        raise NodeNotFoundError(target)
    if source == target:
        return [source]
    parents: Dict[Node, Node] = {}
    seen: Set[Node] = {source}
    queue: deque[Node] = deque([source])
    if not graph.has_node(source):
        raise NodeNotFoundError(source)
    while queue:
        node = queue.popleft()
        for neighbour in graph.neighbors(node):
            if neighbour in seen:
                continue
            parents[neighbour] = node
            if neighbour == target:
                path = [target]
                while path[-1] != source:
                    path.append(parents[path[-1]])
                path.reverse()
                return path
            seen.add(neighbour)
            queue.append(neighbour)
    return None
