"""Table I: the dataset inventory.

The paper's Table I lists the three dataset families (LFR benchmarks,
daisies, Wikipedia) with node and edge counts.  This experiment generates
a representative instance of each family at a configurable scale and
reports the realised counts — by default laptop-scale, with the paper's
target scales recorded alongside for context.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from .._rng import SeedLike, as_random, spawn_seed
from ..generators import (
    DaisyParams,
    LFRParams,
    WikipediaParams,
    daisy_tree,
    lfr_graph,
    wikipedia_like_graph,
)
from .reporting import ascii_table

__all__ = ["Table1Row", "Table1Result", "run_table1"]


@dataclass
class Table1Row:
    """One dataset family's realised size."""

    name: str
    nodes: int
    edges: int
    paper_nodes: str
    paper_edges: str
    communities: int


@dataclass
class Table1Result:
    """All rows of the reproduced Table I."""

    rows: List[Table1Row] = field(default_factory=list)

    def render(self) -> str:
        """The table as aligned text."""
        return ascii_table(
            ["Name", "#nodes", "#edges", "paper #nodes", "paper #edges", "#planted"],
            [
                (r.name, r.nodes, r.edges, r.paper_nodes, r.paper_edges, r.communities)
                for r in self.rows
            ],
        )


def run_table1(
    lfr_n: int = 2000,
    daisy_flowers: int = 20,
    wikipedia_n: int = 20000,
    seed: SeedLike = None,
) -> Table1Result:
    """Generate one instance per family and collect Table I rows."""
    rng = as_random(seed)
    result = Table1Result()

    lfr = lfr_graph(LFRParams(n=lfr_n), seed=spawn_seed(rng))
    result.rows.append(
        Table1Row(
            name="LFR-benchmark",
            nodes=lfr.graph.number_of_nodes(),
            edges=lfr.graph.number_of_edges(),
            paper_nodes="10^4 - 10^6",
            paper_edges="~10^5 - 10^7",
            communities=len(lfr.communities),
        )
    )

    daisy = daisy_tree(flowers=daisy_flowers, seed=spawn_seed(rng))
    result.rows.append(
        Table1Row(
            name="Daisy",
            nodes=daisy.graph.number_of_nodes(),
            edges=daisy.graph.number_of_edges(),
            paper_nodes="10^5",
            paper_edges="~4*10^5",
            communities=len(daisy.communities),
        )
    )

    wikipedia = wikipedia_like_graph(
        WikipediaParams(n=wikipedia_n), seed=spawn_seed(rng)
    )
    result.rows.append(
        Table1Row(
            name="Wikipedia (synthetic)",
            nodes=wikipedia.graph.number_of_nodes(),
            edges=wikipedia.graph.number_of_edges(),
            paper_nodes="16,986,429",
            paper_edges="176,454,501",
            communities=len(wikipedia.topics),
        )
    )
    return result


if __name__ == "__main__":
    print(run_table1(seed=0).render())
