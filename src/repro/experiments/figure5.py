"""Figure 5: execution time against graph size (log-scale y in the paper).

The paper generates LFR graphs with av.deg = 50, max.deg = 150 and
community sizes in [500, 700], sweeps n from 5,000 to 25,000, and times
the three algorithms *without post-processing*.  Expected shape:

* CFinder is orders of magnitude slower and blows up first (the clique
  enumeration), to the point the paper discards it for larger graphs;
* OCA is the fastest and scales near-linearly;
* LFK sits between the two.

The default parameters here are scaled down proportionally (Python
substrate, see DESIGN.md §2); ``paper_scale=True`` restores the paper's
exact generator parameters for long runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from .._rng import SeedLike, as_random, spawn_seed
from ..generators import LFRParams, lfr_graph
from .reporting import Series, series_table
from .runner import run_algorithm

__all__ = ["Figure5Result", "run_figure5", "DEFAULT_SIZES"]

DEFAULT_SIZES = (500, 1000, 2000, 4000)

#: CFinder is dropped from sizes above this default cap, mirroring the
#: paper's "prohibitively slow ... we discard it" decision.
DEFAULT_CFINDER_CAP = 2000


@dataclass
class Figure5Result:
    """Runtime-vs-n series per algorithm (CFinder may stop early)."""

    series: List[Series] = field(default_factory=list)

    def render(self) -> str:
        """The figure's data as an aligned text table (seconds)."""
        return series_table(self.series, x_label="nodes")

    def series_by_name(self, name: str) -> Series:
        """The curve of one algorithm."""
        for s in self.series:
            if s.name == name:
                return s
        raise KeyError(name)


def _params_for(n: int, paper_scale: bool) -> LFRParams:
    if paper_scale:
        return LFRParams(
            n=n,
            mu=0.3,
            average_degree=50.0,
            max_degree=150,
            min_community=500,
            max_community=700,
        )
    return LFRParams(
        n=n,
        mu=0.3,
        average_degree=20.0,
        max_degree=60,
        min_community=40,
        max_community=80,
    )


def run_figure5(
    sizes: Sequence[int] = DEFAULT_SIZES,
    algorithms: Sequence[str] = ("OCA", "LFK", "CFinder"),
    cfinder_cap: Optional[int] = DEFAULT_CFINDER_CAP,
    paper_scale: bool = False,
    seed: SeedLike = None,
) -> Figure5Result:
    """Reproduce Figure 5 at a configurable scale.

    No post-processing is applied (matching the paper).  ``cfinder_cap``
    skips CFinder above that size; ``None`` never skips.
    """
    rng = as_random(seed)
    result = Figure5Result(series=[Series(name) for name in algorithms])
    for n in sizes:
        instance = lfr_graph(_params_for(n, paper_scale), seed=spawn_seed(rng))
        for series, name in zip(result.series, algorithms):
            if name == "CFinder" and cfinder_cap is not None and n > cfinder_cap:
                continue
            run = run_algorithm(
                name, instance.graph, seed=spawn_seed(rng), quality_mode=False
            )
            series.append(n, run.elapsed_seconds)
    return result


if __name__ == "__main__":
    print(run_figure5(seed=0).render())
