"""The experiment harness: one module per paper artefact.

========  =====================================  =======================
Artefact  Module                                 Bench target
========  =====================================  =======================
Table I   :mod:`~repro.experiments.table1`       bench_table1.py
Figure 2  :mod:`~repro.experiments.figure2`      bench_figure2.py
Figure 3  :mod:`~repro.experiments.figure3`      bench_figure3.py
Figure 4  :mod:`~repro.experiments.figure4`      bench_figure4.py
Figure 5  :mod:`~repro.experiments.figure5`      bench_figure5.py
Figure 6  :mod:`~repro.experiments.figure6`      bench_figure6.py
§V-B run  :mod:`~repro.experiments.wikipedia_run`  bench_wikipedia.py
========  =====================================  =======================
"""

from .timing import Timer, time_call, TimingLog
from .reporting import ascii_table, Series, series_table
from .runner import (
    AlgorithmRun,
    run_algorithm,
    run_replicates,
    run_sweep,
    ALGORITHMS,
)
from .table1 import Table1Row, Table1Result, run_table1
from .figure2 import Figure2Result, run_figure2, DEFAULT_MUS
from .figure3 import Figure3Result, run_figure3, DEFAULT_FLOWER_COUNTS
from .figure4 import Figure4Result, PartMatch, run_figure4
from .figure5 import Figure5Result, run_figure5, DEFAULT_SIZES
from .figure6 import Figure6Result, run_figure6, DEFAULT_COMMUNITY_SIZES
from .wikipedia_run import WikipediaRunResult, run_wikipedia

__all__ = [
    "Timer",
    "time_call",
    "TimingLog",
    "ascii_table",
    "Series",
    "series_table",
    "AlgorithmRun",
    "run_algorithm",
    "run_replicates",
    "run_sweep",
    "ALGORITHMS",
    "Table1Row",
    "Table1Result",
    "run_table1",
    "Figure2Result",
    "run_figure2",
    "DEFAULT_MUS",
    "Figure3Result",
    "run_figure3",
    "DEFAULT_FLOWER_COUNTS",
    "Figure4Result",
    "PartMatch",
    "run_figure4",
    "Figure5Result",
    "run_figure5",
    "DEFAULT_SIZES",
    "Figure6Result",
    "run_figure6",
    "DEFAULT_COMMUNITY_SIZES",
    "WikipediaRunResult",
    "run_wikipedia",
]
