"""Plain-text rendering of experiment outputs.

The paper's figures are line charts; this reproduction regenerates the
*data* behind each figure and renders it as aligned text tables (the
series) so a terminal run of the benchmark suite shows the same numbers
the plots would.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence

__all__ = ["ascii_table", "Series", "series_table"]


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def ascii_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render rows as an aligned ASCII table with a header rule."""
    rendered_rows = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()
    rule = "  ".join("-" * w for w in widths)
    body = "\n".join(line(row) for row in rendered_rows)
    return "\n".join([line(list(headers)), rule, body]) if rendered_rows else "\n".join(
        [line(list(headers)), rule]
    )


@dataclass
class Series:
    """One named curve: parallel x and y sequences."""

    name: str
    xs: List[float] = field(default_factory=list)
    ys: List[float] = field(default_factory=list)

    def append(self, x: float, y: float) -> None:
        """Add one point."""
        self.xs.append(x)
        self.ys.append(y)


def series_table(series: Sequence[Series], x_label: str) -> str:
    """Render several curves sharing an x-axis as one table.

    Missing points (a curve lacking some x) render as ``-`` — Figure 5's
    CFinder column stops early, for example.
    """
    xs: List[float] = sorted({x for s in series for x in s.xs})
    headers = [x_label] + [s.name for s in series]
    lookup: List[Dict[float, float]] = [dict(zip(s.xs, s.ys)) for s in series]
    rows = []
    for x in xs:
        row: List[object] = [x]
        for points in lookup:
            row.append(points.get(x, "-"))
        rows.append(row)
    return ascii_table(headers, rows)
