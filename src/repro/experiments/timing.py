"""Wall-clock instrumentation for the runtime experiments (Figures 5/6)."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Tuple

__all__ = ["Timer", "time_call", "TimingLog"]


class Timer:
    """Context manager measuring elapsed wall-clock seconds.

    >>> with Timer() as timer:
    ...     total = sum(range(1000))
    >>> total
    499500
    >>> timer.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.elapsed: float = 0.0
        self._start: float = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.elapsed = time.perf_counter() - self._start


def time_call(function: Callable, *args, **kwargs) -> Tuple[Any, float]:
    """Call ``function`` and return ``(result, elapsed_seconds)``."""
    with Timer() as timer:
        result = function(*args, **kwargs)
    return result, timer.elapsed


@dataclass
class TimingLog:
    """Accumulates named timing samples across an experiment sweep."""

    samples: Dict[str, List[float]] = field(default_factory=dict)

    def record(self, name: str, seconds: float) -> None:
        """Append one sample under ``name``."""
        self.samples.setdefault(name, []).append(seconds)

    def mean(self, name: str) -> float:
        """Mean of the samples recorded under ``name``."""
        values = self.samples[name]
        return sum(values) / len(values)

    def total(self, name: str) -> float:
        """Sum of the samples recorded under ``name``."""
        return sum(self.samples[name])
