"""Figure 6: execution time against planted community size ``k``.

The paper generates LFR graphs whose community sizes fall in
``[k, k + 50]`` for increasing ``k`` (50 .. 450), with av.deg = 50 and
max.deg = 150, and times OCA and LFK ("CFinder was not able to perform
these experiments in a reasonable time").  Expected shape: OCA's runtime
stays roughly flat as communities grow, while LFK's climbs — the paper's
"support of big communities" claim.

Scaled defaults below keep the sweep in seconds; ``paper_scale=True``
restores the paper's generator parameters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from .._rng import SeedLike, as_random, spawn_seed
from ..generators import LFRParams, lfr_graph
from .reporting import Series, series_table
from .runner import run_algorithm

__all__ = ["Figure6Result", "run_figure6", "DEFAULT_COMMUNITY_SIZES"]

DEFAULT_COMMUNITY_SIZES = (100, 150, 200, 300, 400)


@dataclass
class Figure6Result:
    """Runtime-vs-community-size series for OCA and LFK."""

    series: List[Series] = field(default_factory=list)

    def render(self) -> str:
        """The figure's data as an aligned text table (seconds)."""
        return series_table(self.series, x_label="community size k")

    def series_by_name(self, name: str) -> Series:
        """The curve of one algorithm."""
        for s in self.series:
            if s.name == name:
                return s
        raise KeyError(name)


def run_figure6(
    community_sizes: Sequence[int] = DEFAULT_COMMUNITY_SIZES,
    n: int = 2000,
    algorithms: Sequence[str] = ("OCA", "LFK"),
    size_window: int = 50,
    paper_scale: bool = False,
    seed: SeedLike = None,
) -> Figure6Result:
    """Reproduce Figure 6 at a configurable scale.

    Communities are planted with sizes in ``[k, k + size_window]``, the
    paper's window.  No post-processing (timing experiment).
    """
    rng = as_random(seed)
    result = Figure6Result(series=[Series(name) for name in algorithms])
    for k in community_sizes:
        if paper_scale:
            params = LFRParams(
                n=n,
                mu=0.3,
                average_degree=50.0,
                max_degree=150,
                min_community=k,
                max_community=k + 50,
            )
        else:
            params = LFRParams(
                n=n,
                mu=0.3,
                average_degree=20.0,
                max_degree=60,
                min_community=k,
                max_community=k + size_window,
            )
        instance = lfr_graph(params, seed=spawn_seed(rng))
        for series, name in zip(result.series, algorithms):
            run = run_algorithm(
                name, instance.graph, seed=spawn_seed(rng), quality_mode=False
            )
            series.append(k, run.elapsed_seconds)
    return result


if __name__ == "__main__":
    print(run_figure6(seed=0).render())
