"""The Section V-B closing experiment: OCA on the Wikipedia-scale graph.

"Finally, we ran OCA on the Wikipedia dataset, and found all relevant
communities in less than 3.25 hours."  The reproduction generates the
synthetic Wikipedia-like graph (see DESIGN.md §2 for the substitution)
and demonstrates the same property: OCA completes end-to-end, with a
bounded memory footprint, and the runtime is reported so EXPERIMENTS.md
can compare scaling against the paper's single data point.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from .._rng import SeedLike, as_random, spawn_seed
from ..communities import overlap_statistics, theta
from ..core import OCAConfig, StagnationHalting
from ..detection import DetectionRequest
from ..detectors import get_detector
from ..generators import WikipediaParams, wikipedia_like_graph

__all__ = ["WikipediaRunResult", "run_wikipedia"]


@dataclass
class WikipediaRunResult:
    """Outcome of the large-graph end-to-end run."""

    nodes: int
    edges: int
    communities: int
    generation_seconds: float
    oca_seconds: float
    theta_vs_topics: float
    mean_memberships: float

    def render(self) -> str:
        """One-paragraph text report."""
        return (
            f"wikipedia-like graph: {self.nodes} nodes, {self.edges} edges\n"
            f"generation: {self.generation_seconds:.2f}s, "
            f"OCA: {self.oca_seconds:.2f}s\n"
            f"communities found: {self.communities} "
            f"(mean memberships {self.mean_memberships:.2f})\n"
            f"Theta against planted topics: {self.theta_vs_topics:.3f}"
        )


def run_wikipedia(
    n: int = 20000,
    params: Optional[WikipediaParams] = None,
    patience: int = 30,
    seed: SeedLike = None,
) -> WikipediaRunResult:
    """Generate the graph and run OCA end-to-end.

    ``patience`` feeds the stagnation halting criterion: on a graph this
    size full coverage is not the goal (exactly the paper's stance), so
    OCA stops after that many consecutive runs without a new community.
    """
    rng = as_random(seed)
    if params is None:
        params = WikipediaParams(n=n)
    start = time.perf_counter()
    instance = wikipedia_like_graph(params, seed=spawn_seed(rng))
    generation_seconds = time.perf_counter() - start

    config = OCAConfig(
        seeding="uncovered",
        halting=StagnationHalting(patience=patience),
        merge_threshold=0.75,
        assign_orphans=False,
    )
    result = get_detector("oca").detect(
        DetectionRequest(
            graph=instance.graph,
            seed=spawn_seed(rng),
            params={"config": config},
        )
    )
    quality = (
        theta(instance.topics, result.cover) if len(result.cover) else 0.0
    )
    stats = overlap_statistics(result.cover)
    return WikipediaRunResult(
        nodes=instance.graph.number_of_nodes(),
        edges=instance.graph.number_of_edges(),
        communities=len(result.cover),
        generation_seconds=generation_seconds,
        oca_seconds=result.elapsed_seconds,
        theta_vs_topics=quality,
        mean_memberships=stats["mean_memberships"],
    )


if __name__ == "__main__":
    print(run_wikipedia(n=5000, seed=0).render())
