"""Figure 3: quality (``Theta``) against daisy-tree size.

The paper grows daisy trees from ~100 to ~100,000 nodes and plots
``Theta(D, O)`` for the three algorithms.  Expected shape: OCA ahead of
both LFK and CFinder across all sizes, because petals and core genuinely
overlap and only a method that can re-use nodes across communities can
match the planted structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from .._rng import SeedLike, as_random, spawn_seed
from ..communities import theta
from ..generators import DaisyParams, daisy_tree
from .reporting import Series, series_table
from .runner import ALGORITHMS, run_algorithm

__all__ = ["Figure3Result", "run_figure3", "DEFAULT_FLOWER_COUNTS"]

#: Tree sizes as flower counts; with the default 60-node daisies these
#: give ~120 .. ~7680 nodes (the paper's axis reaches 1e5; the shape is
#: size-stable, and the benchmark accepts larger counts).
DEFAULT_FLOWER_COUNTS = (2, 8, 32, 128)


@dataclass
class Figure3Result:
    """The reproduced Figure 3: ``Theta`` vs tree size per algorithm."""

    series: List[Series] = field(default_factory=list)

    def render(self) -> str:
        """The figure's data as an aligned text table."""
        return series_table(self.series, x_label="nodes")

    def series_by_name(self, name: str) -> Series:
        """The curve of one algorithm."""
        for s in self.series:
            if s.name == name:
                return s
        raise KeyError(name)


def run_figure3(
    flower_counts: Sequence[int] = DEFAULT_FLOWER_COUNTS,
    params: DaisyParams = DaisyParams(),
    algorithms: Sequence[str] = ALGORITHMS,
    seed: SeedLike = None,
) -> Figure3Result:
    """Reproduce Figure 3 at a configurable scale."""
    rng = as_random(seed)
    result = Figure3Result(series=[Series(name) for name in algorithms])
    for flowers in flower_counts:
        instance = daisy_tree(flowers=flowers, params=params, seed=spawn_seed(rng))
        size = instance.graph.number_of_nodes()
        for series, name in zip(result.series, algorithms):
            run = run_algorithm(
                name, instance.graph, seed=spawn_seed(rng), quality_mode=True
            )
            value = (
                theta(instance.communities, run.cover) if len(run.cover) else 0.0
            )
            series.append(size, value)
    return result


if __name__ == "__main__":
    print(run_figure3(seed=0).render())
