"""A uniform way to run any of the paper's algorithms on any graph.

Section V-A of the paper applies its post-processing "to all the results"
because it "also improve[s] the quality of the other algorithms" — so the
quality experiments here run every algorithm through the same
post-processing pipeline.  The runtime experiments (Section V-B) run the
raw algorithms, "we do not run any post-processing".

Dispatch goes through the detector registry
(:func:`repro.detectors.get_detector`): the figure labels (``OCA``,
``LFK``, ``CFinder``) double as registry keys, so any algorithm
registered with :func:`repro.detectors.register_detector` — including
``cpm`` and downstream additions — is runnable here without adapter
wiring.  Per-algorithm experiment parameterisation (the paper's choices)
lives in :data:`EXPERIMENT_PARAMS`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from .._rng import SeedLike, as_random, spawn_seed, spawn_streams
from ..communities import Cover
from ..core import postprocess
from ..core.vector_space import shared_admissible_c
from ..detection import DetectionRequest
from ..detectors import get_detector
from ..engine import make_backend
from ..errors import AlgorithmError
from ..graph import Graph
from ..graph.csr import CompiledGraph, attach_compiled, compile_graph

__all__ = [
    "AlgorithmRun",
    "run_algorithm",
    "run_replicates",
    "run_sweep",
    "ALGORITHMS",
    "EXPERIMENT_PARAMS",
]

#: Canonical algorithm names, as the figures label them.
ALGORITHMS = ("OCA", "LFK", "CFinder")

#: The paper's parameterisation of each algorithm, keyed by registry
#: name.  OCA defers its own merge step to the shared post-processing
#: pass (so all algorithms receive identical treatment); LFK uses "the
#: standard parameter alpha = 1"; CFinder runs at "the value of the
#: parameter k that yielded the best results" (k = 3, the detector's
#: default).
EXPERIMENT_PARAMS: Dict[str, Dict[str, Any]] = {
    "oca": {
        "merge_threshold": None,
        "assign_orphans": False,
        "seeding": "uncovered",
    },
    "lfk": {"alpha": 1.0},
    "cfinder": {},
    "cpm": {},
    "modularity_greedy": {},
}


@dataclass
class AlgorithmRun:
    """One algorithm execution: its cover and wall-clock time."""

    algorithm: str
    cover: Cover
    elapsed_seconds: float


def run_algorithm(
    name: str,
    graph: Graph,
    seed: SeedLike = None,
    quality_mode: bool = True,
    merge_threshold: float = 0.4,
    assign_orphans: bool = True,
    workers: int = 1,
    backend: str = "auto",
    batch_size: Optional[int] = None,
    representation: str = "auto",
    shipping: str = "auto",
    spectral_solver: str = "power",
) -> AlgorithmRun:
    """Run one algorithm by figure label or registry key.

    ``quality_mode=True`` (Figures 2/3) applies the shared post-processing
    — merge then orphan assignment — to whatever the algorithm returned.
    ``quality_mode=False`` (Figures 5/6) times the raw algorithm only.
    ``representation`` picks the graph substrate (``dict`` / ``csr``)
    for every algorithm; ``workers``/``backend``/``batch_size``/
    ``shipping`` configure the execution engine for algorithms that
    support it (currently OCA; the baselines are inherently sequential
    and ignore them), and
    ``spectral_solver`` picks OCA's cold ``c`` resolution (power method
    or Lanczos).
    """
    detector = get_detector(name)
    params = dict(EXPERIMENT_PARAMS.get(detector.name, {}))
    if detector.name == "oca" and spectral_solver != "power":
        params["spectral_solver"] = spectral_solver
    rng = as_random(seed)
    start = time.perf_counter()
    result = detector.detect(
        DetectionRequest(
            graph=graph,
            seed=spawn_seed(rng),
            params=params,
            workers=workers,
            backend=backend,
            batch_size=batch_size,
            representation=representation,
            shipping=shipping,
        )
    )
    cover = result.cover
    elapsed = time.perf_counter() - start
    if quality_mode:
        cover = postprocess(
            graph,
            cover,
            merge_threshold=merge_threshold,
            orphans=assign_orphans,
        )
    return AlgorithmRun(algorithm=name, cover=cover, elapsed_seconds=elapsed)


# ----------------------------------------------------------------------
# Replicate fan-out
# ----------------------------------------------------------------------
#
# Quality experiments average over replicate runs that are completely
# independent — the other embarrassingly parallel axis besides OCA's
# inner loop.  The engine's backends fan them out; each replicate gets a
# private stream seed via spawn_streams, so the result set is identical
# for any worker count (and to the serial backend).  The graph ships
# once per worker through the pool initializer (the same pattern as
# :mod:`repro.engine.tasks`), so per-replicate payloads stay tiny.
# Under the csr representation the compiled arrays ride along — spectral
# cache included — and are attached to the worker's graph cache, so
# every replicate in a worker reuses one compiled graph and one cached
# ``c`` instead of recompiling and re-running the power method.

_ReplicatePayload = Tuple[str, int, bool, float, bool, str]

_REPLICATE_GRAPH: Optional[Graph] = None


def _initialize_replicates(
    graph: Graph, compiled: Optional[CompiledGraph] = None
) -> None:
    """Pool initializer: install the shared graph (and its compiled form)."""
    global _REPLICATE_GRAPH
    if compiled is not None:
        attach_compiled(graph, compiled)
    _REPLICATE_GRAPH = graph


def _execute_replicate(payload: _ReplicatePayload) -> AlgorithmRun:
    """Module-level worker entry point (picklable for process pools)."""
    name, seed, quality_mode, merge_threshold, assign_orphans, representation = payload
    if _REPLICATE_GRAPH is None:
        raise AlgorithmError("replicate worker used before initialisation")
    return run_algorithm(
        name,
        _REPLICATE_GRAPH,
        seed=seed,
        quality_mode=quality_mode,
        merge_threshold=merge_threshold,
        assign_orphans=assign_orphans,
        representation=representation,
    )


def run_replicates(
    name: str,
    graph: Graph,
    replicates: int,
    seed: SeedLike = None,
    quality_mode: bool = True,
    merge_threshold: float = 0.4,
    assign_orphans: bool = True,
    workers: int = 1,
    backend: str = "auto",
    representation: str = "auto",
) -> List[AlgorithmRun]:
    """Run ``replicates`` independent executions, fanned out over a pool.

    Returns the runs in replicate order.  Replicate ``i`` uses stream
    seed ``spawn_streams(seed, replicates)[i]``, so the same call with
    more workers returns byte-identical covers, just sooner.

    For OCA under the ``auto``/``csr`` representation the graph is
    compiled once here, in the driver, and shipped to every worker next
    to the dict graph; replicates then hit the worker-local compiled
    cache (spectral ``c`` included) instead of each paying the
    O(n + m) compile and the power method.
    """
    if replicates < 1:
        raise AlgorithmError(f"replicates must be >= 1, got {replicates}")
    detector_name = get_detector(name).name  # validates the name up front
    seeds = spawn_streams(seed, replicates)
    payloads: List[_ReplicatePayload] = [
        (name, s, quality_mode, merge_threshold, assign_orphans, representation)
        for s in seeds
    ]
    compiled: Optional[CompiledGraph] = None
    if detector_name == "oca" and representation in ("auto", "csr"):
        compiled = compile_graph(graph)
        # Resolve the spectral c once in the driver so the shipped
        # compiled form carries it and no worker re-runs the power
        # method (the dominant cold-start cost at scale).
        shared_admissible_c(graph)
    pool = make_backend(
        backend,
        workers,
        initializer=_initialize_replicates,
        initargs=(graph, compiled),
    )
    try:
        return pool.map_ordered(_execute_replicate, payloads)
    finally:
        pool.close()


# ----------------------------------------------------------------------
# Multi-graph sweeps through the serving layer
# ----------------------------------------------------------------------
def run_sweep(
    name: str,
    graphs,
    replicates: int = 1,
    seed: SeedLike = None,
    quality_mode: bool = True,
    merge_threshold: float = 0.4,
    assign_orphans: bool = True,
    manager=None,
    max_sessions: Optional[int] = None,
    workers: int = 1,
    backend: str = "auto",
    batch_size: Optional[int] = None,
    representation: str = "auto",
) -> "List[List[AlgorithmRun]]":
    """Replicate runs over *many* graphs, served from one warm manager.

    The quality experiments sweep one algorithm over a family of LFR
    instances; running each ``(graph, replicate)`` through
    :func:`run_algorithm` re-pays graph compilation and the spectral
    ``c`` for every replicate.  This routes the whole sweep through a
    :class:`~repro.serving.SessionManager` instead: each graph binds a
    session once (its replicates all hit warm state), and the LRU keeps
    the working set bounded when the family outgrows memory.

    Seeds mirror the established derivation exactly — graph ``i`` gets
    base seed ``spawn_streams(seed, len(graphs))[i]``, its replicate
    ``j`` gets ``spawn_streams(base, replicates)[j]`` — so
    ``result[i]`` is byte-identical (cover for cover) to
    ``run_replicates(name, graphs[i], replicates,
    seed=spawn_streams(seed, len(graphs))[i])``.

    ``manager`` lets callers share one manager across sweeps (it is left
    open, and its own engine configuration governs); otherwise a private
    manager sized ``max_sessions`` (default: the whole family) is
    created with the supplied engine knobs
    (``workers``/``backend``/``batch_size``/``representation``, the
    same surface as :func:`run_replicates`) and closed on exit.
    Returns one list of :class:`AlgorithmRun` per graph, in graph
    order.
    """
    from ..serving import SessionManager

    graphs = list(graphs)
    if replicates < 1:
        raise AlgorithmError(f"replicates must be >= 1, got {replicates}")
    detector_name = get_detector(name).name  # validates the name up front
    graph_seeds = spawn_streams(seed, len(graphs))
    owns_manager = manager is None
    if owns_manager:
        manager = SessionManager(
            # None-check, not truthiness: an explicit max_sessions=0
            # must reach SessionManager's validation, not be masked.
            max_sessions=(
                max_sessions if max_sessions is not None else max(1, len(graphs))
            ),
            workers=workers,
            backend=backend,
            batch_size=batch_size,
            representation=representation,
        )
    try:
        sweeps: List[List[AlgorithmRun]] = []
        for graph, graph_seed in zip(graphs, graph_seeds):
            runs: List[AlgorithmRun] = []
            for replicate_seed in spawn_streams(graph_seed, replicates):
                # The same derivation chain as run_algorithm: the
                # detect seed is spawned from the replicate seed, so
                # covers match the run_replicates path draw-for-draw.
                rng = as_random(replicate_seed)
                start = time.perf_counter()
                result = manager.detect(
                    graph,
                    detector_name,
                    seed=spawn_seed(rng),
                    **EXPERIMENT_PARAMS.get(detector_name, {}),
                )
                cover = result.cover
                elapsed = time.perf_counter() - start
                if quality_mode:
                    cover = postprocess(
                        graph,
                        cover,
                        merge_threshold=merge_threshold,
                        orphans=assign_orphans,
                    )
                runs.append(
                    AlgorithmRun(
                        algorithm=name, cover=cover, elapsed_seconds=elapsed
                    )
                )
            sweeps.append(runs)
        return sweeps
    finally:
        if owns_manager:
            manager.close()
