"""A uniform way to run any of the three algorithms on any graph.

Section V-A of the paper applies its post-processing "to all the results"
because it "also improve[s] the quality of the other algorithms" — so the
quality experiments here run every algorithm through the same
post-processing pipeline.  The runtime experiments (Section V-B) run the
raw algorithms, "we do not run any post-processing".
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from .._rng import SeedLike, as_random, spawn_seed
from ..baselines import cfinder, lfk
from ..communities import Cover
from ..core import OCAConfig, oca, postprocess
from ..errors import AlgorithmError
from ..graph import Graph

__all__ = ["AlgorithmRun", "run_algorithm", "ALGORITHMS"]

#: Canonical algorithm names, as the figures label them.
ALGORITHMS = ("OCA", "LFK", "CFinder")


@dataclass
class AlgorithmRun:
    """One algorithm execution: its cover and wall-clock time."""

    algorithm: str
    cover: Cover
    elapsed_seconds: float


def _run_oca(graph: Graph, seed: SeedLike, quality_mode: bool) -> Cover:
    # In quality mode OCA's own merge step is deferred to the shared
    # post-processing pass so all algorithms receive identical treatment.
    config = OCAConfig(
        merge_threshold=None,
        assign_orphans=False,
        seeding="uncovered",
    )
    return oca(graph, seed=seed, config=config).raw_cover


def _run_lfk(graph: Graph, seed: SeedLike, quality_mode: bool) -> Cover:
    return lfk(graph, alpha=1.0, seed=seed).cover


def _run_cfinder(graph: Graph, seed: SeedLike, quality_mode: bool) -> Cover:
    return cfinder(graph, k=3)


_RUNNERS: Dict[str, Callable[[Graph, SeedLike, bool], Cover]] = {
    "OCA": _run_oca,
    "LFK": _run_lfk,
    "CFinder": _run_cfinder,
}


def run_algorithm(
    name: str,
    graph: Graph,
    seed: SeedLike = None,
    quality_mode: bool = True,
    merge_threshold: float = 0.4,
    assign_orphans: bool = True,
) -> AlgorithmRun:
    """Run one algorithm by figure label (``OCA``, ``LFK``, ``CFinder``).

    ``quality_mode=True`` (Figures 2/3) applies the shared post-processing
    — merge then orphan assignment — to whatever the algorithm returned.
    ``quality_mode=False`` (Figures 5/6) times the raw algorithm only.
    """
    try:
        runner = _RUNNERS[name]
    except KeyError:
        valid = ", ".join(ALGORITHMS)
        raise AlgorithmError(f"unknown algorithm {name!r}; expected one of {valid}")
    rng = as_random(seed)
    start = time.perf_counter()
    cover = runner(graph, spawn_seed(rng), quality_mode)
    elapsed = time.perf_counter() - start
    if quality_mode:
        cover = postprocess(
            graph,
            cover,
            merge_threshold=merge_threshold,
            orphans=assign_orphans,
        )
    return AlgorithmRun(algorithm=name, cover=cover, elapsed_seconds=elapsed)
