"""A uniform way to run any of the three algorithms on any graph.

Section V-A of the paper applies its post-processing "to all the results"
because it "also improve[s] the quality of the other algorithms" — so the
quality experiments here run every algorithm through the same
post-processing pipeline.  The runtime experiments (Section V-B) run the
raw algorithms, "we do not run any post-processing".
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .._rng import SeedLike, as_random, spawn_seed, spawn_streams
from ..baselines import cfinder, lfk
from ..communities import Cover
from ..core import OCAConfig, oca, postprocess
from ..engine import make_backend
from ..errors import AlgorithmError
from ..graph import Graph
from ..graph.csr import CompiledGraph, attach_compiled, compile_graph

__all__ = ["AlgorithmRun", "run_algorithm", "run_replicates", "ALGORITHMS"]

#: Canonical algorithm names, as the figures label them.
ALGORITHMS = ("OCA", "LFK", "CFinder")


@dataclass
class AlgorithmRun:
    """One algorithm execution: its cover and wall-clock time."""

    algorithm: str
    cover: Cover
    elapsed_seconds: float


def _run_oca(
    graph: Graph, seed: SeedLike, quality_mode: bool, engine_opts: Dict
) -> Cover:
    # In quality mode OCA's own merge step is deferred to the shared
    # post-processing pass so all algorithms receive identical treatment.
    config = OCAConfig(
        merge_threshold=None,
        assign_orphans=False,
        seeding="uncovered",
        **engine_opts,
    )
    return oca(graph, seed=seed, config=config).raw_cover


def _run_lfk(
    graph: Graph, seed: SeedLike, quality_mode: bool, engine_opts: Dict
) -> Cover:
    return lfk(graph, alpha=1.0, seed=seed).cover


def _run_cfinder(
    graph: Graph, seed: SeedLike, quality_mode: bool, engine_opts: Dict
) -> Cover:
    return cfinder(graph, k=3)


_RUNNERS: Dict[str, Callable[[Graph, SeedLike, bool, Dict], Cover]] = {
    "OCA": _run_oca,
    "LFK": _run_lfk,
    "CFinder": _run_cfinder,
}


def run_algorithm(
    name: str,
    graph: Graph,
    seed: SeedLike = None,
    quality_mode: bool = True,
    merge_threshold: float = 0.4,
    assign_orphans: bool = True,
    workers: int = 1,
    backend: str = "auto",
    batch_size: Optional[int] = None,
    representation: str = "auto",
) -> AlgorithmRun:
    """Run one algorithm by figure label (``OCA``, ``LFK``, ``CFinder``).

    ``quality_mode=True`` (Figures 2/3) applies the shared post-processing
    — merge then orphan assignment — to whatever the algorithm returned.
    ``quality_mode=False`` (Figures 5/6) times the raw algorithm only.
    ``workers``/``backend``/``batch_size``/``representation`` configure
    the execution engine for algorithms that support it (currently OCA;
    the baselines are inherently sequential and ignore them).
    """
    try:
        runner = _RUNNERS[name]
    except KeyError:
        valid = ", ".join(ALGORITHMS)
        raise AlgorithmError(f"unknown algorithm {name!r}; expected one of {valid}")
    engine_opts = {
        "workers": workers,
        "backend": backend,
        "batch_size": batch_size,
        "representation": representation,
    }
    rng = as_random(seed)
    start = time.perf_counter()
    cover = runner(graph, spawn_seed(rng), quality_mode, engine_opts)
    elapsed = time.perf_counter() - start
    if quality_mode:
        cover = postprocess(
            graph,
            cover,
            merge_threshold=merge_threshold,
            orphans=assign_orphans,
        )
    return AlgorithmRun(algorithm=name, cover=cover, elapsed_seconds=elapsed)


# ----------------------------------------------------------------------
# Replicate fan-out
# ----------------------------------------------------------------------
#
# Quality experiments average over replicate runs that are completely
# independent — the other embarrassingly parallel axis besides OCA's
# inner loop.  The engine's backends fan them out; each replicate gets a
# private stream seed via spawn_streams, so the result set is identical
# for any worker count (and to the serial backend).  The graph ships
# once per worker through the pool initializer (the same pattern as
# :mod:`repro.engine.tasks`), so per-replicate payloads stay tiny.
# Under the csr representation the compiled arrays ride along and are
# attached to the worker's graph cache, so every replicate in a worker
# reuses one compiled graph instead of recompiling (or, worse,
# re-pickling the dict graph per payload).

_ReplicatePayload = Tuple[str, int, bool, float, bool, str]

_REPLICATE_GRAPH: Optional[Graph] = None


def _initialize_replicates(
    graph: Graph, compiled: Optional[CompiledGraph] = None
) -> None:
    """Pool initializer: install the shared graph (and its compiled form)."""
    global _REPLICATE_GRAPH
    if compiled is not None:
        attach_compiled(graph, compiled)
    _REPLICATE_GRAPH = graph


def _execute_replicate(payload: _ReplicatePayload) -> AlgorithmRun:
    """Module-level worker entry point (picklable for process pools)."""
    name, seed, quality_mode, merge_threshold, assign_orphans, representation = payload
    if _REPLICATE_GRAPH is None:
        raise AlgorithmError("replicate worker used before initialisation")
    return run_algorithm(
        name,
        _REPLICATE_GRAPH,
        seed=seed,
        quality_mode=quality_mode,
        merge_threshold=merge_threshold,
        assign_orphans=assign_orphans,
        representation=representation,
    )


def run_replicates(
    name: str,
    graph: Graph,
    replicates: int,
    seed: SeedLike = None,
    quality_mode: bool = True,
    merge_threshold: float = 0.4,
    assign_orphans: bool = True,
    workers: int = 1,
    backend: str = "auto",
    representation: str = "auto",
) -> List[AlgorithmRun]:
    """Run ``replicates`` independent executions, fanned out over a pool.

    Returns the runs in replicate order.  Replicate ``i`` uses stream
    seed ``spawn_streams(seed, replicates)[i]``, so the same call with
    more workers returns byte-identical covers, just sooner.

    For OCA under the ``auto``/``csr`` representation the graph is
    compiled once here, in the driver, and shipped to every worker next
    to the dict graph; replicates then hit the worker-local compiled
    cache instead of each paying the O(n + m) compile.
    """
    if replicates < 1:
        raise AlgorithmError(f"replicates must be >= 1, got {replicates}")
    seeds = spawn_streams(seed, replicates)
    payloads: List[_ReplicatePayload] = [
        (name, s, quality_mode, merge_threshold, assign_orphans, representation)
        for s in seeds
    ]
    compiled: Optional[CompiledGraph] = None
    if name == "OCA" and representation in ("auto", "csr"):
        compiled = compile_graph(graph)
    pool = make_backend(
        backend,
        workers,
        initializer=_initialize_replicates,
        initargs=(graph, compiled),
    )
    try:
        return pool.map_ordered(_execute_replicate, payloads)
    finally:
        pool.close()
