"""Figure 2: quality (``Theta``) against the mixing parameter ``mu``.

The paper sweeps LFR benchmarks over ``mu`` in roughly ``0.2 .. 0.8`` and
plots ``Theta(F, O)`` for OCA, LFK (alpha = 1), and CFinder (k = 3), with
the shared post-processing applied to all three.  Expected shape:

* OCA finds nearly the exact structure for ``mu <= 0.5`` and stays
  reliable to ``mu ~ 0.7``;
* LFK tracks OCA closely;
* CFinder trails both across the range;
* everything decays as ``mu`` passes the no-structure threshold 0.5.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from .._rng import SeedLike, as_random, spawn_seed
from ..communities import theta
from ..generators import LFRParams, lfr_graph
from .reporting import Series, series_table
from .runner import ALGORITHMS, run_algorithm

__all__ = ["Figure2Result", "run_figure2", "DEFAULT_MUS"]

DEFAULT_MUS: Tuple[float, ...] = (0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8)


@dataclass
class Figure2Result:
    """The reproduced Figure 2: one ``Theta``-vs-``mu`` series per algorithm."""

    series: List[Series] = field(default_factory=list)
    n: int = 0
    repeats: int = 1

    def render(self) -> str:
        """The figure's data as an aligned text table."""
        return series_table(self.series, x_label="mu")

    def series_by_name(self, name: str) -> Series:
        """The curve of one algorithm."""
        for s in self.series:
            if s.name == name:
                return s
        raise KeyError(name)


def run_figure2(
    mus: Sequence[float] = DEFAULT_MUS,
    n: int = 1000,
    algorithms: Sequence[str] = ALGORITHMS,
    repeats: int = 1,
    seed: SeedLike = None,
) -> Figure2Result:
    """Reproduce Figure 2 at a configurable scale.

    ``n`` defaults to 1000 with the LFR reference defaults (the paper
    sets the generator "to default values").  ``repeats`` averages Theta
    over that many instances per ``mu``.
    """
    rng = as_random(seed)
    result = Figure2Result(
        series=[Series(name) for name in algorithms], n=n, repeats=repeats
    )
    for mu in mus:
        totals = {name: 0.0 for name in algorithms}
        for _ in range(repeats):
            instance = lfr_graph(
                LFRParams(n=n, mu=mu),
                seed=spawn_seed(rng),
            )
            for name in algorithms:
                run = run_algorithm(
                    name, instance.graph, seed=spawn_seed(rng), quality_mode=True
                )
                if len(run.cover) == 0:
                    continue  # contributes 0 to the average
                totals[name] += theta(instance.communities, run.cover)
        for series, name in zip(result.series, algorithms):
            series.append(mu, totals[name] / repeats)
    return result


if __name__ == "__main__":
    print(run_figure2(seed=0).render())
