"""Figure 4: the *typical* communities each algorithm finds in a daisy.

The paper's Figure 4 is a drawing: OCA and CFinder recover a petal and
the core as separate (overlapping) communities, while LFK returns whole
flowers.  The reproduction renders the same comparison as text: for each
algorithm, the best-matching found community for every planted part, with
its ``rho`` score, plus a classification of the qualitative outcome.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from .._rng import SeedLike, as_random, spawn_seed
from ..communities import Cover, rho
from ..generators import DaisyInstance, DaisyParams, daisy_graph
from .reporting import ascii_table
from .runner import ALGORITHMS, run_algorithm

__all__ = ["Figure4Result", "PartMatch", "run_figure4"]


@dataclass
class PartMatch:
    """How well one planted part (petal/core) was recovered."""

    part: str
    best_rho: float
    found_size: int
    planted_size: int


@dataclass
class Figure4Result:
    """Per-algorithm recovery of the daisy's planted parts."""

    matches: Dict[str, List[PartMatch]] = field(default_factory=dict)
    communities_found: Dict[str, int] = field(default_factory=dict)

    def mean_rho(self, algorithm: str) -> float:
        """Mean best-match ``rho`` over planted parts."""
        parts = self.matches[algorithm]
        return sum(p.best_rho for p in parts) / len(parts)

    def separates_parts(self, algorithm: str, threshold: float = 0.5) -> bool:
        """Whether the algorithm matched each planted part reasonably.

        True when every petal and the core has a found community with
        ``rho`` above ``threshold`` — the Figure-4 "left panel" outcome.
        An algorithm returning whole-flower blobs (the "right panel")
        fails this because a blob's ``rho`` against any single petal is
        bounded by petal_size / flower_size.
        """
        return all(p.best_rho >= threshold for p in self.matches[algorithm])

    def render(self) -> str:
        """The comparison as an aligned text table."""
        rows = []
        for algorithm, parts in self.matches.items():
            for p in parts:
                rows.append(
                    (algorithm, p.part, p.best_rho, p.found_size, p.planted_size)
                )
        return ascii_table(
            ["algorithm", "planted part", "best rho", "found size", "planted size"],
            rows,
        )


def _match_parts(instance: DaisyInstance, cover: Cover) -> List[PartMatch]:
    matches: List[PartMatch] = []
    labels = [f"petal {i + 1}" for i in range(len(instance.petal_ids))] + ["core"]
    part_ids = list(instance.petal_ids) + list(instance.core_ids)
    for label, part_id in zip(labels, part_ids):
        planted = instance.communities[part_id]
        best_rho = 0.0
        best_size = 0
        for community in cover:
            value = rho(planted, community)
            if value > best_rho:
                best_rho = value
                best_size = len(community)
        matches.append(
            PartMatch(
                part=label,
                best_rho=best_rho,
                found_size=best_size,
                planted_size=len(planted),
            )
        )
    return matches


def run_figure4(
    params: DaisyParams = DaisyParams(),
    algorithms: Sequence[str] = ALGORITHMS,
    seed: SeedLike = None,
) -> Figure4Result:
    """Reproduce Figure 4's qualitative comparison on one daisy."""
    rng = as_random(seed)
    instance = daisy_graph(params, seed=spawn_seed(rng))
    result = Figure4Result()
    for name in algorithms:
        run = run_algorithm(
            name,
            instance.graph,
            seed=spawn_seed(rng),
            quality_mode=True,
            assign_orphans=False,
        )
        result.matches[name] = _match_parts(instance, run.cover)
        result.communities_found[name] = len(run.cover)
    return result


if __name__ == "__main__":
    print(run_figure4(seed=0).render())
