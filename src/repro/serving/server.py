"""The socket front-end: an asyncio TCP server over the ServingQueue.

:class:`~repro.serving.ServingService` is deliberately socket-free;
this module is the one adapter the PR-4 design note promised.  It
speaks exactly the service's JSONL schema — one JSON request per line
in, one JSON response per line out, responses in per-client request
order — by reusing the service's parse (:meth:`ServingService.parse_line`)
and response-rendering (:meth:`ServingService.render_response`)
helpers, so a cover served over a socket is byte-identical to one
served from a batch file, which is byte-identical to a direct
``GraphSession.detect``.

On top of the shared queue it adds the two semantics remote traffic
needs and a batch stream does not:

**Per-client fairness.**  All connections feed one bounded
:class:`~repro.serving.ServingQueue`, but admission is round-robin
across connected clients: a single admission coroutine cycles over the
clients that have parsed-but-unsubmitted requests and admits one at a
time, so a client streaming thousands of requests interleaves 1:1 with
a client sending two — it cannot starve them.  Each client is further
bounded by ``max_inflight_per_client``: requests beyond that many
outstanding (admitted or awaiting admission) are refused immediately
with ``{"ok": false, "error": "queue full"}``, the per-client face of
:class:`~repro.errors.QueueFull` backpressure.

**Request deadlines.**  A request carrying ``deadline_seconds`` that is
still queued when its budget elapses is shed by the queue worker with
:class:`~repro.errors.DeadlineExceeded` — the client gets its
``ok: false`` response and the detect nobody is waiting for never runs.

Blocking work (request parsing, which may read a graph file, and
queue-space waits) runs in the event loop's default executor, never on
the loop itself; results cross back via :func:`asyncio.wrap_future`.

Usage::

    server = ServingServer(host="127.0.0.1", port=0, max_sessions=4)
    await server.start()
    ...                      # clients connect to server.host:server.port
    await server.stop()      # quiesce: flush in-flight responses
    server.close()           # close the owned service (queue + manager)

or synchronously (tests, benchmarks, the CLI smoke)::

    with start_server_thread(max_sessions=4) as handle:
        sock = socket.create_connection((handle.host, handle.port))
        ...
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from collections import deque
from concurrent.futures import CancelledError
from typing import Any, Dict, Optional, Set

from ..errors import ConfigurationError, DeadlineExceeded, QueueFull, ServingError
from ..observability import NULL_EVENT_LOG, MetricsRegistry
from .service import ServingService, error_response

__all__ = ["ServerStats", "ServingServer", "ServerHandle", "start_server_thread"]

#: The exact error string a per-client cap refusal carries — the
#: documented response vocabulary, asserted by tests.
QUEUE_FULL_ERROR = "queue full"


class _ServerMetrics:
    """The socket front-end's registry instruments."""

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        self.clients_total = registry.counter(
            "repro_server_clients_total", "Connections accepted"
        )
        self.clients_active = registry.gauge(
            "repro_server_clients_active", "Connections currently open"
        )
        self.requests = registry.counter(
            "repro_server_requests_total", "Request lines parsed"
        )
        responses = registry.counter(
            "repro_server_responses_total",
            "Response lines rendered, by outcome",
            labelnames=("status",),
        )
        self.responses_ok = responses.labels(status="ok")
        self.responses_error = responses.labels(status="error")
        self.queue_full_rejections = registry.counter(
            "repro_server_queue_full_rejections_total",
            "Per-client in-flight-cap (or shared-queue) refusals",
        )
        self.deadline_expired = registry.counter(
            "repro_server_deadline_expired_total",
            "Requests shed past their deadline (admission or queue stage)",
        )
        self.oversized_drops = registry.counter(
            "repro_server_oversized_drops_total",
            "Connections dropped for exceeding max_line_bytes",
        )


class ServerStats:
    """Aggregate accounting of one socket server's traffic.

    ``requests`` counts parsed request lines, ``responses`` the lines
    written back (``ok`` + ``failed``).  ``queue_full_rejections`` are
    per-client in-flight-cap refusals; ``deadline_expired`` are requests
    shed past their deadline (at admission or in the queue) — both are
    subsets of ``failed``.  ``oversized_drops`` counts connections cut
    for exceeding ``max_line_bytes``.

    A read-only view over the server's registry instruments: same
    attribute names as the pre-observability dataclass, same numbers,
    but the registry is the single source of truth (``GET /metrics``
    renders these exact series as ``repro_server_*``).
    """

    __slots__ = ("_metrics",)

    def __init__(self, metrics: _ServerMetrics) -> None:
        self._metrics = metrics

    @property
    def clients_total(self) -> int:
        return int(self._metrics.clients_total.value)

    @property
    def clients_active(self) -> int:
        return int(self._metrics.clients_active.value)

    @property
    def requests(self) -> int:
        return int(self._metrics.requests.value)

    @property
    def ok(self) -> int:
        return int(self._metrics.responses_ok.value)

    @property
    def failed(self) -> int:
        return int(self._metrics.responses_error.value)

    @property
    def responses(self) -> int:
        return self.ok + self.failed

    @property
    def queue_full_rejections(self) -> int:
        return int(self._metrics.queue_full_rejections.value)

    @property
    def deadline_expired(self) -> int:
        return int(self._metrics.deadline_expired.value)

    @property
    def oversized_drops(self) -> int:
        return int(self._metrics.oversized_drops.value)

    def __repr__(self) -> str:
        return (
            "ServerStats("
            f"clients_total={self.clients_total}, "
            f"clients_active={self.clients_active}, "
            f"requests={self.requests}, responses={self.responses}, "
            f"ok={self.ok}, failed={self.failed}, "
            f"queue_full_rejections={self.queue_full_rejections}, "
            f"deadline_expired={self.deadline_expired}, "
            f"oversized_drops={self.oversized_drops})"
        )


class _Slot:
    """One request's reserved response position in its client's stream.

    Responses must leave in per-client request order, but admission is
    round-robin across clients — so the order-preserving slot is
    created at parse time and *filled* later: either immediately with a
    ready error response, or at admission with the queue-pending record.
    """

    __slots__ = ("request", "response", "pending", "ready", "admitted")

    def __init__(self, request: Any = None) -> None:
        self.request = request
        self.response: Optional[Dict[str, Any]] = None
        self.pending: Any = None
        self.ready = asyncio.Event()
        self.admitted = False

    def resolve_error(self, response: Dict[str, Any]) -> None:
        self.response = response
        self.ready.set()

    def resolve_pending(self, pending: Any) -> None:
        self.pending = pending
        self.ready.set()


class _Client:
    """Per-connection state: the response pipeline and fairness books."""

    __slots__ = (
        "name",
        "writer",
        "slots",
        "admission",
        "outstanding",
        "eof",
        "broken",
        "wake",
        "slots_free",
    )

    def __init__(self, name: str, writer: asyncio.StreamWriter) -> None:
        self.name = name
        self.writer = writer
        #: Every accepted line, in order — the response pipeline.
        self.slots: "deque[_Slot]" = deque()
        #: The parsed-but-unsubmitted subset the admission loop drains.
        self.admission: "deque[_Slot]" = deque()
        #: Requests accepted but not yet answered (the in-flight cap).
        self.outstanding = 0
        self.eof = False
        #: The transport failed mid-write: keep accounting, stop writing.
        self.broken = False
        self.wake = asyncio.Event()
        #: Set by the writer whenever it retires a slot — the reader's
        #: flow-control signal when the response buffer is at its bound.
        self.slots_free = asyncio.Event()


class ServingServer:
    """An asyncio TCP server feeding one :class:`ServingService`.

    Parameters
    ----------
    service:
        An existing service to serve from (its queue, manager, and
        graph cache are shared with any batch-mode use), or ``None`` to
        own a fresh one built from ``**service_kwargs``.
    host / port:
        Bind address; port 0 picks a free port, readable from
        :attr:`port` after :meth:`start`.
    max_inflight_per_client:
        Per-client bound on outstanding requests; lines beyond it are
        answered ``{"ok": false, "error": "queue full"}`` immediately.
    submit_timeout_seconds:
        Bound on one admission's wait for shared-queue space (``None``:
        wait as long as it takes; fairness is unaffected either way
        because admission is one request at a time).
    max_line_bytes:
        Stream-reader line limit (default 16 MiB — inline edge lists
        are big).  A client exceeding it has its connection dropped
        after the buffered responses flush; the server keeps serving
        everyone else.
    stop_grace_seconds:
        How long :meth:`stop` waits for connections to flush before
        aborting their transports (a client that stopped reading its
        responses would otherwise stall shutdown forever).

    A client that sends without reading cannot balloon the server:
    once ``max(16, 2 * max_inflight_per_client)`` responses are
    buffered for a connection, its reader stops consuming lines until
    the writer retires some — TCP backpressure does the rest.
    """

    def __init__(
        self,
        service: Optional[ServingService] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        max_inflight_per_client: int = 8,
        submit_timeout_seconds: Optional[float] = None,
        max_line_bytes: int = 16 * 1024 * 1024,
        stop_grace_seconds: float = 5.0,
        **service_kwargs: Any,
    ) -> None:
        if max_inflight_per_client < 1:
            raise ConfigurationError(
                "max_inflight_per_client must be >= 1, got "
                f"{max_inflight_per_client}"
            )
        if max_line_bytes < 1:
            raise ConfigurationError(
                f"max_line_bytes must be >= 1, got {max_line_bytes}"
            )
        self._owns_service = service is None
        self.service = service if service is not None else ServingService(
            **service_kwargs
        )
        self._bind_host = host
        self._bind_port = port
        self.max_inflight_per_client = max_inflight_per_client
        self.submit_timeout_seconds = submit_timeout_seconds
        self.max_line_bytes = max_line_bytes
        self.stop_grace_seconds = stop_grace_seconds
        self.max_buffered_responses = max(16, 2 * max_inflight_per_client)
        self._metrics = _ServerMetrics(self.service.registry)
        self.stats = ServerStats(self._metrics)
        self._server: Optional[asyncio.AbstractServer] = None
        self._clients: "deque[_Client]" = deque()  # round-robin order
        self._handler_tasks: "Set[asyncio.Task]" = set()
        self._admission_task: Optional[asyncio.Task] = None
        self._admission_wake: Optional[asyncio.Event] = None
        self._stopping = False
        self._stopped: Optional[asyncio.Event] = None
        self._client_serial = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def host(self) -> str:
        """The bound host (valid after :meth:`start`)."""
        if self._server is not None and self._server.sockets:
            return self._server.sockets[0].getsockname()[0]
        return self._bind_host

    @property
    def port(self) -> int:
        """The bound port (valid after :meth:`start`)."""
        if self._server is not None and self._server.sockets:
            return self._server.sockets[0].getsockname()[1]
        return self._bind_port

    async def start(self) -> None:
        """Bind the listener and start the admission loop."""
        if self._server is not None:
            raise ServingError("ServingServer is already started")
        self._admission_wake = asyncio.Event()
        self._stopped = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_client,
            host=self._bind_host,
            port=self._bind_port,
            limit=self.max_line_bytes,
        )
        self._admission_task = asyncio.ensure_future(self._admission_loop())
        self._events().emit(
            "server_start", front_end="socket", host=self.host, port=self.port
        )

    async def wait_stopped(self) -> None:
        """Block until :meth:`stop` has completed (the serve loop)."""
        if self._stopped is None:
            raise ServingError("ServingServer was never started")
        await self._stopped.wait()

    async def stop(self) -> None:
        """Quiesce: stop accepting, flush every in-flight response.

        Idempotent.  Submitted requests complete and their responses
        are written before connections close; the underlying service
        (queue + manager) stays open — :meth:`close` owns that.
        """
        if self._stopping:
            if self._stopped is not None:
                await self._stopped.wait()
            return
        self._stopping = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in list(self._handler_tasks):
            task.cancel()
        if self._handler_tasks:
            _done, still_running = await asyncio.wait(
                list(self._handler_tasks), timeout=self.stop_grace_seconds
            )
            if still_running:
                # A connection that will not flush (its client stopped
                # reading) must not stall shutdown: abort the transport
                # so the blocked drain fails and accounting completes.
                for client in list(self._clients):
                    transport = client.writer.transport
                    if transport is not None:
                        transport.abort()
                await asyncio.gather(*still_running, return_exceptions=True)
        if self._admission_wake is not None:
            self._admission_wake.set()
        if self._admission_task is not None:
            await self._admission_task
        self._events().emit(
            "server_stop", front_end="socket", host=self.host, port=self.port
        )
        if self._stopped is not None:
            self._stopped.set()

    def _events(self):
        """The service's event log (inert when the stack has none)."""
        # `is None`, not truthiness: an *empty* EventLog is falsy.
        events = getattr(self.service, "events", None)
        return NULL_EVENT_LOG if events is None else events

    def close(self) -> None:
        """Close the owned service (drains its queue); not the listener.

        Call after :meth:`stop` (from outside the event loop: the queue
        drain blocks).  A caller-supplied service is left open.
        """
        if self._owns_service:
            self.service.close()

    # ------------------------------------------------------------------
    # Per-connection pipeline
    # ------------------------------------------------------------------
    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        loop = asyncio.get_event_loop()
        self._client_serial += 1
        client = _Client(f"client-{self._client_serial}", writer)
        self._clients.append(client)
        self._metrics.clients_total.inc()
        self._metrics.clients_active.inc()
        task = asyncio.current_task()
        if task is not None:
            self._handler_tasks.add(task)
        writer_task = asyncio.ensure_future(self._writer_loop(client))
        try:
            while not self._stopping:
                # Flow control: a client that sends without reading its
                # responses parks here once the buffer is at its bound,
                # so its unread lines stay in the TCP window, not in
                # server memory.
                while (
                    len(client.slots) >= self.max_buffered_responses
                    and not client.eof
                ):
                    client.slots_free.clear()
                    await client.slots_free.wait()
                line_bytes = await reader.readline()
                if not line_bytes:
                    break
                line = line_bytes.decode("utf-8", errors="replace").strip()
                if not line or line.startswith("#"):
                    continue
                arrived = time.perf_counter()
                # Parsing may read a graph file from disk: executor.
                parsed = await loop.run_in_executor(
                    None, self.service.parse_line, line
                )
                self._metrics.requests.inc()
                slot = _Slot()
                if not isinstance(parsed, dict):
                    # Tag the request's origin for the event log.
                    parsed.client = client.name
                if isinstance(parsed, dict):
                    slot.resolve_error(parsed)
                elif client.outstanding >= self.max_inflight_per_client:
                    self._metrics.queue_full_rejections.inc()
                    slot.resolve_error(
                        {
                            "id": parsed.id,
                            "ok": False,
                            "error": QUEUE_FULL_ERROR,
                        }
                    )
                else:
                    # The deadline clock starts here, not at queue
                    # submission: time parked behind the admission
                    # stage is part of what the caller waits for.
                    parsed.arrived_at = arrived
                    slot.request = parsed
                    slot.admitted = True
                    client.outstanding += 1
                    client.admission.append(slot)
                    if self._admission_wake is not None:
                        self._admission_wake.set()
                client.slots.append(slot)
                client.wake.set()
        except (asyncio.CancelledError, ConnectionError):
            pass
        except ValueError:
            # LimitOverrunError (a ValueError): an oversized line.  The
            # stream is unrecoverable mid-line, so stop reading — the
            # finally still flushes every buffered response.
            self._metrics.oversized_drops.inc()
        finally:
            client.eof = True
            client.wake.set()
            try:
                await writer_task
            except (asyncio.CancelledError, Exception):
                pass
            try:
                self._clients.remove(client)
            except ValueError:
                pass
            self._metrics.clients_active.inc(-1)
            writer.close()
            try:
                await writer.wait_closed()
            except (asyncio.CancelledError, Exception):
                pass
            if task is not None:
                self._handler_tasks.discard(task)

    async def _writer_loop(self, client: _Client) -> None:
        """Emit responses in request order as their slots resolve."""
        while True:
            while not client.slots:
                if client.eof:
                    return
                client.wake.clear()
                await client.wake.wait()
            slot = client.slots[0]
            await slot.ready.wait()
            if slot.response is not None:
                response = slot.response
            else:
                pending = slot.pending
                try:
                    await asyncio.wrap_future(pending.future)
                except (Exception, CancelledError, asyncio.CancelledError):
                    pass  # render_response reports the failure per-request
                if isinstance(
                    self._future_exception(pending.future), DeadlineExceeded
                ):
                    self._metrics.deadline_expired.inc()
                response = self.service.render_response(pending)
            client.slots.popleft()
            client.slots_free.set()
            if slot.admitted:
                client.outstanding -= 1
            # Responses count when rendered: a disconnected client's
            # tail responses are accounted (ok/failed stay consistent
            # with the queue's own completions) even though delivery
            # failed — the drain below keeps going either way.
            if response.get("ok"):
                self._metrics.responses_ok.inc()
            else:
                self._metrics.responses_error.inc()
            if not client.broken:
                try:
                    client.writer.write(
                        (json.dumps(response, sort_keys=True) + "\n").encode(
                            "utf-8"
                        )
                    )
                    await client.writer.drain()
                except (ConnectionError, asyncio.CancelledError):
                    # The client went away: keep draining slots (their
                    # futures resolve regardless) but stop writing.
                    client.broken = True

    @staticmethod
    def _future_exception(future) -> Optional[BaseException]:
        try:
            return future.exception()
        except (CancelledError, Exception):
            return None

    # ------------------------------------------------------------------
    # Fair admission
    # ------------------------------------------------------------------
    async def _admission_loop(self) -> None:
        """Round-robin one submission at a time across ready clients.

        Strict fairness comes from the single consumer: each cycle
        admits at most one request per client with work waiting, and
        the shared-queue space wait (in the executor) paces everyone
        equally because nobody else can slip a request in around it.
        """
        assert self._admission_wake is not None
        loop = asyncio.get_event_loop()
        while True:
            client = None
            for _ in range(len(self._clients)):
                candidate = self._clients[0]
                self._clients.rotate(-1)
                if candidate.admission:
                    client = candidate
                    break
            if client is None:
                if self._stopping:
                    return
                self._admission_wake.clear()
                # Re-check before sleeping: a slot appended (or stop
                # requested) after the scan above sets the event.
                if any(c.admission for c in self._clients):
                    continue
                await self._admission_wake.wait()
                continue
            slot = client.admission.popleft()
            deadline = slot.request.deadline_seconds
            if deadline is not None and slot.request.arrived_at is not None:
                waited = time.perf_counter() - slot.request.arrived_at
                if waited > deadline:
                    # Already dead on arrival at admission: shed here
                    # rather than spend a queue slot on it.  The queue
                    # never saw this request, so report the pre-shed to
                    # its admission-stage expiry counter explicitly.
                    self._metrics.deadline_expired.inc()
                    self.service.queue.note_admission_expired(slot.request)
                    slot.resolve_error(
                        error_response(
                            slot.request.id,
                            DeadlineExceeded(
                                f"deadline of {deadline}s exceeded after "
                                f"{waited:.3f}s awaiting admission",
                                deadline_seconds=deadline,
                                waited_seconds=waited,
                            ),
                        )
                    )
                    client.wake.set()
                    continue
            try:
                pending = await loop.run_in_executor(
                    None,
                    self.service.submit_pending,
                    slot.request,
                    self.submit_timeout_seconds,
                )
            except QueueFull:
                self._metrics.queue_full_rejections.inc()
                slot.resolve_error(
                    {
                        "id": slot.request.id,
                        "ok": False,
                        "error": QUEUE_FULL_ERROR,
                    }
                )
            except ServingError as error:
                slot.resolve_error(error_response(slot.request.id, error))
            else:
                slot.resolve_pending(pending)
            client.wake.set()


# ----------------------------------------------------------------------
# Synchronous driver (tests, benchmarks, CLI smoke)
# ----------------------------------------------------------------------
class ServerHandle:
    """A running :class:`ServingServer` on a background event loop.

    Context-manager: ``stop()`` (or exit) quiesces the server, joins
    the loop thread, and closes the owned service.
    """

    def __init__(
        self,
        server: ServingServer,
        loop: asyncio.AbstractEventLoop,
        thread: threading.Thread,
    ) -> None:
        self.server = server
        self._loop = loop
        self._thread = thread

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def stats(self) -> ServerStats:
        return self.server.stats

    def stop(self, timeout: float = 30.0) -> None:
        """Stop the server, join its thread, close the owned service."""
        if self._thread.is_alive():
            asyncio.run_coroutine_threadsafe(
                self.server.stop(), self._loop
            ).result(timeout=timeout)
            self._thread.join(timeout=timeout)
        self.server.close()

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def start_server_thread(
    timeout: float = 30.0, **server_kwargs: Any
) -> ServerHandle:
    """Start a :class:`ServingServer` on a dedicated loop thread.

    Blocks until the listener is bound (so ``handle.port`` is real) and
    returns the handle; raises whatever :meth:`ServingServer.start`
    raised (e.g. a busy port) instead of leaking a half-started thread.
    """
    server = ServingServer(**server_kwargs)
    started = threading.Event()
    box: Dict[str, Any] = {}

    def _run() -> None:
        async def _main() -> None:
            try:
                await server.start()
            except BaseException as error:  # surface bind failures
                box["error"] = error
                started.set()
                return
            box["loop"] = asyncio.get_event_loop()
            started.set()
            await server.wait_stopped()

        asyncio.run(_main())

    thread = threading.Thread(
        target=_run, name="repro-serve-socket", daemon=True
    )
    thread.start()
    if not started.wait(timeout=timeout):
        raise ServingError("socket server failed to start in time")
    if "error" in box:
        thread.join(timeout=timeout)
        raise box["error"]
    return ServerHandle(server, box["loop"], thread)
