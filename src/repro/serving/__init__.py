"""The multi-graph serving layer: sessions, cached; requests, queued.

:class:`~repro.detectors.GraphSession` (PR 3) made repeat detections
over one graph cheap.  This package is the layer above it, the one the
heavy-traffic north star needs — many graphs, many clients, one
process:

* :mod:`~repro.serving.fingerprint` — a stable, order-insensitive
  content hash of a graph (:func:`graph_fingerprint`), the key under
  which warm state is shared;
* :mod:`~repro.serving.manager` — :class:`SessionManager`, a bounded
  LRU of warm sessions with deterministic eviction, hit/miss/eviction
  accounting, and thread-safe ``detect``;
* :mod:`~repro.serving.queue` — :class:`ServingQueue`, bounded
  asynchronous admission with :class:`~repro.errors.QueueFull`
  backpressure, per-request futures, and graceful drain;
* :mod:`~repro.serving.service` — :class:`ServingService`, the
  socket-free JSONL front-end behind ``repro-oca serve``;
* :mod:`~repro.serving.server` — :class:`ServingServer`, the asyncio
  TCP adapter over the same queue (``repro-oca serve --listen``), with
  round-robin per-client fairness, per-client in-flight caps, and
  deadline-aware request shedding;
* :mod:`~repro.serving.http` — :class:`HttpServer`, the stdlib HTTP/1.1
  adapter (``repro-oca serve --http``): ``GET /health`` readiness,
  ``GET /metrics`` Prometheus scrapes of the stack's shared
  :class:`~repro.observability.MetricsRegistry`, ``POST /detect``
  speaking the exact JSONL service schema, and the ``GET /debug/*``
  forensics endpoints (event-log tail, slow-request table, registry
  snapshot, on-demand sampling profiler).

Quickstart::

    from repro.serving import ServingQueue, SessionManager

    with SessionManager(max_sessions=4) as manager:
        # synchronous, warm-cached across graphs
        result = manager.detect(graph, "oca", seed=7)

        # asynchronous, bounded
        with ServingQueue(manager, workers=2, max_depth=64) as q:
            futures = [q.detect(g, "oca", seed=s) for g, s in traffic]
            covers = [f.result().cover for f in futures]

Covers served through either path are byte-identical to direct
``GraphSession.detect`` calls with the same arguments — the serving
layer routes and amortises, it never changes results.  Every future
scaling layer (sharding, shared-memory arrays, batched dispatch) plugs
in behind these interfaces.
"""

from .fingerprint import graph_fingerprint
from .http import HttpHandle, HttpServer, start_http_thread
from .manager import ManagerStats, SessionManager
from .queue import QueueStats, ServeRequest, ServingQueue
from .server import (
    ServerHandle,
    ServerStats,
    ServingServer,
    start_server_thread,
)
from .service import ServingService, serve_stream

__all__ = [
    "graph_fingerprint",
    "HttpHandle",
    "HttpServer",
    "ManagerStats",
    "SessionManager",
    "QueueStats",
    "ServeRequest",
    "ServingQueue",
    "ServerHandle",
    "ServerStats",
    "ServingServer",
    "ServingService",
    "serve_stream",
    "start_http_thread",
    "start_server_thread",
]
