"""The serve front-end: JSONL detection requests in, JSON results out.

This is the process boundary of the serving subsystem — the layer the
``repro-oca serve`` CLI exposes.  It is deliberately socket-free:
requests stream from any line-iterable (a file, stdin, a test's
StringIO), responses stream to any writable, so the whole stack is
testable end-to-end without network plumbing.  The socket server
(:mod:`repro.serving.server`) *is* that one adapter away: it reuses
this module's parse and response-rendering helpers verbatim, so both
front-ends speak byte-identical schemas.

Request schema (one JSON object per line)::

    {"id": "r1",                       # optional, echoed back
     "graph": "path/to/edge_list.txt", # or {"edges": [[u, v], ...]}
     "fingerprint": "…64 hex…",        # alternative: target a warm session
     "algorithm": "oca",               # any registered detector
     "seed": 7,
     "deadline_seconds": 0.5,          # optional: shed if still queued then
     "params": {"batch_size": 4}}      # forwarded to the detector

Response schema (same order as the requests)::

    {"id": "r1", "ok": true, "algorithm": "oca",
     "fingerprint": "…", "session_hit": true,
     "session_source": "warm",   # warm | store | compiled
     "communities": [[1, 2, 3], …],
     "elapsed_seconds": …,    # the detect itself
     "latency_seconds": …,    # submit -> future resolved
     "queue_depth": …,        # queued requests at submission
     "stats": {…}}            # c_source / engine_pool / queue_wait_seconds

    {"id": "r2", "ok": false, "error": "…"}   # per-request failures

Failures are per-request: a malformed line or an unknown algorithm
produces an ``ok: false`` response and the service keeps serving.
Graph paths are cached per resolved path, so repeated requests against
one file hit the same :class:`~repro.graph.Graph` object — and through
its fingerprint, the same warm session.
"""

from __future__ import annotations

import json
import threading
import time
from collections import OrderedDict, deque
from concurrent.futures import CancelledError
from dataclasses import dataclass
from pathlib import Path
from typing import IO, Any, Dict, Iterable, List, Optional, Tuple, Union

from ..errors import ConfigurationError, QueueFull, ServingError
from ..graph import Graph, read_edge_list
from ..observability import (
    NULL_EVENT_LOG,
    EventLog,
    MetricsRegistry,
    NullEventLog,
    SloTracker,
    SlowRequestLog,
    new_trace,
)
from .manager import SessionManager
from .queue import ServeRequest, ServingQueue, validate_deadline_seconds

__all__ = ["ServingService", "serve_stream", "error_response"]

#: Bound on the per-path graph cache.  Cached graphs pin their compiled
#: CSR arrays, so an unbounded cache would quietly defeat the manager's
#: memory budget on long-lived streams touching many distinct paths.
_GRAPH_CACHE_LIMIT = 32


def _sort_key(label: Any) -> Tuple[str, str]:
    """Total order over mixed-type labels (ints and strs never compare)."""
    return (type(label).__name__, repr(label))


def _serialize_cover(cover) -> List[List[Any]]:
    """A canonical JSON rendering: sorted members, sorted communities."""
    communities = [sorted(community, key=_sort_key) for community in cover]
    communities.sort(key=lambda members: [_sort_key(node) for node in members])
    return communities


def error_response(request_id: Any, error: BaseException) -> Dict[str, Any]:
    """The one ``ok: false`` shape both front-ends emit for a failure."""
    return {
        "id": request_id,
        "ok": False,
        "error": str(error) or type(error).__name__,
    }


@dataclass
class _Pending:
    """One submitted request awaiting its response slot."""

    request_id: Any
    future: Any
    submitted_at: float
    depth_at_submit: int
    done_at: Optional[float] = None
    trace: Optional[Any] = None
    client: Optional[str] = None
    algorithm: Optional[str] = None


class _ServiceMetrics:
    """The service's own instruments: the per-response ledger.

    ``render_response`` is the one funnel every front-end (batch,
    socket, HTTP) pushes its responses through, so counting there gives
    one consistent ok/error ledger no matter how requests arrived.
    """

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        responses = registry.counter(
            "repro_service_responses_total",
            "Responses rendered, by outcome",
            labelnames=("status",),
        )
        self.responses_ok = responses.labels(status="ok")
        self.responses_error = responses.labels(status="error")
        self.parse_seconds = registry.histogram(
            "repro_service_parse_seconds",
            "Request-line parse time (may include a graph-file read)",
        )
        self.latency_seconds = registry.histogram(
            "repro_service_latency_seconds",
            "Queue submission to future resolution, per request",
        )


class ServingService:
    """Dispatch JSONL requests through a manager-backed queue.

    Parameters
    ----------
    manager:
        An existing :class:`~repro.serving.SessionManager` to serve
        from, or ``None`` to own a fresh one built from the remaining
        keyword arguments.
    max_sessions / max_memory_bytes / workers / backend / batch_size /
    representation / shipping:
        Manager construction knobs (ignored when ``manager`` is given).
    queue_workers / max_depth / coalesce:
        :class:`~repro.serving.ServingQueue` sizing — ``coalesce``
        bounds how many queued same-fingerprint requests one worker
        serves per dispatch group (1 disables coalescing).
    submit_timeout_seconds:
        How long a streamed request may wait for queue space before its
        response becomes ``ok: false`` (``None``: wait indefinitely —
        the pre-deadline behaviour).
    store / store_dir / store_limit_bytes / store_warm:
        Warm-start persistence.  ``store`` is an existing
        :class:`~repro.store.GraphStore`; ``store_dir`` builds one at
        that path (budgeted by ``store_limit_bytes``).  Either wires
        the owned manager to consult the store before compiling and to
        persist freshly compiled graphs, and pre-warms the
        ``store_warm`` most-recently-used fingerprints at construction
        (``None``: up to ``max_sessions``; ``0`` disables pre-warming).
        Only valid when the service owns its manager — a supplied
        ``manager`` brings (or deliberately lacks) its own store.
    registry:
        The :class:`~repro.observability.MetricsRegistry` wired through
        the whole stack — the manager, its sessions, the queue, and any
        front-end (socket / HTTP) serving from this service all publish
        here, so one ``GET /metrics`` scrape sees every layer.  Default:
        a caller-supplied manager's registry, else a fresh one.
    events / event_capacity / access_log_path / access_log_max_bytes:
        The structured-event pipeline.  ``events`` supplies an existing
        :class:`~repro.observability.EventLog`; otherwise the service
        adopts a caller-supplied manager's log or builds its own with
        ``event_capacity`` ring slots (``0`` disables events entirely —
        the inert :data:`~repro.observability.NULL_EVENT_LOG`) and, when
        ``access_log_path`` is set, a rotating JSONL file sink
        (``access_log_max_bytes`` bounds each file).  The one log is
        wired through the queue, manager, store, and both front-ends —
        every request and every operational event lands in one place.
    slo:
        Optional service-level objectives: an ``--slo`` grammar string
        (``"p99:0.5s,availability:99.9"``) or a pre-built
        :class:`~repro.observability.SloTracker`.  Every rendered
        response feeds it; the tracker exports ``repro_slo_*`` gauges
        on this service's registry.
    slow_threshold_seconds / slow_capacity:
        Slow-request forensics: responses at or above the threshold
        keep their full trace, engine stats, and queue context in a
        bounded worst-``slow_capacity`` table (``GET /debug/slow``).
        ``None`` disables capture; ``0.0`` captures everything.
    """

    def __init__(
        self,
        manager: Optional[SessionManager] = None,
        max_sessions: int = 4,
        max_memory_bytes: Optional[int] = None,
        queue_workers: int = 2,
        max_depth: int = 64,
        coalesce: int = 8,
        workers: int = 1,
        backend: str = "auto",
        batch_size: Optional[int] = None,
        representation: str = "auto",
        shipping: str = "auto",
        submit_timeout_seconds: Optional[float] = None,
        registry: Optional[MetricsRegistry] = None,
        store: Optional[Any] = None,
        store_dir: Optional[str] = None,
        store_limit_bytes: Optional[int] = None,
        store_warm: Optional[int] = None,
        events: Optional[EventLog] = None,
        event_capacity: int = 1024,
        access_log_path: Optional[str] = None,
        access_log_max_bytes: Optional[int] = None,
        slo: Optional[Any] = None,
        slow_threshold_seconds: Optional[float] = None,
        slow_capacity: int = 32,
    ) -> None:
        self.submit_timeout_seconds = submit_timeout_seconds
        self._owns_manager = manager is None
        if manager is not None and (store is not None or store_dir is not None):
            raise ConfigurationError(
                "pass the store to the SessionManager when supplying one: "
                "ServingService(manager=...) cannot also take store/store_dir"
            )
        if store is not None and store_dir is not None:
            raise ConfigurationError(
                "pass either store or store_dir, not both"
            )
        if registry is None:
            # Adopt a supplied manager's registry so the stack still
            # shares one scrape; otherwise the service roots a new one.
            # getattr: tests wrap managers in duck-typed proxies that
            # may not carry one.
            registry = getattr(manager, "registry", None) or MetricsRegistry()
        self.registry = registry
        self._owns_events = False
        if events is None:
            # Adopt a supplied manager's event log for the same reason
            # the registry is adopted: one stack, one flight recorder.
            events = getattr(manager, "events", None)
        if events is None:
            if event_capacity > 0:
                events = EventLog(
                    capacity=event_capacity,
                    sink_path=access_log_path,
                    sink_max_bytes=access_log_max_bytes,
                    registry=registry,
                )
                self._owns_events = True
            else:
                events = NULL_EVENT_LOG
        self.events = events
        self.slo: Optional[SloTracker] = (
            SloTracker(slo, registry=registry)
            if isinstance(slo, str)
            else slo
        )
        self.slow = SlowRequestLog(
            limit=slow_capacity, threshold_seconds=slow_threshold_seconds
        )
        if store_dir is not None:
            # Imported lazily: repro.store imports from repro.serving,
            # so a module-level import here would be a cycle.
            from ..store import GraphStore

            store = GraphStore(
                store_dir,
                max_bytes=store_limit_bytes,
                registry=registry,
                events=self.events,
            )
        # Explicit None-check: SessionManager defines __len__, so a
        # caller's freshly-built (empty) manager is *falsy* and a bare
        # `manager or ...` would silently replace it.
        self.manager = manager if manager is not None else SessionManager(
            max_sessions=max_sessions,
            max_memory_bytes=max_memory_bytes,
            workers=workers,
            backend=backend,
            batch_size=batch_size,
            representation=representation,
            shipping=shipping,
            registry=registry,
            store=store,
            events=self.events,
        )
        self.store = getattr(self.manager, "store", None)
        self.warmed: List[str] = []
        if (
            self._owns_manager
            and self.store is not None
            and (store_warm is None or store_warm > 0)
        ):
            from ..store import StoreWarmer

            self.warmed = StoreWarmer(
                self.store, self.manager, limit=store_warm
            ).warm()
        self.queue = ServingQueue(
            self.manager,
            workers=queue_workers,
            max_depth=max_depth,
            coalesce=coalesce,
            registry=registry,
            events=self.events,
        )
        self._metrics = _ServiceMetrics(registry)
        self._graph_cache: "OrderedDict[str, Tuple[Tuple[int, int], Graph]]" = (
            OrderedDict()
        )
        # The socket front-end parses lines from concurrent executor
        # threads, so hits, inserts, and evictions must not interleave
        # (a racing eviction would turn move_to_end into a KeyError).
        self._graph_cache_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Request parsing
    # ------------------------------------------------------------------
    def _resolve_graph(self, payload: Dict[str, Any]) -> Any:
        """The graph (or warm fingerprint) a request payload names."""
        if "fingerprint" in payload:
            fingerprint = payload["fingerprint"]
            if not isinstance(fingerprint, str):
                raise ServingError(
                    f"fingerprint must be a string, got {type(fingerprint).__name__}"
                )
            return fingerprint
        spec = payload.get("graph")
        if spec is None:
            raise ServingError("request needs a 'graph' or a 'fingerprint'")
        if isinstance(spec, str):
            path = Path(spec).resolve()
            key = str(path)
            # stat() both validates existence (a missing file becomes a
            # per-request error upstream) and keys freshness: a path
            # rewritten on disk must re-load, never serve the old graph.
            stat = path.stat()
            version = (stat.st_mtime_ns, stat.st_size)
            with self._graph_cache_lock:
                cached = self._graph_cache.get(key)
                if cached is not None and cached[0] == version:
                    self._graph_cache.move_to_end(key)
                    return cached[1]
            # The file read runs unlocked (it is the slow part); a
            # concurrent loader of the same path just overwrites with an
            # equivalent graph, and the fingerprint dedupes downstream.
            graph = read_edge_list(spec)
            with self._graph_cache_lock:
                self._graph_cache[key] = (version, graph)
                while len(self._graph_cache) > _GRAPH_CACHE_LIMIT:
                    self._graph_cache.popitem(last=False)
            return graph
        if isinstance(spec, dict) and "edges" in spec:
            graph = Graph(nodes=spec.get("nodes", ()))
            for edge in spec["edges"]:
                u, v = edge
                graph.add_edge(u, v)
            return graph
        raise ServingError(
            "graph must be an edge-list path or {'edges': [[u, v], ...]}"
        )

    def _request_from_payload(self, payload: Dict[str, Any]) -> ServeRequest:
        params = payload.get("params", {})
        if not isinstance(params, dict):
            raise ServingError("params must be a JSON object")
        deadline = payload.get("deadline_seconds")
        validate_deadline_seconds(deadline, ServingError)
        return ServeRequest(
            graph=self._resolve_graph(payload),
            algorithm=payload.get("algorithm", "oca"),
            seed=payload.get("seed"),
            params=dict(params),
            id=payload.get("id"),
            deadline_seconds=None if deadline is None else float(deadline),
        )

    @staticmethod
    def _payload_from_line(line: str) -> Dict[str, Any]:
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as error:
            raise ServingError(f"malformed JSON request: {error}") from None
        if not isinstance(payload, dict):
            raise ServingError("each request line must be a JSON object")
        return payload

    def parse_request(self, line: str) -> ServeRequest:
        """One JSONL line to a :class:`ServeRequest` (raises on bad input)."""
        return self._request_from_payload(self._payload_from_line(line))

    def parse_line(
        self, line: str
    ) -> "Union[ServeRequest, Dict[str, Any]]":
        """A request, or a ready error response (id echoed when known).

        *Any* parse-path failure — malformed JSON, a missing edge-list
        file, a malformed inline edge — becomes a per-request error
        response rather than an exception: one bad line must never take
        down the rest of the batch.  The socket and HTTP front-ends
        share this exact path, so every front-end classifies bad input
        identically.

        Every line gets a :class:`~repro.observability.RequestTrace`
        here — the id a response echoes back in its ``trace``
        annotation — and the ``parse`` span is the first one recorded.
        """
        request_id = None
        trace = new_trace()
        try:
            with trace.span("parse"):
                payload = self._payload_from_line(line)
                request_id = payload.get("id")
                request = self._request_from_payload(payload)
        except Exception as error:
            response = error_response(request_id, error)
            response["trace"] = trace.export()
            self._metrics.parse_seconds.observe(
                trace.spans.get("parse", 0.0)
            )
            return response
        request.trace = trace
        self._metrics.parse_seconds.observe(trace.spans.get("parse", 0.0))
        return request

    # Pre-socket-front-end name, kept for downstream callers.
    _parse_line = parse_line

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def submit_pending(
        self, request: ServeRequest, timeout: Optional[float] = None
    ) -> _Pending:
        """Submit one parsed request, waiting for queue space.

        Returns the pending record :meth:`render_response` consumes.
        Raises :class:`~repro.errors.QueueFull` (timeout elapsed) or
        :class:`~repro.errors.ServingError` (queue closed) — the socket
        front-end maps those onto per-request error responses, exactly
        like :meth:`handle_lines` does via
        :meth:`_submit_with_backpressure`.
        """
        depth = self.queue.depth
        future = self.queue.submit_blocking(request, timeout=timeout)
        pending = _Pending(
            request_id=request.id,
            future=future,
            submitted_at=time.perf_counter(),
            depth_at_submit=depth,
            trace=request.trace,
            client=request.client,
            algorithm=request.algorithm,
        )
        future.add_done_callback(
            lambda _f, p=pending: setattr(p, "done_at", time.perf_counter())
        )
        return pending

    def _submit_with_backpressure(
        self, request: ServeRequest
    ) -> "Union[_Pending, Dict[str, Any]]":
        """Submit, absorbing a full queue by waiting for it to drain.

        A refusal — the queue closed under us mid-stream, or stayed full
        past the submit timeout — becomes this request's ``ok: false``
        response instead of an exception out of :meth:`handle_lines`:
        the requests already in flight keep their response slots and
        still flush, which is the per-request error isolation the
        service promises.
        """
        try:
            return self.submit_pending(
                request, timeout=self.submit_timeout_seconds
            )
        except (QueueFull, ServingError) as error:
            return error_response(request.id, error)

    def _response(self, pending: _Pending) -> Dict[str, Any]:
        trace = pending.trace
        try:
            result = pending.future.result()
        # CancelledError is a BaseException since 3.8 but still a
        # per-request outcome here; anything else a detect can raise
        # (config TypeErrors included) is likewise isolated to its own
        # response rather than aborting the batch.
        except (Exception, CancelledError) as error:
            response = error_response(pending.request_id, error)
            if trace is not None:
                response["trace"] = trace.export()
            return response
        latency = (pending.done_at or time.perf_counter()) - pending.submitted_at
        self._metrics.latency_seconds.observe(latency)
        stats = result.stats
        if trace is not None:
            # queue_wait was recorded by the worker; fill in the rest of
            # the span ledger here so the exported trace covers
            # parse -> queue wait -> acquire -> detect -> render.
            acquire = stats.get("session_acquire_seconds")
            if acquire is not None:
                trace.record("session_acquire", acquire)
            trace.record("detect", result.elapsed_seconds)
            trace.mark("session_hit", stats.get("session_hit"))
            trace.mark("session_source", stats.get("session_source"))
            with trace.span("render"):
                communities = _serialize_cover(result.cover)
        else:
            communities = _serialize_cover(result.cover)
        response = {
            "id": pending.request_id,
            "ok": True,
            "algorithm": result.algorithm,
            "fingerprint": stats.get("session_fingerprint"),
            "session_hit": stats.get("session_hit"),
            "session_source": stats.get("session_source"),
            "communities": communities,
            "elapsed_seconds": result.elapsed_seconds,
            "latency_seconds": latency,
            "queue_depth": pending.depth_at_submit,
            "stats": {
                key: stats[key]
                for key in (
                    "c_source",
                    "engine_pool",
                    "queue_wait_seconds",
                    "coalesce_batch",
                )
                if key in stats
            },
        }
        if trace is not None:
            response["trace"] = trace.export()
        return response

    def handle_lines(
        self, lines: Iterable[str]
    ) -> "Iterable[Dict[str, Any]]":
        """Serve an iterable of JSONL lines; yield responses in order.

        Submission is pipelined (each parsed request enters the queue
        immediately, subject to backpressure) and emission is
        interleaved: whenever the head-of-line response is ready it is
        yielded before the next line is read, so completed results never
        pile up behind a long input — the buffered window is the
        in-flight work, not the whole stream.  Order is always request
        order.
        """
        pending: "deque[Union[_Pending, Dict[str, Any]]]" = deque()

        def head_ready() -> bool:
            head = pending[0]
            return isinstance(head, dict) or head.future.done()

        for line in lines:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parsed = self.parse_line(line)
            if isinstance(parsed, dict):
                pending.append(parsed)
            else:
                pending.append(self._submit_with_backpressure(parsed))
            while pending and head_ready():
                yield self.render_response(pending.popleft())
        while pending:
            yield self.render_response(pending.popleft())

    def render_response(
        self, item: "Union[_Pending, Dict[str, Any]]"
    ) -> Dict[str, Any]:
        """One response dict from a pending record or a ready error.

        Blocks on the pending future if it has not resolved yet; the
        socket front-end awaits the future first, so its calls never
        block the event loop.
        """
        if isinstance(item, dict):
            response = item
        else:
            response = self._response(item)
        if response.get("ok"):
            self._metrics.responses_ok.inc()
        else:
            self._metrics.responses_error.inc()
        self._observe_response(item, response)
        return response

    def _observe_response(
        self,
        item: "Union[_Pending, Dict[str, Any]]",
        response: Dict[str, Any],
    ) -> None:
        """Feed one rendered response to the forensic pipeline.

        Runs in the one per-response funnel, so the event log, the SLO
        account, and the slow-request table see *every* response from
        every front-end.  All three default off (inert log, no tracker,
        no threshold), in which case this is a handful of cheap checks.
        """
        ok = bool(response.get("ok"))
        latency = response.get("latency_seconds")
        if latency is None and not isinstance(item, dict):
            # Errors out of the queue still have a measurable wait.
            latency = (
                item.done_at or time.perf_counter()
            ) - item.submitted_at
        if self.slo is not None:
            self.slo.observe(latency if latency is not None else 0.0, ok=ok)
        if isinstance(self.events, NullEventLog) and not self.slow.enabled:
            return
        trace = response.get("trace") or {}
        spans = trace.get("spans", {})
        client = None if isinstance(item, dict) else item.client
        event_fields: Dict[str, Any] = {
            "request_id": response.get("id"),
            "trace": trace.get("id"),
            "client": client if client is not None else "inline",
            "fingerprint": response.get("fingerprint"),
            "algorithm": response.get("algorithm")
            if ok
            else (None if isinstance(item, dict) else item.algorithm),
            "status": "ok" if ok else "error",
            "session_source": response.get("session_source"),
            "coalesce_batch": trace.get("coalesce_batch"),
            "latency_seconds": None
            if latency is None
            else round(latency, 6),
            "spans": spans,
        }
        if not ok:
            event_fields["error"] = response.get("error")
        self.events.emit("request", **event_fields)
        if (
            self.slow.enabled
            and latency is not None
            and latency >= (self.slow.threshold_seconds or 0.0)
        ):
            record = dict(event_fields)
            record["trace_export"] = trace
            record["stats"] = response.get("stats", {})
            record["queue_depth_at_submit"] = response.get("queue_depth")
            record["queue_depth_now"] = self.queue.depth
            self.slow.note(latency, record)

    # Pre-socket-front-end name, kept for downstream callers.
    _emit = render_response

    def serve(
        self, input_stream: IO[str], output_stream: IO[str]
    ) -> Dict[str, Any]:
        """Batch mode: read every request, write every response, summarise.

        Returns the summary the CLI prints to stderr: request counts,
        manager hit/miss/eviction accounting, latency aggregates, and
        the queue's peak depth.
        """
        started = time.perf_counter()
        responses = 0
        failures = 0
        latencies: List[float] = []
        for response in self.handle_lines(input_stream):
            output_stream.write(json.dumps(response, sort_keys=True) + "\n")
            responses += 1
            if response.get("ok"):
                latencies.append(response["latency_seconds"])
            else:
                failures += 1
        output_stream.flush()
        manager_stats = self.manager.stats
        summary = {
            "requests": responses,
            "ok": responses - failures,
            "failed": failures,
            "wall_seconds": time.perf_counter() - started,
            "sessions_resident": len(self.manager),
            "session_hits": manager_stats.hits,
            "session_misses": manager_stats.misses,
            "evictions": manager_stats.evictions,
            "mean_latency_seconds": (
                sum(latencies) / len(latencies) if latencies else 0.0
            ),
            "max_latency_seconds": max(latencies) if latencies else 0.0,
            "peak_queue_depth": self.stats_peak_depth(),
        }
        if self.store is not None:
            store_stats = self.store.stats
            summary["store_hits"] = store_stats.hits
            summary["store_misses"] = store_stats.misses
            summary["store_saves"] = store_stats.saves
            summary["store_bytes"] = self.store.total_bytes()
        return summary

    def stats_peak_depth(self) -> int:
        """Deepest the request queue got during this service's lifetime."""
        return self.queue.stats.peak_depth

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Drain the queue, then close the manager if this service owns it."""
        self.queue.close(drain=True)
        if self._owns_manager:
            self.manager.close()
        if self._owns_events:
            self.events.close()

    def __enter__(self) -> "ServingService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def serve_stream(
    input_stream: IO[str],
    output_stream: IO[str],
    **service_kwargs: Any,
) -> Dict[str, Any]:
    """One-call batch serving: build a service, serve, drain, summarise."""
    with ServingService(**service_kwargs) as service:
        return service.serve(input_stream, output_stream)
