"""The HTTP front-end: /health, /metrics, and JSONL /detect over HTTP/1.1.

The socket front-end (:mod:`repro.serving.server`) gives remote
clients the raw JSONL stream; this module gives *operators* the three
endpoints production infrastructure expects, speaking plain HTTP/1.1
over asyncio streams — no web framework, stdlib only:

``GET /health``
    Readiness: ``200 {"status": "ready", ...}`` while serving,
    ``503 {"status": "draining", ...}`` once :meth:`HttpServer.stop`
    has begun — the flip a load balancer watches to stop routing before
    the listener goes away.  The body carries live queue depth and
    resident-session counts either way.

``GET /metrics``
    A Prometheus text-format scrape of the service's
    :class:`~repro.observability.MetricsRegistry` — every layer (queue,
    manager, sessions, service, both front-ends) publishes into the one
    registry the service roots, so one scrape sees the whole stack.

``POST /detect``
    The exact JSONL service schema, one request per body line, one
    response per body line, in order.  Parsing, submission, and
    response rendering reuse :meth:`ServingService.parse_line` /
    :meth:`ServingService.submit_pending` /
    :meth:`ServingService.render_response` verbatim, so a cover served
    over HTTP is byte-identical to one served over the socket, from a
    batch file, or from a direct ``GraphSession.detect``.

``GET /debug/events?n=N&kind=K``
    The tail of the service's structured event log (the in-memory
    flight recorder), newest last, optionally bounded to the last ``N``
    events and filtered by kind — the first place to look after an
    incident.

``GET /debug/slow?n=N``
    The worst-N slowest requests captured by ``--slow-threshold-seconds``,
    slowest first, each with its full trace spans, engine stats, and
    queue context.

``GET /debug/vars``
    The registry's flat snapshot (``name{labels} -> value``) as one
    JSON object — every counter/gauge/histogram, no Prometheus tooling
    required.

``GET /debug/profile?seconds=S``
    An on-demand sampling profile of the live process: samples every
    thread's Python stack for ``S`` seconds (default 1, capped at 60)
    and returns collapsed-stack text (``stack count`` lines) ready for
    any flamegraph renderer.  One run at a time — a concurrent request
    gets 503.

Blocking work (parsing, which may read a graph file; queue-space
waits; response rendering) runs in the event loop's default executor,
exactly like the socket front-end.  Connections are keep-alive by
default (``Connection: close`` honoured); request bodies must carry
``Content-Length`` (no chunked uploads) and are bounded by
``max_body_bytes``.

Shutdown is drain-first: :meth:`stop` flips /health to draining,
keeps answering /health and /metrics (and refuses new /detect with
503) while in-flight detect requests finish — up to
``stop_grace_seconds`` — then closes the listener and every
connection.  :meth:`close` (after :meth:`stop`, off the loop) closes
the owned service.

Usage::

    server = HttpServer(host="127.0.0.1", port=0, max_sessions=4)
    await server.start()
    ...                      # curl http://host:port/health
    await server.stop()      # drain, then close connections
    server.close()           # close the owned service

or synchronously (tests, benchmarks, the CLI smoke)::

    with start_http_thread(max_sessions=4) as handle:
        conn = http.client.HTTPConnection(handle.host, handle.port)
        ...
"""

from __future__ import annotations

import asyncio
import json
import os
import threading
import time
from concurrent.futures import CancelledError
from typing import Any, Dict, List, Optional, Set, Tuple, Union
from urllib.parse import parse_qs

from ..errors import ConfigurationError, QueueFull, ServingError
from ..observability import NULL_EVENT_LOG, MetricsRegistry, SamplingProfiler
from .service import ServingService, error_response

__all__ = ["HttpServer", "HttpHandle", "start_http_thread"]

#: Prometheus text exposition format, version 0.0.4 — the content type
#: scrapers negotiate for.
METRICS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: One JSON document per line — what /detect request and response
#: bodies are.
JSONL_CONTENT_TYPE = "application/x-ndjson"

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    411: "Length Required",
    413: "Payload Too Large",
    501: "Not Implemented",
    503: "Service Unavailable",
}

#: Bound on one header line / the whole header block: requests are tiny
#: (the payload is the body), so anything bigger is malformed or abuse.
_MAX_HEADER_BYTES = 64 * 1024


class _HttpMetrics:
    """The HTTP front-end's registry instruments."""

    #: The label vocabulary for request paths: known endpoints plus one
    #: bucket for everything else, so scrape cardinality stays fixed no
    #: matter what paths clients probe.
    KNOWN_PATHS = (
        "/health",
        "/metrics",
        "/detect",
        "/debug/events",
        "/debug/slow",
        "/debug/vars",
        "/debug/profile",
    )

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        self.connections = registry.counter(
            "repro_http_connections_total", "HTTP connections accepted"
        )
        self._requests = registry.counter(
            "repro_http_requests_total",
            "HTTP requests received, by path",
            labelnames=("path",),
        )
        self._responses = registry.counter(
            "repro_http_responses_total",
            "HTTP responses written, by status code",
            labelnames=("code",),
        )
        self.oversized = registry.counter(
            "repro_http_oversized_total",
            "Requests refused for exceeding max_body_bytes",
        )
        self.inflight = registry.gauge(
            "repro_http_detect_inflight",
            "POST /detect requests currently being served",
        )

    def request(self, path: str) -> None:
        label = path if path in self.KNOWN_PATHS else "other"
        self._requests.labels(path=label).inc()

    def response(self, code: int) -> None:
        self._responses.labels(code=str(code)).inc()


class HttpServer:
    """A stdlib-asyncio HTTP/1.1 server over one :class:`ServingService`.

    Parameters
    ----------
    service:
        An existing service to serve from (shared with a socket server
        or batch use — same queue, manager, graph cache, and registry),
        or ``None`` to own a fresh one built from ``**service_kwargs``.
    host / port:
        Bind address; port 0 picks a free port, readable from
        :attr:`port` after :meth:`start`.
    max_body_bytes:
        Bound on one /detect request body (default 64 MiB — a body is
        many JSONL lines, each of which may inline an edge list).
        Oversized requests are refused with 413 before the body is
        read.
    submit_timeout_seconds:
        Bound on one request's wait for shared-queue space (``None``:
        wait as long as it takes); a timeout becomes that line's
        ``ok: false`` response, never an HTTP error.
    stop_grace_seconds:
        How long :meth:`stop` keeps draining — /health answering 503,
        in-flight /detect requests finishing — before connections are
        closed regardless.
    """

    def __init__(
        self,
        service: Optional[ServingService] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        max_body_bytes: int = 64 * 1024 * 1024,
        submit_timeout_seconds: Optional[float] = None,
        stop_grace_seconds: float = 5.0,
        **service_kwargs: Any,
    ) -> None:
        if max_body_bytes < 1:
            raise ConfigurationError(
                f"max_body_bytes must be >= 1, got {max_body_bytes}"
            )
        self._owns_service = service is None
        self.service = service if service is not None else ServingService(
            **service_kwargs
        )
        self._bind_host = host
        self._bind_port = port
        self.max_body_bytes = max_body_bytes
        self.submit_timeout_seconds = submit_timeout_seconds
        self.stop_grace_seconds = stop_grace_seconds
        self._metrics = _HttpMetrics(self.service.registry)
        self._server: Optional[asyncio.AbstractServer] = None
        self._handler_tasks: "Set[asyncio.Task]" = set()
        self._writers: "Set[asyncio.StreamWriter]" = set()
        self._draining = False
        self._stopping = False
        self._stopped: Optional[asyncio.Event] = None
        self._inflight_detects = 0
        self._idle: Optional[asyncio.Event] = None
        self._started_at: Optional[float] = None
        self._profiler = SamplingProfiler()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def host(self) -> str:
        """The bound host (valid after :meth:`start`)."""
        if self._server is not None and self._server.sockets:
            return self._server.sockets[0].getsockname()[0]
        return self._bind_host

    @property
    def port(self) -> int:
        """The bound port (valid after :meth:`start`)."""
        if self._server is not None and self._server.sockets:
            return self._server.sockets[0].getsockname()[1]
        return self._bind_port

    @property
    def draining(self) -> bool:
        """True once :meth:`stop` has begun (what /health reports)."""
        return self._draining

    async def start(self) -> None:
        """Bind the listener and begin serving."""
        if self._server is not None:
            raise ServingError("HttpServer is already started")
        self._stopped = asyncio.Event()
        self._idle = asyncio.Event()
        self._idle.set()
        self._server = await asyncio.start_server(
            self._handle_client,
            host=self._bind_host,
            port=self._bind_port,
            limit=_MAX_HEADER_BYTES,
        )
        self._started_at = time.time()
        self._events().emit(
            "server_start", front_end="http", host=self.host, port=self.port
        )

    def _events(self):
        """The service's event log (inert when the stack has none)."""
        # `is None`, not truthiness: an *empty* EventLog is falsy.
        events = getattr(self.service, "events", None)
        return NULL_EVENT_LOG if events is None else events

    async def wait_stopped(self) -> None:
        """Block until :meth:`stop` has completed (the serve loop)."""
        if self._stopped is None:
            raise ServingError("HttpServer was never started")
        await self._stopped.wait()

    async def stop(self) -> None:
        """Drain, then shut down.  Idempotent.

        Phase one (up to ``stop_grace_seconds``): /health flips to
        ``503 draining``, new /detect requests are refused with 503,
        and in-flight /detect requests run to completion — the window
        in which a load balancer notices and stops routing.  Phase two:
        the listener and every connection close.  The underlying
        service (queue + manager) stays open — :meth:`close` owns that.
        """
        if self._stopping:
            if self._stopped is not None:
                await self._stopped.wait()
            return
        self._stopping = True
        self._draining = True
        if self._idle is not None and self._inflight_detects > 0:
            try:
                await asyncio.wait_for(
                    self._idle.wait(), timeout=self.stop_grace_seconds
                )
            except asyncio.TimeoutError:
                pass
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in list(self._handler_tasks):
            task.cancel()
        for writer in list(self._writers):
            transport = writer.transport
            if transport is not None:
                transport.abort()
        if self._handler_tasks:
            await asyncio.gather(
                *list(self._handler_tasks), return_exceptions=True
            )
        self._events().emit(
            "server_stop", front_end="http", host=self.host, port=self.port
        )
        if self._stopped is not None:
            self._stopped.set()

    def close(self) -> None:
        """Close the owned service (drains its queue); not the listener.

        Call after :meth:`stop`, from outside the event loop (the queue
        drain blocks).  A caller-supplied service is left open.
        """
        if self._owns_service:
            self.service.close()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._metrics.connections.inc()
        task = asyncio.current_task()
        if task is not None:
            self._handler_tasks.add(task)
        self._writers.add(writer)
        try:
            while True:
                keep_alive = await self._serve_one(reader, writer)
                if not keep_alive:
                    break
        except (
            asyncio.CancelledError,
            asyncio.IncompleteReadError,
            ConnectionError,
            ValueError,  # LimitOverrunError: an oversized header line
        ):
            pass
        finally:
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (asyncio.CancelledError, Exception):
                pass
            if task is not None:
                self._handler_tasks.discard(task)

    async def _serve_one(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> bool:
        """Serve one request; return whether to keep the connection."""
        request_line = await reader.readline()
        if not request_line:
            return False
        try:
            method, target, version = (
                request_line.decode("latin-1").strip().split(" ", 2)
            )
        except ValueError:
            await self._respond_json(
                writer, 400, {"error": "malformed request line"}, False
            )
            return False
        headers = await self._read_headers(reader)
        if headers is None:
            await self._respond_json(
                writer, 400, {"error": "malformed headers"}, False
            )
            return False
        path, _, query = target.partition("?")
        self._metrics.request(path)
        keep_alive = (
            headers.get("connection", "").lower() != "close"
            and version != "HTTP/1.0"
        )
        if path == "/health":
            if method != "GET":
                return await self._method_not_allowed(writer, "GET", keep_alive)
            return await self._serve_health(writer, keep_alive)
        if path == "/metrics":
            if method != "GET":
                return await self._method_not_allowed(writer, "GET", keep_alive)
            return await self._serve_metrics(writer, keep_alive)
        if path.startswith("/debug/"):
            if method != "GET":
                return await self._method_not_allowed(writer, "GET", keep_alive)
            return await self._serve_debug(writer, path, query, keep_alive)
        if path == "/detect":
            if method != "POST":
                return await self._method_not_allowed(
                    writer, "POST", keep_alive
                )
            return await self._serve_detect(reader, writer, headers, keep_alive)
        await self._respond_json(
            writer, 404, {"error": f"no such endpoint: {path}"}, keep_alive
        )
        return keep_alive

    async def _read_headers(
        self, reader: asyncio.StreamReader
    ) -> Optional[Dict[str, str]]:
        headers: Dict[str, str] = {}
        total = 0
        while True:
            line = await reader.readline()
            total += len(line)
            if total > _MAX_HEADER_BYTES:
                return None
            if line in (b"\r\n", b"\n", b""):
                return headers
            name, sep, value = line.decode("latin-1").partition(":")
            if not sep:
                return None
            headers[name.strip().lower()] = value.strip()

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def _health_payload(self) -> Dict[str, Any]:
        # Imported lazily: repro.serving is imported while the top-level
        # repro package initialises, so a module-level import of the
        # version attribute would race that initialisation.
        from .. import __version__

        return {
            "status": "draining" if self._draining else "ready",
            "queue_depth": self.service.queue.depth,
            "sessions_resident": len(self.service.manager),
            # Rolling-restart forensics: which process, up how long,
            # running which build.
            "pid": os.getpid(),
            "uptime_seconds": (
                round(time.time() - self._started_at, 3)
                if self._started_at is not None
                else 0.0
            ),
            "version": __version__,
        }

    async def _serve_health(
        self, writer: asyncio.StreamWriter, keep_alive: bool
    ) -> bool:
        code = 503 if self._draining else 200
        await self._respond_json(
            writer, code, self._health_payload(), keep_alive
        )
        return keep_alive

    async def _serve_metrics(
        self, writer: asyncio.StreamWriter, keep_alive: bool
    ) -> bool:
        body = self.service.registry.render().encode("utf-8")
        await self._respond(
            writer, 200, body, METRICS_CONTENT_TYPE, keep_alive
        )
        return keep_alive

    async def _serve_debug(
        self,
        writer: asyncio.StreamWriter,
        path: str,
        query: str,
        keep_alive: bool,
    ) -> bool:
        """Route one ``/debug/*`` request (all GET, all operator-facing)."""
        params = parse_qs(query, keep_blank_values=False)

        def _int_param(name: str, default: Optional[int]) -> Optional[int]:
            values = params.get(name)
            if not values:
                return default
            return int(values[0])

        try:
            if path == "/debug/events":
                n = _int_param("n", None)
                kind = params.get("kind", [None])[0]
                events = self._events()
                await self._respond_json(
                    writer,
                    200,
                    {
                        "events": events.tail(n=n, kind=kind),
                        "buffered": len(events),
                        "dropped": events.dropped,
                    },
                    keep_alive,
                )
                return keep_alive
            if path == "/debug/slow":
                n = _int_param("n", None)
                slow = self.service.slow
                await self._respond_json(
                    writer,
                    200,
                    {
                        "requests": slow.worst(n),
                        "threshold_seconds": slow.threshold_seconds,
                        "captured": slow.captured,
                    },
                    keep_alive,
                )
                return keep_alive
            if path == "/debug/vars":
                await self._respond_json(
                    writer,
                    200,
                    dict(self.service.registry.snapshot()),
                    keep_alive,
                )
                return keep_alive
            if path == "/debug/profile":
                seconds = float(params.get("seconds", ["1"])[0])
                return await self._serve_profile(writer, seconds, keep_alive)
        except (ValueError, TypeError) as error:
            await self._respond_json(
                writer, 400, {"error": f"bad query parameter: {error}"},
                keep_alive,
            )
            return keep_alive
        await self._respond_json(
            writer, 404, {"error": f"no such endpoint: {path}"}, keep_alive
        )
        return keep_alive

    async def _serve_profile(
        self, writer: asyncio.StreamWriter, seconds: float, keep_alive: bool
    ) -> bool:
        """Run one sampling-profiler pass and serve its collapsed stacks.

        The blocking sample window runs in the executor so the event
        loop keeps serving /health and /metrics throughout; the cap
        keeps one curl from pinning the sampler for minutes.
        """
        if not 0 < seconds <= 60:
            await self._respond_json(
                writer,
                400,
                {"error": "seconds must be in (0, 60]"},
                keep_alive,
            )
            return keep_alive
        loop = asyncio.get_event_loop()
        try:
            report = await loop.run_in_executor(
                None, self._profiler.profile, seconds
            )
        except RuntimeError:
            await self._respond_json(
                writer,
                503,
                {"error": "a profiling run is already active"},
                keep_alive,
            )
            return keep_alive
        header = (
            f"# samples: {report.samples} seconds: {report.seconds:.3f} "
            f"interval: {report.interval_seconds}\n"
        )
        await self._respond(
            writer,
            200,
            (header + report.collapsed()).encode("utf-8"),
            "text/plain; charset=utf-8",
            keep_alive,
        )
        return keep_alive

    async def _serve_detect(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        headers: Dict[str, str],
        keep_alive: bool,
    ) -> bool:
        if self._draining:
            await self._respond_json(
                writer, 503, {"error": "draining"}, False
            )
            return False
        if "transfer-encoding" in headers:
            await self._respond_json(
                writer,
                501,
                {"error": "chunked request bodies are not supported"},
                False,
            )
            return False
        length_text = headers.get("content-length")
        if length_text is None:
            await self._respond_json(
                writer, 411, {"error": "Content-Length required"}, False
            )
            return False
        try:
            length = int(length_text)
            if length < 0:
                raise ValueError
        except ValueError:
            await self._respond_json(
                writer, 400, {"error": "bad Content-Length"}, False
            )
            return False
        if length > self.max_body_bytes:
            # Refused before the body is read: the connection cannot be
            # reused (the unread body is still in flight), so close it.
            self._metrics.oversized.inc()
            await self._respond_json(
                writer,
                413,
                {
                    "error": (
                        f"request body of {length} bytes exceeds "
                        f"max_body_bytes={self.max_body_bytes}"
                    )
                },
                False,
            )
            return False
        body = await reader.readexactly(length) if length else b""
        self._inflight_detects += 1
        if self._idle is not None:
            self._idle.clear()
        try:
            payload = await self._detect_body(
                body.decode("utf-8", errors="replace")
            )
        finally:
            self._inflight_detects -= 1
            if self._inflight_detects == 0 and self._idle is not None:
                self._idle.set()
        await self._respond(
            writer,
            200,
            payload.encode("utf-8"),
            JSONL_CONTENT_TYPE,
            keep_alive,
        )
        return keep_alive

    async def _detect_body(self, body_text: str) -> str:
        """The JSONL response body for one /detect request body.

        The socket front-end's exact pipeline, minus the fairness
        machinery one ordered body does not need: parse each line and
        submit it immediately (pipelined — later lines enter the queue
        while earlier ones compute), then render every response in
        request order.  All three steps are the service's own helpers,
        so the covers and the per-line error vocabulary are identical
        across front-ends.
        """
        loop = asyncio.get_event_loop()
        items: List[Union[Dict[str, Any], Any]] = []
        for line in body_text.splitlines():
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            # Parsing may read a graph file from disk: executor.
            parsed = await loop.run_in_executor(
                None, self.service.parse_line, line
            )
            if isinstance(parsed, dict):
                items.append(parsed)
                continue
            parsed.arrived_at = time.perf_counter()
            parsed.client = "http"  # origin tag for the event log
            try:
                # The queue-space wait blocks: executor.
                pending = await loop.run_in_executor(
                    None,
                    self.service.submit_pending,
                    parsed,
                    self.submit_timeout_seconds,
                )
            except (QueueFull, ServingError) as error:
                items.append(error_response(parsed.id, error))
            else:
                items.append(pending)
        chunks: List[str] = []
        for item in items:
            if not isinstance(item, dict):
                try:
                    await asyncio.wrap_future(item.future)
                except (Exception, CancelledError, asyncio.CancelledError):
                    pass  # render_response reports the failure per-line
            response = await loop.run_in_executor(
                None, self.service.render_response, item
            )
            chunks.append(json.dumps(response, sort_keys=True))
        return "\n".join(chunks) + ("\n" if chunks else "")

    # ------------------------------------------------------------------
    # Response plumbing
    # ------------------------------------------------------------------
    async def _respond_json(
        self,
        writer: asyncio.StreamWriter,
        code: int,
        payload: Dict[str, Any],
        keep_alive: bool,
    ) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        await self._respond(
            writer, code, body, "application/json", keep_alive
        )

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        code: int,
        body: bytes,
        content_type: str,
        keep_alive: bool,
    ) -> None:
        reason = _REASONS.get(code, "Unknown")
        head = (
            f"HTTP/1.1 {code} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            "\r\n"
        ).encode("latin-1")
        self._metrics.response(code)
        try:
            writer.write(head + body)
            await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            # The client went away mid-write; the handler loop's next
            # read sees EOF and retires the connection.
            pass

    async def _method_not_allowed(
        self, writer: asyncio.StreamWriter, allowed: str, keep_alive: bool
    ) -> bool:
        await self._respond_json(
            writer,
            405,
            {"error": f"method not allowed (use {allowed})"},
            keep_alive,
        )
        return keep_alive


# ----------------------------------------------------------------------
# Synchronous driver (tests, benchmarks, the CLI smoke)
# ----------------------------------------------------------------------
class HttpHandle:
    """A running :class:`HttpServer` on a background event loop.

    Context-manager: ``stop()`` (or exit) drains the server, joins the
    loop thread, and closes the owned service.
    """

    def __init__(
        self,
        server: HttpServer,
        loop: asyncio.AbstractEventLoop,
        thread: threading.Thread,
    ) -> None:
        self.server = server
        self._loop = loop
        self._thread = thread

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    def stop(self, timeout: float = 30.0) -> None:
        """Stop the server, join its thread, close the owned service."""
        if self._thread.is_alive():
            try:
                asyncio.run_coroutine_threadsafe(
                    self.server.stop(), self._loop
                ).result(timeout=timeout)
            except (CancelledError, RuntimeError):
                # The server was already stopped out-of-band and its
                # loop is tearing down; there is nothing left to stop.
                pass
            self._thread.join(timeout=timeout)
        self.server.close()

    def __enter__(self) -> "HttpHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def start_http_thread(timeout: float = 30.0, **server_kwargs: Any) -> HttpHandle:
    """Start an :class:`HttpServer` on a dedicated loop thread.

    Blocks until the listener is bound (so ``handle.port`` is real) and
    returns the handle; raises whatever :meth:`HttpServer.start` raised
    (e.g. a busy port) instead of leaking a half-started thread.
    """
    server = HttpServer(**server_kwargs)
    started = threading.Event()
    box: Dict[str, Any] = {}

    def _run() -> None:
        async def _main() -> None:
            try:
                await server.start()
            except BaseException as error:  # surface bind failures
                box["error"] = error
                started.set()
                return
            box["loop"] = asyncio.get_event_loop()
            started.set()
            await server.wait_stopped()

        asyncio.run(_main())

    thread = threading.Thread(target=_run, name="repro-serve-http", daemon=True)
    thread.start()
    if not started.wait(timeout=timeout):
        raise ServingError("HTTP server failed to start in time")
    if "error" in box:
        thread.join(timeout=timeout)
        raise box["error"]
    return HttpHandle(server, box["loop"], thread)
